"""End-to-end fusion experiments: the §5.5 pipelines as callable objects.

These helpers tie together synthesis, extraction, training, inference and
scoring; the benchmark suite calls them once per table/figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.check.flowcheck import check_feature_set
from repro.check.modelcheck import check_template
from repro.dbn.compiled import CompiledDbn
from repro.dbn.template import DbnTemplate
from repro.errors import DiagnosticError, ModelCheckError
from repro.fusion.audio_networks import AUDIO_NODE_TO_FEATURE
from repro.fusion.av_network import av_node_to_feature
from repro.fusion.discretize import DiscretizationConfig, hard_evidence
from repro.fusion.evaluate import (
    PrecisionRecall,
    accumulate,
    classify_segments,
    extract_segments,
    segment_precision_recall,
)
from repro.fusion.features import FeatureSet, extract_feature_set
from repro.fusion.train import train_audio_network, train_av_network
from repro.synth.annotations import Interval
from repro.synth.grandprix import SyntheticRace, synthesize_race
from repro.synth.race import RaceSpec

__all__ = [
    "RaceData",
    "prepare_race",
    "AudioExperiment",
    "AvExperiment",
    "AudioEvaluation",
    "AvEvaluation",
]


@dataclass
class RaceData:
    """A synthesized race with its extracted features (cached together)."""

    race: SyntheticRace
    features: FeatureSet

    @property
    def name(self) -> str:
        return self.race.name

    @property
    def truth(self):
        return self.race.truth


def prepare_race(
    spec: RaceSpec, faults=None, on_error: str = "raise", **synth_kwargs
) -> RaceData:
    """Synthesize one race and run the full extraction chain.

    ``faults``/``on_error`` flow to both stages: synthesis corrupts the
    material, extraction degrades (instead of raising) when a modality
    chain fails under ``on_error="degrade"``.
    """
    race = synthesize_race(spec, faults=faults, **synth_kwargs)
    return RaceData(race, extract_feature_set(race, faults=faults, on_error=on_error))


def _lint_model(
    template: DbnTemplate,
    node_to_feature: dict[str, str],
    name: str,
    check: str = "error",
) -> list:
    """Run the model linter on a freshly trained template.

    Returns the diagnostics; with ``check="error"`` error-severity findings
    raise :class:`repro.errors.ModelCheckError` before the model is used.
    """
    if check == "off":
        return []
    report = check_template(template, node_to_feature=node_to_feature, source=name)
    if check in ("error", "sanitize"):
        report.raise_if_errors(f"fusion model {name}", ModelCheckError)
    return list(report)


def _lint_features(features: FeatureSet, duration: float, name: str, check: str) -> list:
    """Flow-check training streams against the [0,1] × 10 Hz contract.

    Degraded inputs (dropped streams, recorded failures) are legitimately
    short or partial, so only pristine extractions are held to the FLOW005/
    FLOW006 invariants.
    """
    if check == "off" or features.dropped or features.failures:
        return []
    report = check_feature_set(features.streams, duration=duration, source=name)
    if check in ("error", "sanitize"):
        report.raise_if_errors(f"feature set of {name}", DiagnosticError)
    return list(report)


@dataclass
class AudioEvaluation:
    """Excited-speech detection quality on one race."""

    race_name: str
    scores: PrecisionRecall
    posterior: np.ndarray
    segments: list[Interval]
    #: Observed nodes answered without evidence (their modality was lost).
    masked_nodes: list[str] = field(default_factory=list)
    #: Feature streams missing from the input, with reasons.
    dropped_features: dict[str, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.masked_nodes)


class AudioExperiment:
    """Train-once / evaluate-many audio network experiment (Tables 1-2)."""

    def __init__(
        self,
        train_data: RaceData,
        structure: str = "a",
        temporal: str | None = "v1",
        seed: int = 0,
        config: DiscretizationConfig | None = None,
        max_iterations: int = 12,
        check: str = "error",
        allow_missing: bool = False,
    ):
        self.structure = structure
        self.temporal = temporal
        self.config = config
        self.allow_missing = allow_missing
        self.template, self.em_result = train_audio_network(
            train_data.features,
            train_data.truth,
            structure=structure,
            temporal=temporal,
            seed=seed,
            config=config,
            max_iterations=max_iterations,
        )
        self.diagnostics = _lint_model(
            self.template,
            AUDIO_NODE_TO_FEATURE,
            f"audio[{structure}/{temporal}]",
            check=check,
        )
        self.diagnostics.extend(
            _lint_features(
                train_data.features,
                train_data.race.duration,
                f"audio[{structure}/{temporal}] train features",
                check,
            )
        )
        self._engine = CompiledDbn(self.template)

    def _evidence(self, data: RaceData):
        return hard_evidence(
            self.template,
            data.features,
            AUDIO_NODE_TO_FEATURE,
            config=self.config,
            allow_missing=self.allow_missing,
        )

    def posterior(self, data: RaceData, clusters=None) -> np.ndarray:
        """P(EA active) per 0.1 s step over a whole race."""
        evidence = self._evidence(data)
        if self.temporal is None:
            # Plain BN: per-step inference, then temporal accumulation
            # (Fig. 9a post-processing).
            series = self._engine.static_posterior_series(evidence, "EA")[:, 1]
            return accumulate(series, window_seconds=1.5)
        return self._engine.posterior_series(evidence, "EA", clusters=clusters)[:, 1]

    def evaluate(self, data: RaceData, clusters=None) -> AudioEvaluation:
        evidence = self._evidence(data)
        if self.temporal is None:
            series = self._engine.static_posterior_series(evidence, "EA")[:, 1]
            posterior = accumulate(series, window_seconds=1.5)
        else:
            posterior = self._engine.posterior_series(
                evidence, "EA", clusters=clusters
            )[:, 1]
        segments = extract_segments(posterior, min_duration=2.6, merge_gap=0.5)
        truth = data.truth.excited_speech
        scores = segment_precision_recall(segments, truth)
        return AudioEvaluation(
            data.name,
            scores,
            posterior,
            segments,
            masked_nodes=list(evidence.masked),
            dropped_features=dict(data.features.dropped),
        )


@dataclass
class AvEvaluation:
    """Highlight + sub-event detection quality on one race."""

    race_name: str
    highlight_scores: PrecisionRecall
    event_scores: dict[str, PrecisionRecall]
    highlight_segments: list[Interval]
    posteriors: dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    #: Observed nodes answered without evidence (their modality was lost).
    masked_nodes: list[str] = field(default_factory=list)
    #: Feature streams missing from the input, with reasons.
    dropped_features: dict[str, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.masked_nodes)

    def degradations(self) -> list[str]:
        """Human-readable account of everything the answer went without."""
        notes = [
            f"dropped feature {name!r}: {reason}"
            for name, reason in sorted(self.dropped_features.items())
        ]
        notes.extend(
            f"masked evidence node {node!r} (no surviving feature)"
            for node in self.masked_nodes
        )
        return notes


class AvExperiment:
    """Train-once / evaluate-many audio-visual experiment (Tables 3-4)."""

    #: Sub-event node -> ground-truth track.
    EVENT_TRUTH = {"Start": "start", "FlyOut": "fly_out", "Passing": "passing"}

    def __init__(
        self,
        train_data: RaceData,
        include_passing: bool = True,
        seed: int = 0,
        config: DiscretizationConfig | None = None,
        max_iterations: int = 8,
        check: str = "error",
        allow_missing: bool = False,
    ):
        self.include_passing = include_passing
        self.config = config
        self.allow_missing = allow_missing
        self.template, self.em_result = train_av_network(
            train_data.features,
            train_data.truth,
            include_passing=include_passing,
            seed=seed,
            config=config,
            max_iterations=max_iterations,
        )
        self.diagnostics = _lint_model(
            self.template,
            av_node_to_feature(include_passing),
            f"av[passing={include_passing}]",
            check=check,
        )
        self.diagnostics.extend(
            _lint_features(
                train_data.features,
                train_data.race.duration,
                f"av[passing={include_passing}] train features",
                check,
            )
        )
        self._engine = CompiledDbn(self.template)

    def _evidence(self, data: RaceData):
        return hard_evidence(
            self.template,
            data.features,
            av_node_to_feature(self.include_passing),
            config=self.config,
            allow_missing=self.allow_missing,
        )

    def _posteriors_from(self, evidence) -> dict[str, np.ndarray]:
        gamma = self._engine.filter(evidence).gamma
        nodes = ["Highlight", "EA", "Start", "FlyOut"] + (
            ["Passing"] if self.include_passing else []
        )
        return {
            node: self._engine.marginal(gamma, node)[:, 1] for node in nodes
        }

    def posteriors(self, data: RaceData) -> dict[str, np.ndarray]:
        return self._posteriors_from(self._evidence(data))

    def evaluate(self, data: RaceData) -> AvEvaluation:
        evidence = self._evidence(data)
        posteriors = self._posteriors_from(evidence)
        segments = extract_segments(posteriors["Highlight"])
        highlight_scores = segment_precision_recall(
            segments, data.truth.highlights
        )
        event_nodes = {
            name: posteriors[name]
            for name in self.EVENT_TRUTH
            if name in posteriors
        }
        labelled = classify_segments(segments, event_nodes)
        event_scores = {}
        for node, kind in self.EVENT_TRUTH.items():
            if node not in labelled:
                continue
            truth = data.truth.of_kind(kind)
            event_scores[node] = segment_precision_recall(labelled[node], truth)
        return AvEvaluation(
            data.name,
            highlight_scores,
            event_scores,
            segments,
            posteriors,
            masked_nodes=list(evidence.masked),
            dropped_features=dict(data.features.dropped),
        )
