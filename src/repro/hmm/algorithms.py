"""HMM inference algorithms: scaled forward/backward, Viterbi, posteriors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InferenceError
from repro.hmm.model import DiscreteHmm

__all__ = ["ForwardBackwardResult", "forward_backward", "log_likelihood", "viterbi", "sample"]


@dataclass
class ForwardBackwardResult:
    """Scaled forward/backward quantities for one sequence.

    Attributes:
        log_likelihood: log P(observations | model).
        gamma: state posteriors, shape (T, n_states).
        xi_sum: expected transition counts summed over time,
            shape (n_states, n_states).
        alphas: scaled forward variables, shape (T, n_states).
        scales: per-step scaling constants c_t with
            log P(o) = sum(log c_t).
    """

    log_likelihood: float
    gamma: np.ndarray
    xi_sum: np.ndarray
    alphas: np.ndarray
    scales: np.ndarray


def forward_backward(model: DiscreteHmm, observations: Sequence[int]) -> ForwardBackwardResult:
    """Run the scaled forward-backward algorithm on one sequence."""
    obs = model.check_observations(observations)
    t_len = obs.shape[0]
    n = model.n_states
    a = model.transition
    b = model.emission

    alphas = np.zeros((t_len, n))
    scales = np.zeros(t_len)

    alpha = model.initial * b[:, obs[0]]
    scales[0] = alpha.sum()
    if scales[0] == 0:
        raise InferenceError("observation sequence has zero probability at t=0")
    alphas[0] = alpha / scales[0]
    for t in range(1, t_len):
        alpha = (alphas[t - 1] @ a) * b[:, obs[t]]
        scales[t] = alpha.sum()
        if scales[t] == 0:
            raise InferenceError(f"observation sequence has zero probability at t={t}")
        alphas[t] = alpha / scales[t]

    betas = np.zeros((t_len, n))
    betas[-1] = 1.0
    for t in range(t_len - 2, -1, -1):
        betas[t] = (a @ (b[:, obs[t + 1]] * betas[t + 1])) / scales[t + 1]

    gamma = alphas * betas
    gamma /= gamma.sum(axis=1, keepdims=True)

    xi_sum = np.zeros((n, n))
    for t in range(t_len - 1):
        numer = (
            alphas[t][:, None]
            * a
            * (b[:, obs[t + 1]] * betas[t + 1])[None, :]
            / scales[t + 1]
        )
        xi_sum += numer

    return ForwardBackwardResult(
        log_likelihood=float(np.log(scales).sum()),
        gamma=gamma,
        xi_sum=xi_sum,
        alphas=alphas,
        scales=scales,
    )


def log_likelihood(model: DiscreteHmm, observations: Sequence[int]) -> float:
    """log P(observations | model) — the HMM *evaluation* operation.

    This is what each of the six parallel HMM servers computes in the
    paper's Fig. 3/4 before the best-scoring model is selected.
    """
    obs = model.check_observations(observations)
    alpha = model.initial * model.emission[:, obs[0]]
    total = 0.0
    scale = alpha.sum()
    if scale == 0:
        return float("-inf")
    total += np.log(scale)
    alpha /= scale
    for t in range(1, obs.shape[0]):
        alpha = (alpha @ model.transition) * model.emission[:, obs[t]]
        scale = alpha.sum()
        if scale == 0:
            return float("-inf")
        total += np.log(scale)
        alpha /= scale
    return float(total)


def viterbi(model: DiscreteHmm, observations: Sequence[int]) -> tuple[list[int], float]:
    """Most probable state path and its log probability."""
    obs = model.check_observations(observations)
    t_len = obs.shape[0]
    n = model.n_states
    with np.errstate(divide="ignore"):
        log_a = np.log(model.transition)
        log_b = np.log(model.emission)
        log_pi = np.log(model.initial)

    delta = log_pi + log_b[:, obs[0]]
    back = np.zeros((t_len, n), dtype=np.int64)
    for t in range(1, t_len):
        candidates = delta[:, None] + log_a
        back[t] = np.argmax(candidates, axis=0)
        delta = candidates[back[t], np.arange(n)] + log_b[:, obs[t]]
    best_last = int(np.argmax(delta))
    path = [best_last]
    for t in range(t_len - 1, 0, -1):
        path.append(int(back[t, path[-1]]))
    path.reverse()
    return path, float(delta[best_last])


def sample(
    model: DiscreteHmm, length: int, rng: np.random.Generator | None = None
) -> tuple[list[int], list[int]]:
    """Sample (states, observations) of the given length."""
    if length < 1:
        raise InferenceError("sample length must be >= 1")
    rng = rng or np.random.default_rng()
    states: list[int] = []
    observations: list[int] = []
    state = int(rng.choice(model.n_states, p=model.initial))
    for _ in range(length):
        states.append(state)
        observations.append(int(rng.choice(model.n_symbols, p=model.emission[state])))
        state = int(rng.choice(model.n_states, p=model.transition[state]))
    return states, observations
