"""Discrete HMMs: model, inference, Baum-Welch, and the parallel extension."""

from repro.hmm.algorithms import (
    ForwardBackwardResult,
    forward_backward,
    log_likelihood,
    sample,
    viterbi,
)
from repro.hmm.model import DiscreteHmm
from repro.hmm.parallel import (
    HmmExtension,
    HmmModule,
    HmmServer,
    build_parallel_eval_proc,
)
from repro.hmm.train import BaumWelchResult, baum_welch

__all__ = [
    "ForwardBackwardResult",
    "forward_backward",
    "log_likelihood",
    "sample",
    "viterbi",
    "DiscreteHmm",
    "HmmExtension",
    "HmmModule",
    "HmmServer",
    "build_parallel_eval_proc",
    "BaumWelchResult",
    "baum_welch",
]
