"""Baum-Welch training for discrete HMMs (multi-sequence)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import LearningError
from repro.hmm.algorithms import forward_backward
from repro.hmm.model import DiscreteHmm

__all__ = ["BaumWelchResult", "baum_welch"]


@dataclass
class BaumWelchResult:
    """Outcome of a Baum-Welch run."""

    model: DiscreteHmm
    log_likelihoods: list[float]
    converged: bool

    @property
    def iterations(self) -> int:
        return len(self.log_likelihoods)


def baum_welch(
    initial_model: DiscreteHmm,
    sequences: Sequence[Sequence[int]],
    max_iterations: int = 100,
    tolerance: float = 1e-4,
    pseudo_count: float = 1e-3,
) -> BaumWelchResult:
    """Fit HMM parameters by EM over several observation sequences.

    Args:
        initial_model: starting point (structure = state/symbol counts).
        sequences: observation sequences (may differ in length).
        max_iterations: cap on EM sweeps.
        tolerance: stop when total log-likelihood improves by less.
        pseudo_count: Dirichlet smoothing added to all expected counts.

    Returns:
        :class:`BaumWelchResult`; ``log_likelihoods[i]`` is the total
        log-likelihood under the parameters *before* sweep i's update, so
        the list is non-decreasing for a correct implementation.
    """
    if not sequences:
        raise LearningError("baum_welch needs at least one sequence")
    model = initial_model.copy()
    n, m = model.n_states, model.n_symbols
    history: list[float] = []
    converged = False
    for _ in range(max_iterations):
        pi_acc = np.full(n, pseudo_count)
        a_acc = np.full((n, n), pseudo_count)
        b_acc = np.full((n, m), pseudo_count)
        total_ll = 0.0
        for sequence in sequences:
            result = forward_backward(model, sequence)
            total_ll += result.log_likelihood
            pi_acc += result.gamma[0]
            a_acc += result.xi_sum
            obs = np.asarray(sequence, dtype=np.int64)
            for symbol in range(m):
                mask = obs == symbol
                if mask.any():
                    b_acc[:, symbol] += result.gamma[mask].sum(axis=0)
        history.append(total_ll)
        model = DiscreteHmm(
            pi_acc / pi_acc.sum(),
            a_acc / a_acc.sum(axis=1, keepdims=True),
            b_acc / b_acc.sum(axis=1, keepdims=True),
            name=model.name,
        )
        if len(history) >= 2 and abs(history[-1] - history[-2]) < tolerance:
            converged = True
            break
    return BaumWelchResult(model, history, converged)
