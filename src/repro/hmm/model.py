"""Discrete hidden Markov models.

The HMM extension of the Cobra system implements "two basic HMM operations:
training and evaluation" (§3). This module holds the model object; the
algorithms live in :mod:`repro.hmm.algorithms` and training in
:mod:`repro.hmm.train`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InferenceError

__all__ = ["DiscreteHmm"]


class DiscreteHmm:
    """An HMM with discrete observations.

    Args:
        initial: state prior π, shape (n_states,).
        transition: state transition matrix A, shape (n_states, n_states),
            rows sum to one (A[i, j] = P(s_t = j | s_{t-1} = i)).
        emission: emission matrix B, shape (n_states, n_symbols), rows sum
            to one (B[i, k] = P(o_t = k | s_t = i)).
        name: optional label ("Service", "Smash", ... in the paper's Fig 4).
    """

    def __init__(
        self,
        initial: Sequence[float] | np.ndarray,
        transition: Sequence[Sequence[float]] | np.ndarray,
        emission: Sequence[Sequence[float]] | np.ndarray,
        name: str | None = None,
    ):
        pi = np.asarray(initial, dtype=np.float64)
        a = np.asarray(transition, dtype=np.float64)
        b = np.asarray(emission, dtype=np.float64)
        if pi.ndim != 1:
            raise InferenceError("initial distribution must be a vector")
        n = pi.shape[0]
        if a.shape != (n, n):
            raise InferenceError(f"transition matrix must be ({n}, {n}), got {a.shape}")
        if b.ndim != 2 or b.shape[0] != n:
            raise InferenceError(f"emission matrix must have {n} rows, got {b.shape}")
        for label, array, axis in (("initial", pi, None), ("transition", a, 1), ("emission", b, 1)):
            if np.any(array < 0):
                raise InferenceError(f"{label} has negative probabilities")
            sums = array.sum() if axis is None else array.sum(axis=axis)
            if not np.allclose(sums, 1.0, atol=1e-6):
                raise InferenceError(f"{label} rows must sum to 1")
        self.initial = pi
        self.transition = a
        self.emission = b
        self.name = name

    @property
    def n_states(self) -> int:
        return self.initial.shape[0]

    @property
    def n_symbols(self) -> int:
        return self.emission.shape[1]

    def check_observations(self, observations: Sequence[int]) -> np.ndarray:
        obs = np.asarray(observations, dtype=np.int64)
        if obs.ndim != 1 or obs.size == 0:
            raise InferenceError("observation sequence must be a non-empty vector")
        if obs.min() < 0 or obs.max() >= self.n_symbols:
            raise InferenceError(
                f"observations must lie in [0, {self.n_symbols - 1}]"
            )
        return obs

    @staticmethod
    def random(
        n_states: int,
        n_symbols: int,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> "DiscreteHmm":
        """A Dirichlet-random model, e.g. as a Baum-Welch starting point."""
        rng = rng or np.random.default_rng()
        pi = rng.gamma(1.0, size=n_states)
        a = rng.gamma(1.0, size=(n_states, n_states))
        b = rng.gamma(1.0, size=(n_states, n_symbols))
        return DiscreteHmm(
            pi / pi.sum(),
            a / a.sum(axis=1, keepdims=True),
            b / b.sum(axis=1, keepdims=True),
            name=name,
        )

    def copy(self) -> "DiscreteHmm":
        return DiscreteHmm(
            self.initial.copy(),
            self.transition.copy(),
            self.emission.copy(),
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "<anonymous>"
        return f"DiscreteHmm({label}, states={self.n_states}, symbols={self.n_symbols})"
