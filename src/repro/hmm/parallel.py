"""Parallel HMM evaluation — the paper's Fig. 3/4 pathway.

The Cobra system distributes HMM evaluation over several HMM servers called
from a MIL procedure which fans the six calls out under ``threadcnt(7)`` and
picks the best-scoring model. Here:

* :class:`HmmServer` stands in for one remote HMM engine (it holds a model
  bank and answers evaluation calls);
* :class:`HmmModule` is the MEL-style kernel module exposing ``hmmOneCall``;
* :func:`build_parallel_eval_proc` emits the Fig. 4 MIL procedure for a
  given model list;
* :class:`HmmExtension` is the Moa-level extension offering ``train``,
  ``evaluate`` and ``classify`` operators (classify goes through the kernel
  so the parallel physical path is exercised end to end).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import InferenceError
from repro.hmm.algorithms import log_likelihood
from repro.hmm.model import DiscreteHmm
from repro.hmm.train import baum_welch
from repro.moa.extension import MoaExtension
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.monet.module import MonetModule, command

__all__ = [
    "HmmServer",
    "HmmModule",
    "HmmExtension",
    "build_parallel_eval_proc",
]


class HmmServer:
    """One HMM evaluation server (the paper runs six of these remotely).

    The server owns a bank of named models and evaluates observation
    sequences against them. ``calls`` counts evaluations, which the parallel
    bench uses to verify the fan-out actually happened.
    """

    def __init__(self, server_id: int):
        self.server_id = server_id
        self._models: dict[str, DiscreteHmm] = {}
        self.calls = 0

    def load_model(self, name: str, model: DiscreteHmm) -> None:
        self._models[name] = model

    def model_names(self) -> list[str]:
        return sorted(self._models)

    def evaluate(self, model_name: str, observations: Sequence[int]) -> float:
        """log P(observations | model) for one named model."""
        if model_name not in self._models:
            raise InferenceError(
                f"server {self.server_id} has no model {model_name!r}"
            )
        self.calls += 1
        return log_likelihood(self._models[model_name], observations)


class HmmModule(MonetModule):
    """Physical-level MEL module: the ``hmmOneCall`` command of Fig. 4."""

    name = "hmm"

    def __init__(self, servers: Sequence[HmmServer]):
        self._servers = {server.server_id: server for server in servers}

    @command(args=("int", "str", "BAT[void,int]"), returns="flt")
    def hmmOneCall(self, server_id: int, model_name: str, obs: BAT) -> float:
        """Evaluate one model on one server; obs is a [void,int] symbol BAT."""
        if server_id not in self._servers:
            raise InferenceError(f"no HMM server with id {server_id}")
        observations = [int(x) for x in obs.tails()]
        return self._servers[server_id].evaluate(model_name, observations)

    @command(
        args=("BAT[void,dbl]",),
        returns="BAT[void,int]",
        varargs=True,
        arg_ranges=((0.0, 1.0),),
    )
    def quantize(self, *feature_bats: BAT) -> BAT:
        """The Fig. 4 ``quant1``: fuse [void,dbl] feature BATs into symbols.

        Each 0.1 s step gets the index of its strongest feature — a simple
        vector quantization adequate for the evaluation benches.
        """
        if not feature_bats:
            raise InferenceError("quantize needs at least one feature BAT")
        arrays = [b.tail_array() for b in feature_bats]
        length = min(a.shape[0] for a in arrays)
        stacked = np.stack([a[:length] for a in arrays])
        symbols = np.argmax(stacked, axis=0)
        out = BAT("void", "int")
        out.insert_bulk(None, [int(s) for s in symbols])
        return out


def build_parallel_eval_proc(
    proc_name: str, model_names: Sequence[str], n_servers: int
) -> str:
    """Emit the Fig. 4 MIL procedure for parallel multi-model evaluation.

    One model is assigned per server, round-robin. The PROC takes the
    observation BAT, evaluates every model inside a ``PARALLEL`` block sized
    by ``threadcnt(n_servers + 1)``, and returns the best model's name.
    """
    if not model_names:
        raise InferenceError("need at least one model name")
    lines = [
        f"PROC {proc_name}(BAT[void,int] Obs) : str := {{",
        f"  VAR BrProcesa := threadcnt({n_servers + 1});",
        "  VAR parEval := new(str, flt);",
        "  PARALLEL {",
    ]
    for index, model_name in enumerate(model_names):
        server_id = index % n_servers
        lines.append(
            f'    parEval.insert("{model_name}", '
            f'hmmOneCall({server_id}, "{model_name}", Obs));'
        )
    lines += [
        "  }",
        "  VAR best := parEval.max;",
        "  VAR ret := (parEval.reverse).find(best);",
        "  RETURN ret;",
        "}",
    ]
    return "\n".join(lines)


class HmmExtension(MoaExtension):
    """Moa-level HMM extension: train / evaluate / classify operators."""

    name = "hmm"

    def __init__(self, kernel: MonetKernel, n_servers: int = 6):
        if n_servers < 1:
            raise InferenceError("need at least one HMM server")
        self._kernel = kernel
        self._servers = [HmmServer(i) for i in range(n_servers)]
        self._module = HmmModule(self._servers)
        kernel.load_module(self._module)
        self._classify_proc: str | None = None
        self._model_names: list[str] = []

    @property
    def servers(self) -> list[HmmServer]:
        return list(self._servers)

    def monet_module(self) -> MonetModule:
        return self._module

    def operators(self) -> dict[str, Any]:
        return {
            "train": self.train,
            "evaluate": self.evaluate,
            "classify": self.classify,
        }

    # ------------------------------------------------------------------
    def train(
        self,
        name: str,
        sequences: Sequence[Sequence[int]],
        n_states: int,
        n_symbols: int,
        seed: int = 0,
        max_iterations: int = 50,
    ) -> DiscreteHmm:
        """Baum-Welch a model and deploy it to every server under ``name``."""
        rng = np.random.default_rng(seed)
        start = DiscreteHmm.random(n_states, n_symbols, rng=rng, name=name)
        result = baum_welch(start, sequences, max_iterations=max_iterations)
        self.deploy(name, result.model)
        return result.model

    def deploy(self, name: str, model: DiscreteHmm) -> None:
        """Install an already-trained model on all servers."""
        for server in self._servers:
            server.load_model(name, model)
        if name not in self._model_names:
            self._model_names.append(name)
        self._classify_proc = None  # model set changed; re-emit MIL lazily

    def evaluate(self, name: str, observations: Sequence[int]) -> float:
        """Single-model evaluation via server 0."""
        return self._servers[0].evaluate(name, observations)

    def classify(self, observations: Sequence[int]) -> str:
        """Best-model classification through the Fig. 4 parallel MIL proc."""
        if not self._model_names:
            raise InferenceError("no models deployed; train or deploy first")
        if self._classify_proc is None:
            proc_name = f"hmmP{len(self._model_names)}x{id(self) % 10000}"
            source = build_parallel_eval_proc(
                proc_name, self._model_names, len(self._servers)
            )
            self._kernel.run(source)
            self._classify_proc = proc_name
        obs_bat = BAT("void", "int")
        obs_bat.insert_bulk(None, [int(o) for o in observations])
        return self._kernel.call(self._classify_proc, [obs_bat])
