"""The seeded overload chaos scenario (the CI ``overload`` job).

Drives the query service to saturation with the ``overload-burst`` fault
plan — every submission amplified 4x while the extractor lane wedges in
cancellable stalls — against a *durable* kernel, then asserts the
acceptance bar of the service layer:

* **determinism** — the same scenario run twice produces equal
  :class:`ServiceReport` records (admissions, sheds, rejections,
  completions all replay);
* **no silent drops** — every request ends in a terminal status, and
  every non-completed one carries a typed reason;
* **zero lost WAL commits** — every document whose registration
  completed is recoverable from the store after the drain checkpoint;
* **bounded admission latency** — p99 queue wait stays under the bound.

Exit code 0 when every assertion holds, 1 otherwise.

Usage::

    python -m repro.service [--capacity N] [--p99-bound SECONDS]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.cobra.catalog import DomainKnowledge, ExtractionMethod
from repro.cobra.model import RawVideo, VideoDocument
from repro.cobra.vdbms import CobraVDBMS
from repro.durability import DurableStore
from repro.errors import OverloadError
from repro.faults import FaultInjector, get_plan
from repro.service import Priority, QueryService, ServiceConfig, ServiceReport
from repro.synth.annotations import Interval


def make_document(video_id: str) -> VideoDocument:
    document = VideoDocument(
        raw=RawVideo(video_id, f"synthetic://{video_id}", 120.0, 10.0, 192, 144, 16000)
    )
    document.new_event("highlight", Interval(9, 20), 0.8, source="dbn")
    return document


def make_knowledge() -> DomainKnowledge:
    def extract(document):
        return [
            document.new_event(
                "excited_speech", Interval(5, 9), 0.7, source="dbn"
            )
        ]

    return DomainKnowledge(
        "f1",
        methods=[
            ExtractionMethod("chaos_dbn", ("excited_speech",), extract, quality=0.8)
        ],
    )


def run_scenario(store_dir: Path, capacity: int) -> tuple[ServiceReport, list[str]]:
    """One seeded overload run; returns the report and the video ids whose
    registration completed (the WAL-commit ground truth)."""
    injector = FaultInjector(get_plan("overload-burst"))
    db = CobraVDBMS(store=store_dir, faults=injector)
    db.register_domain(make_knowledge())
    service = QueryService(
        db, ServiceConfig(queue_capacity=capacity, shed_policy="oldest")
    )

    # Two waves of 4 real arrivals each; the burst plan turns every one
    # into 4 (1 real + 3 clones), i.e. 16 arrivals per wave against a
    # queue of ``capacity`` — sustained 4x saturation w.r.t. the default
    # capacity of 8, so shed-oldest must engage. Wave 1 registers
    # documents (WAL commits), wave 2 queries them (stalled extraction).
    registers: dict[int, str] = {}
    for index in range(4):
        video_id = f"race{index}"
        try:
            ticket = service.submit_register(make_document(video_id), "f1")
            registers[ticket.seq] = video_id
        except OverloadError:
            pass  # typed rejection, on the record
    service.run_until_idle()
    for index in range(4):
        try:
            service.submit_query(
                f"RETRIEVE excited_speech FROM race{index % 4}",
                priority=Priority.INTERACTIVE,
            )
        except OverloadError:
            pass
    service.run_until_idle()
    report = service.shutdown(deadline=5.0)
    db.close()

    committed = [
        video_id
        for seq, video_id in sorted(registers.items())
        if report.records[seq].status == "completed"
    ]
    # clones that completed also committed their video
    for record in report.records:
        if (
            record.kind == "register"
            and record.status == "completed"
            and record.clone_of in registers
        ):
            video_id = registers[record.clone_of]
            if video_id not in committed:
                committed.append(video_id)
    return report, committed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--capacity", type=int, default=8)
    parser.add_argument("--p99-bound", type=float, default=5.0)
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        first_dir = Path(tmp) / "run1"
        second_dir = Path(tmp) / "run2"
        report, committed = run_scenario(first_dir, args.capacity)
        replay, _ = run_scenario(second_dir, args.capacity)

        print(report.describe())
        print(f"committed registrations: {committed}")

        if report.records != replay.records:
            failures.append("reports differ across identical seeded runs")
        if not report.all_terminal:
            limbo = [r for r in report.records if r.status in ("queued", "running")]
            failures.append(f"requests left in limbo: {limbo}")
        for record in report.records:
            if record.status in ("failed",) and not record.detail:
                failures.append(f"untyped failure on record #{record.seq}")
        if report.shed + report.rejected == 0:
            failures.append(
                "burst at 4x capacity shed/rejected nothing - overload "
                "controls did not engage"
            )
        if report.completed == 0:
            failures.append("nothing completed - the service made no progress")
        p99 = report.p99_admission_latency()
        if p99 > args.p99_bound:
            failures.append(f"p99 admission latency {p99:.3f}s > {args.p99_bound}s")

        # zero lost WAL commits: every completed registration survives
        state = DurableStore(first_dir).recover()
        recovered_events = state.catalog.get("meta_event_video_id")
        recovered_videos = (
            set(recovered_events.tails()) if recovered_events is not None else set()
        )
        for video_id in committed:
            if video_id not in recovered_videos:
                failures.append(
                    f"registration of {video_id!r} completed but is absent "
                    f"after recovery - lost WAL commit"
                )

    if failures:
        print("OVERLOAD CHAOS FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("overload chaos scenario passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
