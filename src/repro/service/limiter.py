"""A token-bucket rate limiter for service admission.

The bucket holds at most ``capacity`` tokens and refills at ``rate``
tokens per second; each admission costs one token. An empty bucket means
the caller is submitting faster than the sustained rate — the service
turns that into a typed :class:`repro.errors.OverloadError` with
``reason="rate-limited"`` and the bucket's ``retry_after`` hint.

The clock is injectable so tests drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ReproError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``rate``/s sustained."""

    def __init__(
        self,
        rate: float,
        capacity: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ReproError(f"refill rate must be > 0, got {rate}")
        if capacity < 1:
            raise ReproError(f"bucket capacity must be >= 1, got {capacity}")
        self._rate = float(rate)
        self._capacity = float(capacity)
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()
        self._lock = threading.Lock()

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def capacity(self) -> int:
        return int(self._capacity)

    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
        self._updated = now

    def try_acquire(self, n: int = 1) -> float | None:
        """Take ``n`` tokens; returns None on success, else the seconds to
        wait until ``n`` tokens will be available (the retry-after hint)."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return None
            return (n - self._tokens) / self._rate
