"""Bulkhead worker lanes built on the kernel's :class:`ParallelExecutor`.

Each lane owns its *own* executor with a fixed width, so a wedged branch
(a stalled video extractor, a runaway batch registration) exhausts only
its lane's threads — the interactive lane keeps serving. This is the
bulkhead pattern: failure isolation by partitioning the thread budget,
not by sharing one big pool.

Lane thunks are expected to be *total* (the service wraps request
execution so errors are recorded on the request, never raised), which
keeps :meth:`ParallelExecutor.run`'s fail-fast sibling-cancellation out
of the picture: one request's failure must not cancel its lane-mates.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.monet.parallel import ParallelExecutor

__all__ = ["BulkheadPool"]


class BulkheadPool:
    """Named lanes, each a fixed-width :class:`ParallelExecutor`."""

    def __init__(self, lanes: Mapping[str, int]):
        if not lanes:
            raise ReproError("a bulkhead pool needs at least one lane")
        self._widths: dict[str, int] = {}
        self._executors: dict[str, ParallelExecutor] = {}
        for name, width in lanes.items():
            if width < 1:
                raise ReproError(f"lane {name!r} width must be >= 1, got {width}")
            self._widths[name] = width
            self._executors[name] = ParallelExecutor(threads=width)

    def lanes(self) -> list[str]:
        return sorted(self._widths)

    def has_lane(self, name: str) -> bool:
        return name in self._widths

    def width(self, name: str) -> int:
        try:
            return self._widths[name]
        except KeyError:
            raise ReproError(f"no bulkhead lane named {name!r}") from None

    def run_batch(
        self,
        lane: str,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str] | None = None,
    ) -> list[Any]:
        """Run a batch of total thunks on one lane's executor."""
        if lane not in self._executors:
            raise ReproError(f"no bulkhead lane named {lane!r}")
        return self._executors[lane].run(thunks, labels)
