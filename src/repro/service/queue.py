"""The bounded admission queue with priority classes and shed-oldest.

Admission control is the service's first line of defence against overload:
the queue holds at most ``capacity`` requests across all priority classes,
and once full either rejects the newcomer (``shed_oldest=False``) or — the
shed-oldest policy — evicts the *oldest request of the least-urgent
nonempty class*, provided that victim is no more urgent than the newcomer.
An interactive query can therefore displace a queued batch registration,
but a batch job can never push out a waiting interactive query.

All decisions are synchronous and happen under one lock, so given a fixed
arrival order the admit/shed/reject outcome sequence is deterministic —
the property the replayable :class:`repro.service.metrics.ServiceReport`
is built on.
"""

from __future__ import annotations

import threading
from collections import deque
from enum import IntEnum
from typing import Any, Iterator

from repro.errors import OverloadError

__all__ = ["Priority", "AdmissionQueue"]


class Priority(IntEnum):
    """Request priority classes; lower value = more urgent."""

    INTERACTIVE = 0
    BATCH = 1


class AdmissionQueue:
    """A bounded, priority-classed FIFO of service requests.

    Entries are any objects carrying ``priority`` (a :class:`Priority`)
    and ``lane`` (a string) attributes. Within a class the order is FIFO;
    :meth:`pop` serves the most urgent class first.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise OverloadError(
                f"queue capacity must be >= 1, got {capacity}", reason="queue-full"
            )
        self._capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._classes: dict[Priority, deque[Any]] = {
            priority: deque() for priority in Priority
        }

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._classes.values())

    def depth(self, priority: Priority) -> int:
        """Queued entries of one priority class."""
        with self._lock:
            return len(self._classes[priority])

    # ------------------------------------------------------------------
    def push(self, entry: Any, shed_oldest: bool = False) -> Any | None:
        """Admit ``entry``; returns the evicted entry when shedding made room.

        Raises :class:`repro.errors.OverloadError` (``reason="queue-full"``)
        when the queue is full and either shedding is off or every queued
        request is more urgent than the newcomer.
        """
        with self._not_empty:
            total = sum(len(q) for q in self._classes.values())
            victim = None
            if total >= self._capacity:
                if not shed_oldest:
                    raise OverloadError(
                        f"admission queue full ({self._capacity} queued)",
                        reason="queue-full",
                    )
                victim = self._shed_candidate(entry.priority)
                if victim is None:
                    raise OverloadError(
                        f"admission queue full ({self._capacity} queued, all "
                        f"more urgent than the new request)",
                        reason="queue-full",
                    )
            self._classes[entry.priority].append(entry)
            self._not_empty.notify()
            return victim

    def _shed_candidate(self, incoming: Priority) -> Any | None:
        """Remove and return the oldest entry of the least-urgent nonempty
        class, or None when everything queued outranks the newcomer."""
        for priority in sorted(Priority, reverse=True):
            queue = self._classes[priority]
            if queue:
                if priority >= incoming:
                    return queue.popleft()
                return None
        return None

    # ------------------------------------------------------------------
    def pop(self) -> Any | None:
        """The most urgent queued entry (FIFO within a class), or None."""
        with self._lock:
            return self._pop_locked()

    def _pop_locked(self, lane: str | None = None) -> Any | None:
        for priority in sorted(Priority):
            queue = self._classes[priority]
            if lane is None:
                if queue:
                    return queue.popleft()
                continue
            for index, entry in enumerate(queue):
                if entry.lane == lane:
                    del queue[index]
                    return entry
        return None

    def pop_lane(self, lane: str) -> Any | None:
        """The most urgent queued entry bound for ``lane``, or None."""
        with self._lock:
            return self._pop_locked(lane)

    def pop_lane_wait(self, lane: str, timeout: float) -> Any | None:
        """Blocking :meth:`pop_lane` for worker threads; None on timeout."""
        with self._not_empty:
            entry = self._pop_locked(lane)
            if entry is not None:
                return entry
            self._not_empty.wait(timeout)
            return self._pop_locked(lane)

    def drain(self) -> Iterator[Any]:
        """Remove and yield every queued entry in (priority, FIFO) order."""
        while True:
            entry = self.pop()
            if entry is None:
                return
            yield entry
