"""The concurrent query-serving layer in front of the Cobra VDBMS.

The paper's prototype answers one query at a time for one researcher; a
production deployment faces traffic. This package adds the overload
machinery between the two:

* :mod:`repro.service.queue` — bounded admission queue with priority
  classes (interactive vs. batch) and the shed-oldest policy;
* :mod:`repro.service.limiter` — token-bucket rate limiting;
* :mod:`repro.service.pool` — bulkhead worker lanes on
  :class:`repro.monet.parallel.ParallelExecutor`;
* :mod:`repro.service.token` — the :class:`CancellationToken` carried
  from admission down to MIL statement dispatch (defined in
  :mod:`repro.resilience`, re-exported here);
* :mod:`repro.service.service` — :class:`QueryService`: submit, execute,
  and drain;
* :mod:`repro.service.metrics` — the deterministic, replayable
  :class:`ServiceReport`.

``python -m repro.service`` runs the seeded overload chaos scenario the
CI job asserts on (burst+stall plan, zero lost WAL commits, bounded p99
admission latency).
"""

from repro.service.limiter import TokenBucket
from repro.service.metrics import (
    RequestRecord,
    ServiceReport,
    TERMINAL_STATUSES,
    percentile,
)
from repro.service.pool import BulkheadPool
from repro.service.queue import AdmissionQueue, Priority
from repro.service.service import QueryService, Request, ServiceConfig, Ticket
from repro.service.token import (
    CancellationToken,
    cancel_checkpoint,
    cancel_scope,
    current_token,
)

__all__ = [
    "AdmissionQueue",
    "BulkheadPool",
    "CancellationToken",
    "Priority",
    "QueryService",
    "Request",
    "RequestRecord",
    "ServiceConfig",
    "ServiceReport",
    "TERMINAL_STATUSES",
    "Ticket",
    "TokenBucket",
    "cancel_checkpoint",
    "cancel_scope",
    "current_token",
    "percentile",
]
