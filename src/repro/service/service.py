"""The overload-safe query service in front of :class:`CobraVDBMS`.

The paper's prototype serves one interactive client; the service layer is
what stands between that prototype and real traffic. Every request passes
through the same pipeline:

1. **admission** — synchronous, under one lock: the drain gate, the
   token-bucket rate limiter, then the bounded priority queue (with the
   shed-oldest policy under saturation). Rejections are typed
   :class:`repro.errors.OverloadError`\\ s, never silent.
2. **execution** — per-lane bulkhead executors; each request runs under
   its own :class:`CancellationToken` (deadline + explicit cancel) which
   the whole stack observes through ambient checkpoints, down to MIL
   statement dispatch.
3. **completion** — the outcome lands on the request record; a ticket
   lets the submitter read the result or the typed failure.

Two execution modes:

* :meth:`QueryService.run_until_idle` — synchronous, deterministic: the
  queue drains in (priority, arrival) order, lane batches run through the
  bulkhead pool, and the resulting :class:`ServiceReport` is byte-equal
  across runs of the same scenario + seeded fault plan.
* :meth:`QueryService.start` — background worker threads per lane, for
  callers that need mid-flight cancellation; :meth:`QueryService.shutdown`
  drains gracefully either way.

Shutdown semantics: admissions stop immediately (``reason="draining"``),
in-flight and queued work is finished while the drain deadline lasts,
whatever remains is cancelled/shed with typed errors, and the durable
store — when attached — is flushed through the kernel's WAL checkpoint so
nothing admitted-and-completed can be lost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import (
    MilCheckError,
    OverloadError,
    ReproError,
    RequestCancelled,
    TimeoutExpired,
)
from repro.monet.mil import ProcDef, parse
from repro.resilience import CancellationToken, Deadline, cancel_scope
from repro.service.limiter import TokenBucket
from repro.service.metrics import RequestRecord, ServiceReport
from repro.service.pool import BulkheadPool
from repro.service.queue import AdmissionQueue, Priority

__all__ = ["ServiceConfig", "Request", "Ticket", "QueryService"]

#: Default bulkhead widths. Width 1 keeps lanes strictly serial, which is
#: what the deterministic-report acceptance bar requires; raise widths for
#: read-only workloads that want intra-lane parallelism.
DEFAULT_LANES: Mapping[str, int] = {"interactive": 1, "batch": 1}


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for admission control and execution.

    Attributes:
        queue_capacity: bound on queued (not yet running) requests.
        interactive_budget: per-request deadline (seconds) for interactive
            queries; None = unbounded.
        batch_budget: per-request deadline for batch work; None = unbounded.
        rate_limit: sustained admissions per second (token-bucket refill);
            None disables rate limiting.
        rate_burst: token-bucket capacity (burst allowance).
        shed_policy: ``"oldest"`` evicts the oldest least-urgent queued
            request to admit a newcomer under saturation; ``"reject"``
            refuses the newcomer instead.
        lanes: bulkhead lane name -> worker width.
        checkpoint_on_drain: flush the durable store (WAL checkpoint) as
            the final drain step.
    """

    queue_capacity: int = 8
    interactive_budget: float | None = None
    batch_budget: float | None = None
    rate_limit: float | None = None
    rate_burst: int = 4
    shed_policy: str = "oldest"
    lanes: Mapping[str, int] = field(default_factory=lambda: dict(DEFAULT_LANES))
    checkpoint_on_drain: bool = True

    def __post_init__(self) -> None:
        if self.shed_policy not in ("oldest", "reject"):
            raise ReproError(
                f"shed_policy must be 'oldest' or 'reject', got {self.shed_policy!r}"
            )


@dataclass
class Request:
    """One submission's full lifecycle, from arrival to terminal status."""

    seq: int
    kind: str  # "query" | "register" | "proc"
    priority: Priority
    lane: str
    payload: Any
    token: CancellationToken
    submitted_at: float
    clone_of: int | None = None
    status: str = "queued"
    detail: str = ""
    coverage: Any = None  # fleet gathers: ShardCoverageReport.to_dict()
    result: Any = None
    error: BaseException | None = None
    admitted_at: float | None = None
    finished_at: float | None = None

    def record(self) -> RequestRecord:
        return RequestRecord(
            seq=self.seq,
            kind=self.kind,
            priority=self.priority.name,
            lane=self.lane,
            status=self.status,
            detail=self.detail,
            clone_of=self.clone_of,
            coverage=self.coverage,
        )


class Ticket:
    """The submitter's handle on an admitted request."""

    def __init__(self, request: Request):
        self._request = request

    @property
    def seq(self) -> int:
        return self._request.seq

    @property
    def status(self) -> str:
        return self._request.status

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Cooperatively cancel: the request stops at its next checkpoint."""
        self._request.token.cancel(reason)

    def result(self) -> Any:
        """The request's result; raises its typed error on any failure."""
        request = self._request
        if request.status == "completed":
            return request.result
        if request.error is not None:
            raise request.error
        raise ReproError(
            f"request #{request.seq} is not finished (status {request.status!r})"
        )


class QueryService:
    """Admission control + bulkhead execution + graceful drain."""

    def __init__(
        self,
        vdbms: Any,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        group: Any | None = None,
        fleet: Any | None = None,
    ):
        self._db = vdbms
        self._config = config or ServiceConfig()
        self._clock = clock
        #: Optional repro.replication.KernelGroup fronting the vdbms
        #: kernel: queries route through its read policy and the report
        #: carries its status (epoch, lag, failovers, fenced writes).
        self._group = group
        #: Optional repro.sharding.ShardedKernel: queries scatter-gather
        #: across the fleet (degraded answers carry their coverage on the
        #: request record), registrations route to the owning shard, and
        #: the report carries the fleet status. Mutually exclusive with
        #: ``group`` — a fleet already replicates per shard.
        self._fleet = fleet
        if group is not None and fleet is not None:
            raise ReproError(
                "pass either group= (one replicated kernel group) or "
                "fleet= (a sharded fleet of groups), not both"
            )
        self._queue = AdmissionQueue(self._config.queue_capacity)
        self._pool = BulkheadPool(self._config.lanes)
        self._limiter = (
            TokenBucket(self._config.rate_limit, self._config.rate_burst, clock=clock)
            if self._config.rate_limit is not None
            else None
        )
        self._lock = threading.Lock()
        self._requests: list[Request] = []
        self._running: set[int] = set()
        self._draining = False
        self._stop = threading.Event()
        self._workers: list[threading.Thread] = []
        self._checkpoint_seqno: int | None = None
        self._service_procs: set[str] = set()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_query(
        self, coql: str, priority: Priority = Priority.INTERACTIVE
    ) -> Ticket:
        """Admit a COQL query (interactive lane by default)."""
        lane = "interactive" if priority == Priority.INTERACTIVE else "batch"
        return self._submit("query", coql, priority, lane)

    def submit_register(self, document: Any, domain: str) -> Ticket:
        """Admit a document registration on the batch lane."""
        return self._submit("register", (document, domain), Priority.BATCH, "batch")

    def submit_proc_call(self, name: str, args: tuple = ()) -> Ticket:
        """Admit a call to a PROC registered via :meth:`register_proc`."""
        if name not in self._service_procs:
            raise ReproError(
                f"PROC {name!r} is not registered for service execution; "
                f"call register_proc() first"
            )
        return self._submit("proc", (name, args), Priority.BATCH, "batch")

    def _submit(
        self, kind: str, payload: Any, priority: Priority, lane: str
    ) -> Ticket:
        if not self._pool.has_lane(lane):
            raise ReproError(f"service has no lane {lane!r}")
        with self._lock:
            if self._draining:
                raise OverloadError(
                    "service is draining; not accepting new work",
                    reason="draining",
                )
            # A seeded burst fault amplifies this arrival: the clones go
            # through the same admission pipeline (and may shed or be
            # rejected) so overload scenarios are replayable without a
            # thousand real clients.
            extra = self._db.faults.burst_count(f"service.submit:{kind}")
            request = self._admit(kind, payload, priority, lane, clone_of=None)
            for _ in range(extra):
                try:
                    self._admit(kind, payload, priority, lane, clone_of=request.seq)
                except OverloadError:
                    pass  # the clone's rejection is on its record
            return Ticket(request)

    def _admit(
        self,
        kind: str,
        payload: Any,
        priority: Priority,
        lane: str,
        clone_of: int | None,
    ) -> Request:
        budget = (
            self._config.interactive_budget
            if priority == Priority.INTERACTIVE
            else self._config.batch_budget
        )
        request = Request(
            seq=len(self._requests),
            kind=kind,
            priority=priority,
            lane=lane,
            payload=payload,
            token=CancellationToken(budget, clock=self._clock),
            submitted_at=self._clock(),
            clone_of=clone_of,
        )
        self._requests.append(request)
        if self._limiter is not None:
            retry_after = self._limiter.try_acquire()
            if retry_after is not None:
                error = OverloadError(
                    f"rate limit exceeded; retry in {retry_after:.3f}s",
                    reason="rate-limited",
                    retry_after=retry_after,
                )
                self._finish_rejected(request, error)
                raise error
        try:
            victim = self._queue.push(
                request, shed_oldest=self._config.shed_policy == "oldest"
            )
        except OverloadError as error:
            self._finish_rejected(request, error)
            raise
        if victim is not None:
            self._mark_shed(victim, "shed")
        return request

    def _finish_rejected(self, request: Request, error: OverloadError) -> None:
        request.status = "rejected"
        request.detail = error.reason
        request.error = error
        request.finished_at = self._clock()

    def _mark_shed(self, victim: Request, reason: str) -> None:
        error = OverloadError(
            f"request #{victim.seq} shed under {reason} policy", reason=reason
        )
        victim.status = "shed"
        victim.detail = reason
        victim.error = error
        victim.finished_at = self._clock()
        victim.token.cancel(f"shed ({reason})")

    # ------------------------------------------------------------------
    # PROC registration (SVC001 gate)
    # ------------------------------------------------------------------
    def register_proc(self, mil_source: str) -> list[str]:
        """Define MIL PROCs for service execution.

        Beyond the kernel's own static checks, service registration runs
        the SVC001 pass: an unbounded ``WHILE`` with no ``cancelpoint()``
        is rejected, because a service lane cannot preempt it. The
        whole-program pass runs alongside it: long-lived service procs are
        exactly where cross-proc holes accumulate, so unresolved call
        targets (CALL001), uncancellable recursion (CALL002), and the
        other ``CALLnnn`` violations are rejected here too.
        """
        from repro.check.programcheck import ProgramChecker
        from repro.check.servicecheck import check_service_source

        report = check_service_source(mil_source, name="<service proc>")
        interpreter = self._db.kernel.interpreter
        report.extend(
            ProgramChecker(
                commands=interpreter._commands,
                signatures=interpreter._signatures,
                globals_names=list(interpreter._globals.variables),
                procedures=dict(interpreter._procs),
            ).check_source(mil_source, name="<service proc>")
        )
        if report.has_errors():
            raise MilCheckError(
                "PROC rejected for service execution", report.sorted()
            )
        self._db.kernel.run(mil_source)
        names = [s.name for s in parse(mil_source) if isinstance(s, ProcDef)]
        self._service_procs.update(names)
        return names

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_until_idle(self) -> ServiceReport:
        """Drain the queue synchronously and deterministically.

        Requests execute in (priority, arrival) order, batched per lane
        through the bulkhead pool; lanes are processed in sorted-name
        order so the schedule — and the report — is reproducible.
        """
        while True:
            batches = self._take_lane_batches()
            if not batches:
                return self.report()
            for lane in sorted(batches):
                entries = batches[lane]
                self._pool.run_batch(
                    lane,
                    [self._executor_thunk(e) for e in entries],
                    labels=[f"request #{e.seq}" for e in entries],
                )

    def _take_lane_batches(self) -> dict[str, list[Request]]:
        batches: dict[str, list[Request]] = {}
        for entry in self._queue.drain():
            batches.setdefault(entry.lane, []).append(entry)
        return batches

    def _executor_thunk(self, request: Request) -> Callable[[], None]:
        return lambda: self._execute(request)

    def _execute(self, request: Request) -> None:
        """Run one request to a terminal status; never raises.

        (Except :class:`SimulatedCrash`, which models a process kill and
        must never be absorbed by recovery machinery.)
        """
        request.admitted_at = self._clock()
        request.status = "running"
        with self._lock:
            self._running.add(request.seq)
        try:
            request.token.check(f"service.start:{request.kind}")
            request.result = self._dispatch(request)
            request.status = "completed"
        except RequestCancelled as exc:
            request.status = "cancelled"
            request.detail = type(exc).__name__
            request.error = exc
        except TimeoutExpired as exc:
            request.status = "timed-out"
            request.detail = type(exc).__name__
            request.error = exc
        except Exception as exc:  # noqa: BLE001 - recorded, typed, never silent
            request.status = "failed"
            request.detail = type(exc).__name__
            request.error = exc
        finally:
            request.finished_at = self._clock()
            with self._lock:
                self._running.discard(request.seq)

    def _dispatch(self, request: Request) -> Any:
        if request.kind == "query":
            if self._fleet is not None:
                # scatter-gather across the fleet; the coverage achieved
                # (shards answered / targeted, corpus fraction) lands on
                # the record, so a degraded-but-served answer is visible
                # in the report, not silent
                result = self._fleet.query(request.payload)
                coverage = result.coverage
                request.detail = (
                    f"gather@{len(coverage.answered)}/"
                    f"{len(coverage.targeted)} "
                    f"coverage={coverage.fraction:.3f}"
                )
                # the full report rides the record too — JSON-round-trip
                # material for artifacts (ShardCoverageReport.from_dict),
                # including the migrating/dual_read counters a mid-split
                # gather reports
                request.coverage = coverage.to_dict()
                return result
            if self._group is not None:
                # the group's read policy picks the node; a replica read
                # executes on the replica's applied state, primary reads
                # stay on the vdbms path. The routed node lands on the
                # record so reports expose the read fan-out.
                routed = self._group.route_read()
                request.detail = f"read@{routed.node}"
                if not routed.is_primary:
                    with cancel_scope(request.token):
                        return routed.replica.query(request.payload)
            return self._db.query(request.payload, token=request.token)
        if request.kind == "register":
            document, domain = request.payload
            if self._fleet is not None:
                shard = self._fleet.register_document(document, domain)
                request.detail = f"placed@{shard}"
                return shard
            return self._db.register_document(document, domain, token=request.token)
        if request.kind == "proc":
            name, args = request.payload
            with cancel_scope(request.token):
                if self._fleet is not None:
                    return self._fleet.scatter_call(name, args)
                return self._db.kernel.call(name, args, deadline=request.token)
        raise ReproError(f"unknown request kind {request.kind!r}")

    # ------------------------------------------------------------------
    # threaded mode
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn background workers: ``width`` threads per bulkhead lane."""
        if self._workers:
            raise ReproError("service workers already started")
        self._stop.clear()
        for lane in self._pool.lanes():
            for index in range(self._pool.width(lane)):
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(lane,),
                    name=f"svc-{lane}-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)

    def _worker_loop(self, lane: str) -> None:
        while not self._stop.is_set():
            entry = self._queue.pop_lane_wait(lane, timeout=0.02)
            if entry is not None:
                self._execute(entry)

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def shutdown(self, deadline: float | Deadline | None = None) -> ServiceReport:
        """Graceful drain: stop admissions, finish what the budget allows,
        cancel/shed the rest with typed errors, flush the durable store.

        ``deadline`` is a budget in seconds (or a prepared
        :class:`Deadline`); None drains without a time bound.
        """
        with self._lock:
            self._draining = True
        if not isinstance(deadline, Deadline):
            deadline = Deadline(deadline, clock=self._clock)
        if self._workers:
            self._drain_threaded(deadline)
        else:
            self._drain_sync(deadline)
        if self._fleet is not None:
            # flush and converge every shard: each live shard checkpoints
            # its WAL and ships its replicas, so the drained fleet is as
            # durable as a drained single kernel
            if self._config.checkpoint_on_drain:
                self._fleet.checkpoint()
            self._fleet.pump()
        elif (
            self._config.checkpoint_on_drain
            and getattr(self._db.kernel, "store", None) is not None
        ):
            self._checkpoint_seqno = self._db.kernel.checkpoint()
        if self._group is not None:
            # converge the replicas on the drained (checkpointed) state so
            # the final report shows the group caught up, not mid-flight
            self._group.pump()
        return self.report()

    def _drain_sync(self, deadline: Deadline) -> None:
        while True:
            entry = self._queue.pop()
            if entry is None:
                return
            if deadline.expired:
                self._mark_shed(entry, "draining")
                continue
            self._execute(entry)

    def _drain_threaded(self, deadline: Deadline) -> None:
        # Let the workers chew through the backlog until the budget runs
        # out, then cancel every in-flight token — cooperative checkpoints
        # stop each request within one kernel step — and shed the queue.
        while not deadline.expired:
            with self._lock:
                busy = bool(self._running)
            if not busy and len(self._queue) == 0:
                break
            time.sleep(0.005)
        for entry in self._queue.drain():
            self._mark_shed(entry, "draining")
        with self._lock:
            in_flight = set(self._running)
        for request in self._requests:
            if request.seq in in_flight:
                request.token.cancel("service draining")
        self._stop.set()
        for worker in self._workers:
            worker.join()
        self._workers.clear()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> ServiceReport:
        """The deterministic outcome of everything submitted so far."""
        with self._lock:
            requests = list(self._requests)
        latencies = tuple(
            request.admitted_at - request.submitted_at
            for request in requests
            if request.admitted_at is not None
        )
        return ServiceReport(
            records=tuple(request.record() for request in requests),
            checkpoint_seqno=self._checkpoint_seqno,
            admission_latencies=latencies,
            replication=(
                self._group.status() if self._group is not None else None
            ),
            sharding=(
                self._fleet.status() if self._fleet is not None else None
            ),
        )
