"""Cancellation tokens for the service layer — re-exported.

The token machinery lives in :mod:`repro.resilience` so the low layers
(Moa evaluation, DBN inference, the MIL interpreter) can checkpoint
against the ambient token without importing the service package — which
would be a circular import, since the service sits on top of them. This
module is the service-facing name for the same objects.
"""

from repro.resilience import (
    CancellationToken,
    cancel_checkpoint,
    cancel_scope,
    current_token,
)

__all__ = [
    "CancellationToken",
    "cancel_checkpoint",
    "cancel_scope",
    "current_token",
]
