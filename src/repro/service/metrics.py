"""The deterministic service report.

Every request the service ever saw — admitted, rejected, shed, completed,
failed, cancelled — leaves exactly one :class:`RequestRecord`, and the
:class:`ServiceReport` is the ordered tuple of them. The record fields are
pure functions of the arrival order and the seeded fault plan, so two runs
of the same scenario produce *equal* reports; wall-clock measurements
(admission latencies) ride along but are excluded from equality.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "RequestRecord",
    "ServiceReport",
    "percentile",
    "TERMINAL_STATUSES",
]

#: Every request must end in one of these — "no silent drops".
TERMINAL_STATUSES = frozenset(
    {"completed", "failed", "rejected", "shed", "cancelled", "timed-out"}
)


@dataclass(frozen=True)
class RequestRecord:
    """One request's deterministic outcome."""

    seq: int
    kind: str  # "query" | "register" | "proc"
    priority: str  # Priority member name
    lane: str
    status: str  # see TERMINAL_STATUSES, plus transient "queued"/"running"
    detail: str = ""  # rejection reason, shed reason, or error type
    clone_of: int | None = None  # seq of the original for burst clones
    #: For queries answered by a sharded fleet: the gather's
    #: :meth:`repro.sharding.ShardCoverageReport.to_dict` payload — how
    #: degraded (or dual-read, mid-migration) this specific answer was.
    #: None for non-fleet requests. Deterministic, so part of equality.
    coverage: Any = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" ({self.detail})" if self.detail else ""
        clone = f" clone-of=#{self.clone_of}" if self.clone_of is not None else ""
        return f"#{self.seq} {self.kind}/{self.priority}@{self.lane}: {self.status}{extra}{clone}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "priority": self.priority,
            "lane": self.lane,
            "status": self.status,
            "detail": self.detail,
            "clone_of": self.clone_of,
            "coverage": dict(self.coverage) if self.coverage else None,
        }


@dataclass(frozen=True)
class ServiceReport:
    """Everything a service run did, replayable under the same fault plan.

    Equality covers only the deterministic fields (``records`` and
    ``checkpoint_seqno``); latencies are measurements and excluded.
    """

    records: tuple[RequestRecord, ...]
    #: Durable-store checkpoint written by the drain, or None.
    checkpoint_seqno: int | None = None
    #: Queue-wait per executed request (seconds), in seq order.
    admission_latencies: tuple[float, ...] = field(default=(), compare=False)
    #: Status of the attached replicated kernel group at report time (a
    #: :class:`repro.replication.GroupStatus` — epoch, per-replica lag,
    #: failovers, fenced writes; its wall-clock staleness readings are
    #: excluded from equality by that type itself), or None when the
    #: service fronts a single kernel.
    replication: Any = None
    #: Status of the attached sharded fleet at report time (a
    #: :class:`repro.sharding.FleetStatus` — per-shard document counts,
    #: dead shards, epochs, fenced retries; fully deterministic), or None
    #: when the service fronts a single kernel or one replicated group.
    sharding: Any = None

    def __len__(self) -> int:
        return len(self.records)

    def counts(self) -> dict[str, int]:
        """Records per terminal status."""
        out: dict[str, int] = {}
        for record in self.records:
            out[record.status] = out.get(record.status, 0) + 1
        return out

    def by_status(self, status: str) -> list[RequestRecord]:
        return [r for r in self.records if r.status == status]

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.status == "completed")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.records if r.status == "shed")

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if r.status == "rejected")

    @property
    def all_terminal(self) -> bool:
        """True when no request was left in limbo — the no-silent-drops bar."""
        return all(r.status in TERMINAL_STATUSES for r in self.records)

    def p99_admission_latency(self) -> float:
        """99th-percentile queue wait in seconds (0 with no executions)."""
        return percentile(self.admission_latencies, 99.0)

    def describe(self) -> str:
        lines = [f"ServiceReport: {len(self.records)} request(s)"]
        for status, n in sorted(self.counts().items()):
            lines.append(f"  {status}: {n}")
        if self.admission_latencies:
            lines.append(
                f"  p99 admission latency: {self.p99_admission_latency() * 1e3:.1f} ms"
            )
        if self.checkpoint_seqno is not None:
            lines.append(f"  drain checkpoint: seqno {self.checkpoint_seqno}")
        if self.replication is not None:
            lines.extend(
                "  " + line for line in self.replication.describe().splitlines()
            )
        if self.sharding is not None:
            lines.extend(
                "  " + line for line in self.sharding.describe().splitlines()
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of the deterministic fields.

        Fleet query records carry their per-gather coverage payload
        (round-trippable through
        :meth:`repro.sharding.ShardCoverageReport.from_dict`); the
        attached replication/sharding statuses serialize through their
        own ``to_dict`` when they have one, ``dataclasses.asdict``
        otherwise. Wall-clock latencies are excluded, matching equality.
        """
        return {
            "records": [record.to_dict() for record in self.records],
            "checkpoint_seqno": self.checkpoint_seqno,
            "replication": _jsonable(self.replication),
            "sharding": _jsonable(self.sharding),
        }


def _jsonable(status: Any) -> Any:
    if status is None:
        return None
    to_dict = getattr(status, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if dataclasses.is_dataclass(status):
        return dataclasses.asdict(status)
    return repr(status)  # pragma: no cover - no such status type today


def percentile(values: tuple[float, ...] | list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]
