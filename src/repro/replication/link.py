"""The WAL-shipping link between a primary store and its replicas.

A :class:`ReplicationLink` reads the primary's on-disk durable store — the
same checkpoint + WAL files crash recovery reads — and turns a replica's
:class:`ReplicaPosition` into a :class:`Shipment`: either an incremental
WAL tail (the common case) or a full catch-up (checkpoint snapshot + the
WAL tail after it) when the position no longer matches the primary's
lineage. Two events invalidate a position:

* the primary checkpointed (``base_seqno`` mismatch) — the WAL the replica
  was tailing has been folded into a new snapshot and truncated;
* the group failed over (``epoch`` mismatch) — the replica was tracking a
  deposed primary and must re-seed from the new one.

The link never touches a live kernel object: shipping reads only durable
bytes, so a crashed ("killed") primary can still be drained of everything
that survived on disk during failover, and a torn tail left by the crash
is naturally excluded (``read_records`` stops at the first bad record,
exactly as recovery would).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.durability.checkpoint import Checkpoint, read_checkpoint
from repro.durability.store import WAL_FILE
from repro.durability.wal import read_records

__all__ = ["ReplicaPosition", "ReplicationLink", "Shipment"]


@dataclass(frozen=True)
class ReplicaPosition:
    """How far into the primary's durable lineage a replica has consumed.

    ``epoch`` is the group epoch the position was established under,
    ``base_seqno`` the checkpoint seqno the applied state is based on, and
    ``records_consumed`` the count of WAL records consumed since that
    checkpoint (consumed, not applied: uncommitted transaction records are
    consumed into a pending buffer and only applied at their commit
    marker). The sentinel default never matches a live primary, so a fresh
    replica's first fetch is always a full catch-up.
    """

    epoch: int = -1
    base_seqno: int = -1
    records_consumed: int = 0


@dataclass
class Shipment:
    """One pump round's payload for one replica."""

    #: Full checkpoint to install first (catch-up rounds only).
    snapshot: Checkpoint | None
    #: WAL records to consume, in append order.
    records: list[dict[str, Any]] = field(default_factory=list)
    #: The replica's position after consuming this shipment.
    position: ReplicaPosition = field(default_factory=ReplicaPosition)
    #: True when the position had to be re-seeded from the checkpoint.
    catchup: bool = False
    #: Durable records that exist on the primary but were NOT shipped
    #: (withheld by a ``lag`` fault) — the replica's lag after this round.
    remaining: int = 0


class ReplicationLink:
    """Reads one primary store directory and computes shipments."""

    def __init__(self, store_path: str | Path):
        self.store_path = Path(store_path)

    def _scan(self) -> tuple[Checkpoint, list[dict[str, Any]]]:
        snapshot = read_checkpoint(self.store_path) or Checkpoint()
        scan = read_records(self.store_path / WAL_FILE)
        return snapshot, scan.records

    def fetch(
        self, position: ReplicaPosition, epoch: int, withhold: int = 0
    ) -> Shipment:
        """The shipment that advances ``position`` toward the primary.

        ``epoch`` is the group's current epoch (stamped into the returned
        position); ``withhold`` keeps that many of the newest records back,
        modelling a lagging link without severing it.
        """
        snapshot, records = self._scan()
        if position.epoch != epoch or position.base_seqno != snapshot.seqno:
            tail = records
            consumed_before = 0
            catchup = True
        else:
            tail = records[position.records_consumed :]
            consumed_before = position.records_consumed
            snapshot = None  # incremental: the replica's base still holds
            catchup = False
        if withhold > 0:
            tail = tail[: max(0, len(tail) - withhold)]
        consumed_after = consumed_before + len(tail)
        base_seqno = (
            snapshot.seqno if snapshot is not None else position.base_seqno
        )
        return Shipment(
            snapshot=snapshot,
            records=list(tail),
            position=ReplicaPosition(epoch, base_seqno, consumed_after),
            catchup=catchup,
            remaining=len(records) - consumed_after,
        )

    def backlog(self, position: ReplicaPosition, epoch: int) -> int:
        """Durable records the replica has not consumed (lag accounting for
        partitioned rounds, where nothing can actually ship)."""
        snapshot, records = self._scan()
        if position.epoch != epoch or position.base_seqno != snapshot.seqno:
            # the position is off-lineage: everything must re-ship
            return len(records) + len(snapshot.catalog) + len(snapshot.procs)
        return len(records) - position.records_consumed
