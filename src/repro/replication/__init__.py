"""Replicated kernel groups: WAL-shipping replicas, failover, fencing.

The replication layer turns the durability machinery of
:mod:`repro.durability` into a small replicated system: a
:class:`KernelGroup` fronts one durable primary :class:`MonetKernel` and N
:class:`Replica` read replicas, each fed by streaming the primary's WAL
records over a :class:`ReplicationLink` and applying them through the same
replay semantics as crash recovery. Reads route by staleness policy
(``primary`` / ``any`` / ``bounded(ms)``), failed primaries are detected
by circuit-breaker probes and replaced by promoting the least-lagged
replica, epoch fencing rejects a deposed primary's late writes, and
partitioned replicas catch back up from a checkpoint snapshot + WAL tail.
:mod:`repro.replication.chaos` verifies all of it under seeded kills and
partitions; :mod:`repro.check.replcheck` statically vets group
configurations (REPL001-REPL003).
"""

from repro.replication.group import (
    FailoverEvent,
    GroupConfig,
    GroupStatus,
    KernelGroup,
    Lease,
    ReplicaStatus,
    RoutedRead,
)
from repro.replication.link import ReplicaPosition, ReplicationLink, Shipment
from repro.replication.replica import Replica

__all__ = [
    "FailoverEvent",
    "GroupConfig",
    "GroupStatus",
    "KernelGroup",
    "Lease",
    "Replica",
    "ReplicaPosition",
    "ReplicaStatus",
    "ReplicationLink",
    "RoutedRead",
    "Shipment",
]
