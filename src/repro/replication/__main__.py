"""Run the replication chaos suite and emit its convergence report.

Usage::

    python -m repro.replication [--dir DIR] [--out FILE] [--seed N]
                                [--no-fsync]

Runs the seeded partition/failover scenario twice (the two runs must
produce byte-identical reports — chaos as a reproducible test, not
flakiness), then the commit-path kill sweep (primary killed
mid-transaction at each ``wal.commit:*`` crash point). Exits non-zero if
any run fails to converge byte-for-byte, accepts a fenced write, or the
two seeded runs diverge. ``--out`` writes the JSON convergence report the
CI ``replication-chaos`` job uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.replication.chaos import (
    partition_failover_scenario,
    replication_kill_sweep,
)

REPORT_FORMAT = "repro-replication-chaos/1"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication",
        description="Seeded partition/failover chaos for the kernel group.",
    )
    parser.add_argument(
        "--dir", default=None, help="scratch directory (default: a temp dir)"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON convergence report here"
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--no-fsync", action="store_true", help="skip fsync calls (faster)"
    )
    args = parser.parse_args(argv)
    base = Path(args.dir or tempfile.mkdtemp(prefix="repro-replication-"))
    fsync = not args.no_fsync

    print(f"seeded partition/failover scenario (seed={args.seed}) under {base}")
    first = partition_failover_scenario(
        base / "run-1", seed=args.seed, fsync=fsync
    )
    second = partition_failover_scenario(
        base / "run-2", seed=args.seed, fsync=fsync
    )
    print(first.describe())
    deterministic = first.to_dict() == second.to_dict()
    if not deterministic:
        print("NON-DETERMINISTIC: two runs of the same seed diverged")

    print("commit-path kill sweep (primary killed mid-transaction):")
    sweep = replication_kill_sweep(base / "sweep", seed=args.seed, fsync=fsync)
    print(sweep.describe())

    ok = first.ok and second.ok and deterministic and sweep.ok
    report = {
        "format": REPORT_FORMAT,
        "seed": args.seed,
        "deterministic": deterministic,
        "scenario": first.to_dict(),
        "sweep": sweep.to_dict(),
        "ok": ok,
    }
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"convergence report written to {args.out}")
    print("replication chaos: " + ("CONVERGED" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
