"""The replicated kernel group: primary + WAL-shipping read replicas.

A :class:`KernelGroup` fronts one durable primary :class:`MonetKernel` and
N :class:`Replica` instances. :meth:`pump` ships each replica the WAL
records (or a full checkpoint catch-up) it is missing, consulting the
fault injector per replica link — ``kind="partition"`` severs a link for a
round, ``kind="lag"`` withholds the newest records — so the chaos harness
can drive the group through the regimes the routing and failover logic
must survive.

Reads route by policy (``"primary"``, ``"any"``, ``"bounded(ms)"``);
writes go through epoch-stamped :class:`Lease` credentials so a deposed
primary's late writes are *fenced*: after :meth:`failover` bumps the group
epoch, any write presented under the old epoch raises
:class:`repro.errors.FencedWriteError` instead of forking the lineage.
Primary health is probed through a :class:`repro.resilience.CircuitBreaker`;
once it opens, the least-lagged reachable replica is promoted through the
normal durability path (its applied state becomes a fresh checkpointed
store) and the survivors re-seed from the new lineage on their next pump.

Construction runs the :mod:`repro.check.replcheck` static pass (REPL001-
REPL003) under the configured check mode, mirroring how the query service
vets its own configuration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.check.diagnostics import CheckMode, Diagnostic
from repro.errors import (
    FencedWriteError,
    ReplicationCheckError,
    ReplicationError,
    ReproError,
    SimulatedCrash,
    StalenessBoundError,
)
from repro.faults import FaultInjector, FaultPlan, resolve_injector
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.replication.link import ReplicationLink
from repro.replication.replica import Replica
from repro.resilience import CircuitBreaker

__all__ = [
    "FailoverEvent",
    "GroupConfig",
    "GroupStatus",
    "KernelGroup",
    "Lease",
    "ReplicaStatus",
    "RoutedRead",
]


@dataclass(frozen=True)
class GroupConfig:
    """Configuration of one kernel group.

    ``registered_lag_ms`` declares each replica's expected steady-state
    link lag — the operator's capacity claim the REPL003 check holds the
    ``bounded(ms)`` read policy against.
    """

    read_policy: str = "primary"
    #: Reject writes presented under a stale epoch (REPL002 when off).
    fencing: bool = True
    #: Consecutive failed probes before the breaker opens -> failover.
    failure_threshold: int = 2
    #: Breaker open -> half-open delay (seconds).
    recovery_timeout: float = 30.0
    #: Where writes route; anything but "primary" is REPL001.
    write_routing: str = "primary"
    #: Declared steady-state link lag per replica name (milliseconds).
    registered_lag_ms: Mapping[str, float] = field(default_factory=dict)
    #: Strictness of the REPL static pass: error | warn | off.
    check: str = "error"
    #: Promote automatically when the probe breaker opens.
    auto_failover: bool = True
    #: fsync discipline for stores created by promotion.
    fsync: bool = True


@dataclass(frozen=True)
class FailoverEvent:
    """One completed promotion."""

    epoch: int  # the new epoch the promotion established
    deposed: str
    promoted: str
    promoted_lag: int  # the winner's lag (records) at promotion time


@dataclass(frozen=True)
class ReplicaStatus:
    """Point-in-time view of one replica (wall-clock staleness excluded
    from equality so status snapshots compare deterministically)."""

    name: str
    lag_records: int
    partitioned: bool
    snapshots_installed: int
    records_applied: int
    has_pending: bool
    staleness_ms: float = field(compare=False, default=0.0)


@dataclass(frozen=True)
class GroupStatus:
    """Deterministically comparable snapshot of the whole group."""

    epoch: int
    primary: str
    primary_healthy: bool
    fenced_writes: int
    failovers: tuple[FailoverEvent, ...]
    replicas: tuple[ReplicaStatus, ...]
    reads: tuple[tuple[str, int], ...]

    def describe(self) -> str:
        lines = [
            f"kernel group: epoch {self.epoch}, primary {self.primary} "
            f"({'healthy' if self.primary_healthy else 'DOWN'}), "
            f"{self.fenced_writes} fenced write(s)"
        ]
        for status in self.replicas:
            flags = []
            if status.partitioned:
                flags.append("partitioned")
            if status.has_pending:
                flags.append("pending txn")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"  {status.name}: lag {status.lag_records} record(s), "
                f"staleness {status.staleness_ms:.1f}ms, "
                f"{status.records_applied} applied, "
                f"{status.snapshots_installed} snapshot(s){suffix}"
            )
        for event in self.failovers:
            lines.append(
                f"  failover -> epoch {event.epoch}: {event.promoted} "
                f"promoted over {event.deposed} "
                f"(lag {event.promoted_lag} record(s))"
            )
        return "\n".join(lines)


@dataclass
class RoutedRead:
    """Where one read was routed."""

    node: str
    is_primary: bool
    kernel: MonetKernel
    replica: Replica | None = None


class Lease:
    """An epoch-stamped write credential.

    Issued by :meth:`KernelGroup.lease` against the current primary and
    epoch; every write presented through :meth:`write` is checked against
    the group's *current* epoch, so a lease held across a failover fences
    instead of writing to (or as) a deposed primary.
    """

    __slots__ = ("_group", "epoch", "holder")

    def __init__(self, group: "KernelGroup", epoch: int, holder: str):
        self._group = group
        self.epoch = epoch
        self.holder = holder

    def write(self, fn: Callable[[MonetKernel], Any]) -> Any:
        return self._group.fenced_write(self, fn)


class KernelGroup:
    """One primary plus N WAL-shipping read replicas.

    Args:
        primary: a durable kernel (``store=...`` is required — replication
            ships the store's WAL, so a store-less primary has nothing to
            replicate).
        base_dir: directory under which each replica gets a subdirectory
            for its (promotion-time) durable store.
        replicas: replica names, or a count (``2`` -> ``replica-0``,
            ``replica-1``).
        faults: injector consulted on the replica links
            (``replication.link:<name>``) and the health probe
            (``replication.probe:<primary>``); defaults to sharing the
            primary's injector so one plan drives the whole group.
        clock: injectable monotonic clock (staleness, breaker timing).
    """

    def __init__(
        self,
        primary: MonetKernel,
        base_dir: str | Path,
        replicas: int | Iterable[str] = 2,
        config: GroupConfig | None = None,
        faults: "FaultInjector | FaultPlan | None" = None,
        clock: Callable[[], float] = time.monotonic,
        primary_name: str = "primary",
    ):
        if primary.store is None:
            raise ReplicationError(
                "replication requires a durable primary: construct the "
                "kernel with store=<directory> so its WAL can be shipped"
            )
        self.config = config or GroupConfig()
        self._clock = clock
        self.faults = (
            primary.faults if faults is None else resolve_injector(faults)
        )
        self.base_dir = Path(base_dir)
        if isinstance(replicas, int):
            names = [f"replica-{i}" for i in range(replicas)]
        else:
            names = list(replicas)
        if len(set(names)) != len(names):
            raise ReplicationError(f"duplicate replica names in {names}")

        # static vetting of the configuration (REPL001-REPL003)
        from repro.check.replcheck import check_group_config, parse_read_policy

        self._policy = parse_read_policy(self.config.read_policy)
        mode = CheckMode.of(self.config.check)
        #: REPL findings collected at construction (empty with check="off").
        self.diagnostics: list[Diagnostic] = []
        if mode.checks:
            report = check_group_config(self.config, names)
            self.diagnostics = report.sorted()
            if mode.raises:
                report.raise_if_errors(
                    "kernel group configuration", ReplicationCheckError
                )

        self._lock = threading.RLock()
        self._epoch = 1
        self._primary = primary
        self._primary_name = primary_name
        self._primary_dead = False
        self._link = ReplicationLink(primary.store.path)
        self._replicas: dict[str, Replica] = {
            name: Replica(name, self.base_dir / name, clock=clock)
            for name in names
        }
        self._breaker = self._new_breaker(primary_name)
        self._fenced_writes = 0
        self._failovers: list[FailoverEvent] = []
        self._reads: dict[str, int] = {}

    def _new_breaker(self, primary_name: str) -> CircuitBreaker:
        return CircuitBreaker(
            name=f"replication.primary:{primary_name}",
            failure_threshold=self.config.failure_threshold,
            recovery_timeout=self.config.recovery_timeout,
            clock=self._clock,
        )

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def primary(self) -> MonetKernel:
        return self._primary

    @property
    def primary_name(self) -> str:
        return self._primary_name

    @property
    def failovers(self) -> list[FailoverEvent]:
        return list(self._failovers)

    @property
    def fenced_writes(self) -> int:
        return self._fenced_writes

    def replica(self, name: str) -> Replica:
        try:
            return self._replicas[name]
        except KeyError:
            raise ReplicationError(
                f"no replica named {name!r} in the group "
                f"(have: {sorted(self._replicas)})"
            ) from None

    def replica_names(self) -> list[str]:
        return sorted(self._replicas)

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def pump(self, rounds: int = 1) -> None:
        """Ship each replica the records it is missing, ``rounds`` times.

        Each replica link is an independent fault site
        (``replication.link:<name>``): a firing ``partition`` spec drops
        the round's whole shipment, a ``lag`` spec withholds its newest
        ``factor`` records. Admin partitions (:meth:`partition`) sever the
        link until :meth:`heal`.
        """
        with self._lock:
            for _ in range(rounds):
                self._pump_once()

    def _pump_once(self) -> None:
        now = self._clock()
        for name in sorted(self._replicas):
            replica = self._replicas[name]
            site = f"replication.link:{name}"
            if replica.partitioned or self.faults.link_partitioned(site):
                replica.mark_lag(
                    now, self._link.backlog(replica.position, self._epoch)
                )
                continue
            withhold = self.faults.link_lag(site)
            shipment = self._link.fetch(
                replica.position, self._epoch, withhold=withhold
            )
            replica.apply_shipment(shipment)
            replica.mark_lag(now, shipment.remaining)

    def partition(self, name: str) -> None:
        """Administratively sever one replica's link until :meth:`heal`."""
        self.replica(name).partitioned = True

    def heal(self, name: str) -> None:
        """Restore a severed link; the next pump catches the replica up."""
        self.replica(name).partitioned = False

    # ------------------------------------------------------------------
    # read routing
    # ------------------------------------------------------------------
    def route_read(self, policy: str | None = None) -> RoutedRead:
        """Pick the node one read should execute on.

        ``policy`` overrides the configured read policy for this read
        (parsed with the same grammar). Routing:

        * ``primary`` — always the primary (fails when it is down);
        * ``any`` — the least-lagged reachable replica, falling back to
          the primary when no replica is reachable;
        * ``bounded(ms)`` — the least-lagged reachable replica whose
          staleness is within the bound, else the primary; when the
          primary is down too, :class:`StalenessBoundError` — the caller
          asked for freshness nobody can currently attest.
        """
        from repro.check.replcheck import parse_read_policy

        with self._lock:
            mode, bound = (
                self._policy if policy is None else parse_read_policy(policy)
            )
            if mode == "primary":
                return self._route_primary()
            now = self._clock()
            candidates = [
                replica
                for _, replica in sorted(self._replicas.items())
                if not replica.partitioned
            ]
            if mode == "bounded":
                assert bound is not None
                candidates = [
                    replica
                    for replica in candidates
                    if replica.staleness_ms(now) <= bound
                ]
            if candidates:
                best = min(candidates, key=lambda r: (r.lag_records, r.name))
                return self._route_replica(best)
            if not self._primary_dead:
                # the primary is definitionally fresh
                return self._route_primary()
            if mode == "bounded":
                raise StalenessBoundError(
                    f"no replica within the {bound:g}ms staleness bound and "
                    f"the primary is down; nothing can attest the requested "
                    f"freshness"
                )
            return self._route_primary()  # raises: primary down, no replicas

    def _route_primary(self) -> RoutedRead:
        if self._primary_dead:
            raise ReplicationError(
                f"primary {self._primary_name!r} is down and failover has "
                f"not completed"
            )
        self._reads[self._primary_name] = (
            self._reads.get(self._primary_name, 0) + 1
        )
        return RoutedRead(self._primary_name, True, self._primary)

    def _route_replica(self, replica: Replica) -> RoutedRead:
        self._reads[replica.name] = self._reads.get(replica.name, 0) + 1
        return RoutedRead(replica.name, False, replica.kernel, replica)

    # ------------------------------------------------------------------
    # fenced writes
    # ------------------------------------------------------------------
    def lease(self) -> Lease:
        """An epoch-stamped write credential for the current primary."""
        with self._lock:
            return Lease(self, self._epoch, self._primary_name)

    def fenced_write(
        self, lease: Lease, fn: Callable[[MonetKernel], Any]
    ) -> Any:
        """Apply ``fn`` to the primary iff ``lease`` is of the current epoch.

        A stale-epoch lease (held across a failover — the deposed primary's
        "late write") raises :class:`FencedWriteError` and is counted, so
        the convergence report can assert zero such writes were accepted.
        With ``fencing=False`` (flagged REPL002) the check is skipped —
        the hazard the diagnostic exists to reject.
        """
        with self._lock:
            if self.config.fencing and lease.epoch != self._epoch:
                self._fenced_writes += 1
                raise FencedWriteError(
                    f"write by {lease.holder!r} rejected by epoch fence",
                    lease_epoch=lease.epoch,
                    group_epoch=self._epoch,
                )
            kernel = self._primary
        return fn(kernel)

    # ------------------------------------------------------------------
    # health + failover
    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """One health probe of the primary, through the circuit breaker.

        The probe is a fault site (``replication.probe:<primary>``), so a
        chaos plan can fail it directly; a primary marked dead (its write
        path raised :class:`SimulatedCrash`) always fails. Once
        ``failure_threshold`` consecutive probes fail the breaker opens
        and, with ``auto_failover``, the least-lagged reachable replica is
        promoted.
        """
        with self._lock:
            site = f"replication.probe:{self._primary_name}"
            healthy = False
            if not self._primary_dead:
                try:
                    self.faults.on_call(site)
                    self._primary.catalog_names()
                    healthy = True
                except SimulatedCrash:
                    self._primary_dead = True
                except ReproError:
                    pass
            if healthy:
                self._breaker.record_success()
                return True
            self._breaker.record_failure()
            if (
                self._breaker.state == CircuitBreaker.OPEN
                and self.config.auto_failover
                and self._replicas
            ):
                self.failover()
            return False

    def report_primary_failure(self) -> None:
        """Tell the group the primary's write path crashed (the caller saw
        :class:`SimulatedCrash` or equivalent); probes will now fail."""
        with self._lock:
            self._primary_dead = True

    def failover(self) -> str:
        """Promote the least-lagged reachable replica to primary.

        Runs a final pump first: shipping reads only the deposed primary's
        *durable* bytes, so everything that survived on disk — and nothing
        that did not — reaches the replicas before the winner is chosen.
        An uncommitted batch left by a mid-commit crash stays pending and
        is discarded by promotion, exactly as crash recovery would discard
        it. The group epoch then increments: in-flight leases fence, and
        the surviving replicas re-seed from the new lineage (their
        position's epoch no longer matches) on their next pump.
        """
        with self._lock:
            self._primary_dead = True
            self._pump_once()
            candidates = [
                replica
                for _, replica in sorted(self._replicas.items())
                if not replica.partitioned
            ]
            if not candidates:
                raise ReplicationError(
                    "no reachable replica to promote (all partitioned or "
                    "none configured)"
                )
            chosen = min(candidates, key=lambda r: (r.lag_records, r.name))
            del self._replicas[chosen.name]
            deposed_kernel = self._primary
            deposed_name = self._primary_name
            promoted = chosen.promote(check="warn", fsync=self.config.fsync)
            # the dead "process" is abandoned; release its WAL handle (the
            # kill is simulated in-process, the descriptor would leak)
            deposed_kernel.close()
            self._epoch += 1
            self._primary = promoted
            self._primary_name = chosen.name
            self._primary_dead = False
            self._link = ReplicationLink(promoted.store.path)
            self._breaker = self._new_breaker(chosen.name)
            self._failovers.append(
                FailoverEvent(
                    epoch=self._epoch,
                    deposed=deposed_name,
                    promoted=chosen.name,
                    promoted_lag=chosen.lag_records,
                )
            )
            return chosen.name

    # ------------------------------------------------------------------
    # verification + status
    # ------------------------------------------------------------------
    def convergence_report(self) -> list[str]:
        """Byte-for-byte divergence between the primary and every replica.

        Empty when every replica's applied catalog matches the primary's
        (structurally and on the numeric tail bytes) and no shipped PROC
        is missing. Replicas are expected to have been pumped to lag 0
        first; a lagging replica reports its divergence, which is the
        point.
        """
        from repro.durability.chaos import compare_catalogs

        with self._lock:
            expected = self._primary.snapshot()
            expected_procs = set(self._primary.procedures())
            failures: list[str] = []
            for name in sorted(self._replicas):
                replica = self._replicas[name]
                failures.extend(
                    f"{name}: {message}"
                    for message in compare_catalogs(expected, replica.catalog())
                )
                missing = expected_procs - set(replica.kernel.procedures())
                if missing:
                    failures.append(
                        f"{name}: shipped PROC(s) missing: {sorted(missing)}"
                    )
            return failures

    def status(self) -> GroupStatus:
        with self._lock:
            now = self._clock()
            replicas = tuple(
                ReplicaStatus(
                    name=name,
                    lag_records=replica.lag_records,
                    partitioned=replica.partitioned,
                    snapshots_installed=replica.snapshots_installed,
                    records_applied=replica.records_applied,
                    has_pending=replica.has_pending,
                    staleness_ms=round(replica.staleness_ms(now), 3),
                )
                for name, replica in sorted(self._replicas.items())
            )
            return GroupStatus(
                epoch=self._epoch,
                primary=self._primary_name,
                primary_healthy=not self._primary_dead,
                fenced_writes=self._fenced_writes,
                failovers=tuple(self._failovers),
                replicas=replicas,
                reads=tuple(sorted(self._reads.items())),
            )

    def close(self) -> None:
        """Release the primary's WAL handle."""
        with self._lock:
            self._primary.close()
