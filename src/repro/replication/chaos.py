"""Seeded chaos verification of the replicated kernel group.

:func:`partition_failover_scenario` drives one deterministic disaster:

1. a primary + two replicas are stood up; a seeded plan partitions
   ``replica-1``'s link (``kind="partition"``) for the first rounds while
   ``replica-0`` tracks the primary;
2. the primary is killed *mid-transaction* (a ``kind="kill"`` fault at a
   ``wal.commit:*`` crash point) — the WAL is left with whatever the kill
   allowed to become durable, possibly an uncommitted batch;
3. probes fail, the circuit breaker opens, and the least-lagged reachable
   replica (``replica-0``) is promoted — after a final pump that drains
   the dead primary's durable bytes;
4. the deposed primary's lease attempts a late write, which the epoch
   fence must reject;
5. ``replica-1``'s partition heals; it catches up from the *new* lineage
   (full checkpoint snapshot + WAL tail) and the group must converge
   byte-for-byte, with the killed transaction present iff its crash point
   is classified durable (the same :data:`repro.durability.chaos.CRASH_SITES`
   contract the single-node kill-point sweep enforces).

Everything is a pure function of the plan seed, so running the scenario
twice must produce identical reports — the CLI (``python -m
repro.replication``) checks exactly that and emits the convergence report
CI archives. :func:`replication_kill_sweep` repeats the scenario with the
kill at every commit-path crash point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.durability.chaos import CRASH_SITES, DURABLE, compare_catalogs
from repro.durability.store import DurableStore
from repro.errors import FencedWriteError, SimulatedCrash
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.replication.group import GroupConfig, KernelGroup

__all__ = [
    "KILL_SWEEP_SITES",
    "ReplicationChaosReport",
    "ReplicationSweepSummary",
    "partition_failover_scenario",
    "replication_kill_sweep",
]

#: The commit-path crash points the replicated sweep kills the primary at.
KILL_SWEEP_SITES = (
    "wal.commit:begin",
    "wal.commit:mid",
    "wal.commit:marker",
    "wal.commit:synced",
)

_PROC_SOURCE = """
PROC bestLap(BAT[void,dbl] laps) : dbl := {
    RETURN laps.min;
}
"""


def _laps() -> BAT:
    return BAT.from_columns(
        "void", "dbl", [0, 1, 2], [78.123, 77.901, 78.456], next_oid=3
    )


def _laps_extended() -> BAT:
    return BAT.from_columns(
        "void", "dbl", [0, 1, 2, 3], [78.123, 77.901, 78.456, 77.512],
        next_oid=4,
    )


def _drivers() -> BAT:
    return BAT.from_columns(
        "void", "str", [0, 1], ["hakkinen", "schumacher"], next_oid=2
    )


def _pits() -> BAT:
    return BAT.from_columns("void", "dbl", [0, 1], [7.8, 8.4], next_oid=2)


def _sectors() -> BAT:
    return BAT.from_columns(
        "void", "dbl", [0, 1, 2], [-0.12, 0.34, -0.05], next_oid=3
    )


def _fastest() -> BAT:
    return BAT.from_columns("void", "dbl", [0], [77.512], next_oid=1)


def _ranking() -> BAT:
    return BAT.from_columns("void", "int", [0, 1, 2], [3, 1, 2], next_oid=3)


def _ghost() -> BAT:
    return BAT.from_columns("void", "int", [0], [666], next_oid=1)


@dataclass
class ReplicationChaosReport:
    """Deterministic outcome of one partition/failover scenario run."""

    kill_site: str
    classification: str
    crashed: bool
    epoch: int
    promoted: str
    fenced_writes: int
    fence_held: bool
    fatal_txn_expected: bool
    fatal_txn_present: bool
    replica_lags: dict[str, int] = field(default_factory=dict)
    replica_snapshots: dict[str, int] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    events: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"{status}  kill@{self.kill_site} [{self.classification}]: "
            f"epoch {self.epoch}, promoted {self.promoted}, "
            f"{self.fenced_writes} fenced write(s), fatal txn "
            f"{'present' if self.fatal_txn_present else 'absent'} "
            f"(expected "
            f"{'present' if self.fatal_txn_expected else 'absent'})"
        ]
        lines.extend(f"      {failure}" for failure in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable, wall-clock-free form (the determinism and CI
        artifact payload)."""
        return {
            "kill_site": self.kill_site,
            "classification": self.classification,
            "crashed": self.crashed,
            "epoch": self.epoch,
            "promoted": self.promoted,
            "fenced_writes": self.fenced_writes,
            "fence_held": self.fence_held,
            "fatal_txn_expected": self.fatal_txn_expected,
            "fatal_txn_present": self.fatal_txn_present,
            "replica_lags": dict(sorted(self.replica_lags.items())),
            "replica_snapshots": dict(sorted(self.replica_snapshots.items())),
            "failures": list(self.failures),
            "events": list(self.events),
            "ok": self.ok,
        }


def partition_failover_scenario(
    base_dir: str | Path,
    seed: int = 2026,
    kill_site: str = "wal.commit:mid",
    fsync: bool = True,
) -> ReplicationChaosReport:
    """Run the seeded kill/partition/failover/heal scenario once."""
    base = Path(base_dir)
    classification = CRASH_SITES.get(kill_site, "absent")
    plan = FaultPlan(
        seed=seed,
        name=f"replication-chaos@{kill_site}",
        specs=(
            FaultSpec(site=kill_site, kind="kill", max_triggers=1),
            # replica-1's link is down for the first three shipment rounds
            # (two workload pumps + the failover drain), then heals
            FaultSpec(
                site="replication.link:replica-1",
                kind="partition",
                max_triggers=3,
            ),
        ),
    )
    injector = FaultInjector(plan)
    report = ReplicationChaosReport(
        kill_site=kill_site,
        classification=classification,
        crashed=False,
        epoch=0,
        promoted="",
        fenced_writes=0,
        fence_held=False,
        fatal_txn_expected=classification == DURABLE,
        fatal_txn_present=False,
    )
    events = report.events

    store = DurableStore(base / "primary", faults=injector, fsync=fsync)
    primary = MonetKernel(threads=1, check="warn", store=store)
    group = KernelGroup(
        primary,
        base,
        replicas=("replica-0", "replica-1"),
        config=GroupConfig(
            read_policy="bounded(250)",
            failure_threshold=2,
            fsync=fsync,
            registered_lag_ms={"replica-0": 10.0, "replica-1": 40.0},
        ),
        faults=injector,
    )

    expected: dict[str, BAT] = {}
    lease = group.lease()
    lease.write(lambda k: k.persist("lap_time", _laps()))
    lease.write(lambda k: k.persist("driver", _drivers()))
    lease.write(lambda k: k.run(_PROC_SOURCE))
    expected["lap_time"] = _laps()
    expected["driver"] = _drivers()
    group.pump()
    events.append("setup shipped; replica-1 link partitioned")
    lease.write(lambda k: k.persist("pit_stop", _pits()))
    expected["pit_stop"] = _pits()
    group.pump()

    # the fatal transaction: killed at the configured crash point
    def fatal(kernel: MonetKernel) -> None:
        with kernel.transaction():
            kernel.persist("sector_delta", _sectors())
            kernel.persist("fastest_lap", _fastest())

    try:
        lease.write(fatal)
    except SimulatedCrash:
        report.crashed = True
        group.report_primary_failure()
        events.append(f"primary killed mid-transaction at {kill_site}")
    if report.fatal_txn_expected:
        # the commit marker reached disk before the kill: the transaction
        # is durable and MUST survive the failover
        expected["sector_delta"] = _sectors()
        expected["fastest_lap"] = _fastest()

    # probes fail, the breaker opens, the group promotes
    group.probe()
    group.probe()
    report.epoch = group.epoch
    report.promoted = group.primary_name
    events.append(
        f"failover complete: {group.primary_name} leads epoch {group.epoch}"
    )

    # the deposed primary's late write must fence
    try:
        lease.write(lambda k: k.persist("ghost_write", _ghost()))
    except FencedWriteError:
        report.fence_held = True
        events.append("deposed lease fenced (stale epoch rejected)")

    # life goes on under the new lease; replica-1 heals and re-seeds
    new_lease = group.lease()
    new_lease.write(lambda k: k.persist("final_ranking", _ranking()))
    new_lease.write(lambda k: k.persist("lap_time", _laps_extended()))
    expected["final_ranking"] = _ranking()
    expected["lap_time"] = _laps_extended()
    group.pump(rounds=2)
    events.append("replica-1 healed and caught up from the new lineage")

    # ---- verification -------------------------------------------------
    failures = report.failures
    if not report.crashed:
        failures.append(f"kill at {kill_site} never fired")
    if not report.fence_held:
        failures.append("deposed primary's late write was NOT fenced")
    report.fenced_writes = group.fenced_writes
    if report.epoch != 2:
        failures.append(f"expected epoch 2 after one failover, got {report.epoch}")

    recovered = group.primary.snapshot()
    report.fatal_txn_present = (
        "sector_delta" in recovered and "fastest_lap" in recovered
    )
    if report.fatal_txn_present != report.fatal_txn_expected:
        failures.append(
            f"fatal transaction "
            f"{'survived' if report.fatal_txn_present else 'was lost'} but "
            f"{kill_site} is classified {classification}"
        )
    if "ghost_write" in recovered:
        failures.append("fenced write reached the promoted primary's catalog")
    failures.extend(
        f"primary: {message}"
        for message in compare_catalogs(expected, recovered)
    )
    if "bestLap" not in group.primary.procedures():
        failures.append("shipped PROC bestLap missing on the promoted primary")
    failures.extend(group.convergence_report())

    status = group.status()
    for replica_status in status.replicas:
        report.replica_lags[replica_status.name] = replica_status.lag_records
        report.replica_snapshots[replica_status.name] = (
            replica_status.snapshots_installed
        )
        if replica_status.lag_records != 0:
            failures.append(
                f"{replica_status.name}: still lagging "
                f"{replica_status.lag_records} record(s) after heal"
            )
    group.close()
    return report


@dataclass
class ReplicationSweepSummary:
    """Scenario outcomes across every commit-path kill site."""

    results: list[ReplicationChaosReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def describe(self) -> str:
        lines = [result.describe() for result in self.results]
        good = sum(1 for result in self.results if result.ok)
        lines.append(
            f"replication kill sweep: {good}/{len(self.results)} site(s) "
            f"converged byte-for-byte with the fence held"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "results": [result.to_dict() for result in self.results],
            "ok": self.ok,
        }


def replication_kill_sweep(
    base_dir: str | Path,
    sites: tuple[str, ...] | None = None,
    seed: int = 2026,
    fsync: bool = True,
) -> ReplicationSweepSummary:
    """Kill the primary mid-transaction at every commit-path crash point;
    every run must fail over, fence the deposed lease, and converge."""
    base = Path(base_dir)
    summary = ReplicationSweepSummary()
    for site in sites or KILL_SWEEP_SITES:
        scratch = base / site.replace(":", "__").replace(".", "_")
        summary.results.append(
            partition_failover_scenario(
                scratch, seed=seed, kill_site=site, fsync=fsync
            )
        )
    return summary
