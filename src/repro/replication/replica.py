"""A read replica: applied WAL state, staleness accounting, promotion.

A :class:`Replica` holds an internal store-less :class:`MonetKernel` whose
catalog is the replication apply target. Shipments are applied with the
same semantics as crash recovery (:meth:`DurableStore.recover`): auto-commit
records apply immediately, transaction records buffer from their ``begin``
until the ``commit`` marker arrives, and a batch whose marker never ships
(the primary died mid-commit, or a ``lag`` fault withheld the tail) stays
pending across pumps — and is discarded on promotion, exactly as recovery
discards an uncommitted batch.

Reads are served through a fresh :class:`repro.cobra.metadata.MetadataStore`
per query: applying a ``persist`` record *replaces* the BAT object in the
catalog, so a cached metadata view would silently keep serving the old
BATs.
"""

from __future__ import annotations

import base64
import pickle
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.durability.checkpoint import Checkpoint
from repro.durability.wal import bat_from_payload
from repro.errors import MonetError, ReplicationError
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.replication.link import ReplicaPosition, Shipment

if TYPE_CHECKING:  # imported lazily: cobra layers on monet
    from repro.cobra.metadata import MetadataStore

__all__ = ["Replica"]


class Replica:
    """One read replica of a kernel group.

    Args:
        name: group-unique replica name (also its fault-site suffix).
        path: directory the replica will promote its durable store into.
        clock: injectable monotonic clock for staleness accounting.
    """

    def __init__(
        self,
        name: str,
        path: str | Path,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.path = Path(path)
        self._clock = clock
        #: Store-less serving kernel; its catalog is the apply target.
        self.kernel = MonetKernel(threads=1, check="off")
        self.position = ReplicaPosition()
        #: Uncommitted transaction records buffered between pumps.
        self._pending: list[dict[str, Any]] | None = None
        #: Admin-severed link (fault-injected partitions are per-round).
        self.partitioned = False
        #: Module names shipped via ``module`` records.
        self.modules: set[str] = set()
        #: Durable primary records not yet consumed, as of the last pump.
        self.lag_records = 0
        self._caught_up_at = clock()
        self.records_applied = 0
        self.commits_applied = 0
        self.snapshots_installed = 0
        self.promoted = False

    # ------------------------------------------------------------------
    # applying shipments
    # ------------------------------------------------------------------
    def apply_shipment(self, shipment: Shipment) -> int:
        """Consume one shipment; returns the records applied (not buffered)."""
        if self.promoted:
            raise ReplicationError(
                f"replica {self.name!r} was promoted and no longer applies"
            )
        if shipment.snapshot is not None:
            self._install_snapshot(shipment.snapshot)
        applied = 0
        for record in shipment.records:
            op = record.get("op")
            if op == "begin":
                # a dangling begin (previous batch lost its commit to a
                # crash) is superseded, as in recovery
                self._pending = []
            elif op == "commit":
                if self._pending is not None:
                    for buffered in self._pending:
                        self._apply_record(buffered)
                        applied += 1
                    self.commits_applied += 1
                    self._pending = None
            elif op == "abort":
                pass  # audit marker; nothing was buffered for it
            elif self._pending is not None:
                self._pending.append(record)
            else:
                self._apply_record(record)
                applied += 1
        self.position = shipment.position
        return applied

    def _install_snapshot(self, snapshot: Checkpoint) -> None:
        """Re-seed the replica from a full checkpoint (catch-up rounds)."""
        self._pending = None  # off-lineage pending records are garbage
        for name in self.kernel.catalog_names():
            self.kernel.drop(name)
        for name in sorted(snapshot.catalog):
            self.kernel.persist(name, snapshot.catalog[name])
        for name, definition in sorted(snapshot.definitions().items()):
            # procs are never dropped, so redefining over survivors is
            # exactly the recovery semantics; checks off: the defining
            # modules live on the primary, not here
            self.kernel.interpreter.define_proc(definition, check="off")
        self.modules = set(snapshot.modules)
        self.snapshots_installed += 1

    def _apply_record(self, record: dict[str, Any]) -> None:
        """Replay one committed record (mirrors ``DurableStore._apply``)."""
        op = record.get("op")
        if op == "persist":
            name = record["name"]
            self.kernel.persist(name, bat_from_payload(record["bat"], name=name))
        elif op == "drop":
            try:
                self.kernel.drop(record["name"])
            except MonetError:
                pass  # idempotent, as in recovery
        elif op == "proc":
            definition = pickle.loads(base64.b64decode(record["def"]))
            self.kernel.interpreter.define_proc(definition, check="off")
        elif op == "module":
            self.modules.add(record["name"])
        self.records_applied += 1

    @property
    def has_pending(self) -> bool:
        """Whether an uncommitted transaction batch is buffered."""
        return self._pending is not None

    def discard_pending(self) -> int:
        """Drop any buffered uncommitted batch (promotion, re-seed)."""
        dropped = len(self._pending) if self._pending is not None else 0
        self._pending = None
        return dropped

    # ------------------------------------------------------------------
    # staleness
    # ------------------------------------------------------------------
    def mark_lag(self, now: float, lag_records: int) -> None:
        """Record this pump round's lag; caught-up rounds reset the clock."""
        self.lag_records = lag_records
        if lag_records == 0:
            self._caught_up_at = now

    def staleness_ms(self, now: float | None = None) -> float:
        """Milliseconds since the replica was last fully caught up.

        0.0 while caught up — a caught-up replica serves the same committed
        state as the primary, however long ago the last write happened.
        """
        if self.lag_records == 0:
            return 0.0
        now = self._clock() if now is None else now
        return max(0.0, (now - self._caught_up_at) * 1000.0)

    # ------------------------------------------------------------------
    # serving reads
    # ------------------------------------------------------------------
    def read_view(self) -> "MetadataStore":
        """A fresh metadata view over the applied state (never cached:
        applying a ``persist`` replaces the underlying BAT object)."""
        from repro.cobra.metadata import MetadataStore

        return MetadataStore(self.kernel)

    def query(self, coql_source: str) -> list[dict[str, Any]]:
        """Execute one read-only COQL query against the applied state."""
        from repro.cobra.query import QueryExecutor, parse_coql

        return QueryExecutor(self.read_view()).execute(parse_coql(coql_source))

    def catalog(self) -> dict[str, BAT]:
        """Deep copy of the applied catalog (for convergence checks)."""
        return self.kernel.snapshot()

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    def promote(
        self, check: str = "warn", fsync: bool = True
    ) -> MonetKernel:
        """Turn the applied state into a new durable primary.

        Builds a :class:`DurableStore` at :attr:`path`, replays the applied
        catalog into it as one transaction, re-defines the shipped PROCs
        (WAL-logged via the interpreter's define hook), records the module
        expectations, and folds it all into a checkpoint so the new
        lineage starts with an empty WAL. Any pending uncommitted batch is
        discarded first — the deposed primary never committed it.
        """
        from repro.durability.store import DurableStore

        if self.promoted:
            raise ReplicationError(f"replica {self.name!r} already promoted")
        store = DurableStore(self.path, fsync=fsync)
        if (self.path / "checkpoint").exists() or store.wal_size() > 0:
            raise ReplicationError(
                f"refusing to promote {self.name!r} into non-empty store "
                f"directory {self.path}"
            )
        self.discard_pending()
        kernel = MonetKernel(threads=1, check=check, store=store)
        snapshot = self.kernel.snapshot()
        if snapshot:
            with kernel.transaction():
                for name in sorted(snapshot):
                    kernel.persist(name, snapshot[name])
        for name, procedure in sorted(
            self.kernel.interpreter.procedures.items()
        ):
            kernel.interpreter.define_proc(procedure.definition, check="off")
        for module in sorted(self.modules):
            store.log_module(module)
        kernel.checkpoint()
        self.promoted = True
        return kernel
