"""Video synthesis for a race timeline.

Renders the broadcast picture the paper's §5.3/§5.4 detectors consume:

* per-shot scene tones with hard cuts (shot-detection ground truth),
* moving track texture and car rectangles (motion / color difference),
* the start semaphore — a red rectangle widening in regular steps,
* passing manoeuvres — a car sweeping across the frame, with the sweep's
  visual strength controlled by the event's ``visibility`` (the German GP
  camera work vs the rest),
* fly-outs — dust and sand colored regions,
* replays bracketed by DVE wipes,
* superimposed text overlays.

Frames are a pure function of (timeline, frame index), so the stream can be
re-iterated without buffering the race.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.synth.race import RaceTimeline
from repro.synth.text_synth import draw_overlay
from repro.video.flyout import DUST_RGB, SAND_RGB
from repro.video.frames import FrameStream

__all__ = ["RaceVideoRenderer", "render_video"]

#: Length of each DVE wipe bracketing a replay, seconds.
DVE_SECONDS = 0.8


class RaceVideoRenderer:
    """Deterministic frame renderer for one race timeline."""

    def __init__(
        self,
        timeline: RaceTimeline,
        height: int = 144,
        width: int = 192,
        fps: float = 10.0,
        noise: int = 12,
    ):
        self.timeline = timeline
        self.height = height
        self.width = width
        self.fps = fps
        self.noise = noise
        self.n_frames = int(timeline.duration * fps)
        self._cuts = sorted(timeline.shot_cuts)
        seed = timeline.spec.seed + 2
        shot_count = len(self._cuts) + 1
        shot_rng = np.random.default_rng(seed)
        self._shot_tones = shot_rng.integers(60, 150, size=(shot_count, 3))
        self._shot_speeds = shot_rng.uniform(25.0, 60.0, size=shot_count)
        # A fifth of all shots are steady-cam (helicopter / long lens):
        # low background motion without any passing going on — the decoy
        # that makes the German-trained passing sub-network misfire on the
        # other races (Table 4).
        steady = shot_rng.random(shot_count) < 0.2
        self._shot_speeds[steady] *= 0.08
        self._car_colors = shot_rng.integers(120, 255, size=(shot_count, 2, 3))

    # ------------------------------------------------------------------
    def stream(self) -> FrameStream:
        return FrameStream(
            lambda: (self.frame(i) for i in range(self.n_frames)),
            self.fps,
            self.n_frames,
        )

    def frame(self, index: int) -> np.ndarray:
        """Render frame ``index`` (pure function of the timeline)."""
        t = index / self.fps
        shot = bisect.bisect_right(self._cuts, t)
        shot_start = self._cuts[shot - 1] if shot > 0 else 0.0
        rng = np.random.default_rng(
            (self.timeline.spec.seed + 3) * 1_000_003 + index
        )

        frame = self._background(t, shot, shot_start)
        self._draw_cars(frame, t, shot, shot_start)
        self._draw_passing(frame, t)
        self._draw_fly_out(frame, t, rng)
        self._draw_semaphore(frame, t)
        self._apply_replay_tone(frame, t)
        self._apply_dve(frame, t)
        self._draw_overlays(frame, t)

        if self.noise:
            jitter = rng.integers(-self.noise, self.noise + 1, frame.shape)
            frame = np.clip(frame.astype(np.int16) + jitter, 0, 255)
        return frame.astype(np.uint8)

    # ------------------------------------------------------------------
    def _background(self, t: float, shot: int, shot_start: float) -> np.ndarray:
        tone = self._shot_tones[shot]
        frame = np.empty((self.height, self.width, 3), dtype=np.int16)
        frame[:, :] = tone
        # moving track stripes
        speed = self._shot_speeds[shot] * self._motion_boost(t)
        offset = int((t - shot_start) * speed)
        xs = (np.arange(self.width) + offset) // 14 % 2 == 0
        frame[self.height // 2 :, xs] -= 25
        # sky band
        frame[: self.height // 5] += 35
        return np.clip(frame, 0, 255)

    def _motion_boost(self, t: float) -> float:
        for event in self.timeline.events:
            if event.kind == "start" and event.time <= t < event.time + event.duration:
                return 3.0
        # During a well-covered passing the camera tracks the duel, so the
        # background is nearly static and the overtaking car's sweep
        # dominates the motion histogram — the German GP camera work.
        damp = self._passing_damp(t)
        if damp is not None:
            return damp
        return 1.0

    def _passing_damp(self, t: float) -> float | None:
        for event in self.timeline.events:
            if event.kind != "passing":
                continue
            if event.time <= t < event.time + event.duration:
                return float(1.0 - 0.92 * event.visibility)
        return None

    def _draw_cars(
        self, frame: np.ndarray, t: float, shot: int, shot_start: float
    ) -> None:
        # The broadcast camera pans WITH the cars: in-frame they only drift
        # and bob slightly while the background streams past. A genuine
        # sweep across the frame therefore only happens when one car
        # overtakes another (and the director holds the shot).
        h, w = self.height, self.width
        for lane in range(2):
            color = self._car_colors[shot, lane]
            base = int((shot * 53 + lane * 71) % (w - 40))
            drift = 9.0 * np.sin(2 * np.pi * 0.35 * (t - shot_start) + lane)
            x = int(base + drift)
            y = int(h * (0.55 + 0.18 * lane))
            self._rect(frame, y, y + 10, x, x + 22, color)

    def _draw_passing(self, frame: np.ndarray, t: float) -> None:
        for event in self.timeline.events:
            if event.kind != "passing":
                continue
            if not event.time <= t < event.time + event.duration:
                continue
            progress = (t - event.time) / event.duration
            visibility = event.visibility
            # weak camera work: the overtaking car is small and barely sweeps
            width = int(10 + 20 * visibility)
            height = int(8 + 8 * visibility)
            sweep = 0.15 + 0.85 * visibility
            x = int(self.width * (0.02 + sweep * progress * 0.95))
            y = int(self.height * 0.58)
            self._rect(
                frame, y, y + height, x, x + width, np.array([235, 220, 40])
            )

    def _draw_fly_out(
        self, frame: np.ndarray, t: float, rng: np.random.Generator
    ) -> None:
        for event in self.timeline.events:
            if event.kind != "fly_out":
                continue
            if not event.time <= t < event.time + event.duration:
                continue
            progress = (t - event.time) / event.duration
            intensity = np.sin(np.pi * min(progress * 1.4, 1.0))
            h, w = self.height, self.width
            # sand: gravel trap filling the lower third
            sand_rows = slice(int(h * 0.65), h)
            sand_cols = slice(int(w * 0.1), int(w * (0.3 + 0.5 * intensity)))
            self._blend(frame, sand_rows, sand_cols, SAND_RGB, 0.9)
            # dust cloud: center-right haze
            dust_rows = slice(int(h * 0.25), int(h * 0.7))
            dust_cols = slice(int(w * 0.4), int(w * (0.55 + 0.4 * intensity)))
            self._blend(frame, dust_rows, dust_cols, DUST_RGB, 0.6 * intensity + 0.3)

    def _draw_semaphore(self, frame: np.ndarray, t: float) -> None:
        for event in self.timeline.events:
            if event.kind != "start":
                continue
            lead = event.time - t
            if not 0.0 < lead <= 6.0:
                continue
            # one more light column every second: widening red rectangle
            lights = int(np.ceil(6.0 - lead))
            width = 8 * max(lights, 1)
            x0 = self.width // 2 - width // 2
            self._rect(
                frame, 8, 18, x0, x0 + width, np.array([225, 25, 25])
            )

    def _replay_windows(self) -> list[tuple[float, float]]:
        return [(i.start, i.end) for i, _ in self.timeline.replays]

    def _apply_replay_tone(self, frame: np.ndarray, t: float) -> None:
        for start, end in self._replay_windows():
            if start <= t < end:
                frame += 30
                np.clip(frame, 0, 255, out=frame)
                return

    def _apply_dve(self, frame: np.ndarray, t: float) -> None:
        for start, end in self._replay_windows():
            for anchor, direction in ((start, 1), (end, -1)):
                begin = anchor - DVE_SECONDS
                if begin <= t < anchor:
                    progress = (t - begin) / DVE_SECONDS
                    if direction < 0:
                        progress = 1.0 - progress
                    edge = int(self.width * progress)
                    frame[:, :edge] = np.clip(
                        frame[:, :edge].astype(np.int16) + 90, 0, 255
                    )
                    return

    def _draw_overlays(self, frame: np.ndarray, t: float) -> None:
        for interval, words in self.timeline.overlays:
            if interval.start <= t < interval.end:
                draw_overlay(frame, words)
                return

    # ------------------------------------------------------------------
    @staticmethod
    def _rect(
        frame: np.ndarray, top: int, bottom: int, left: int, right: int, color
    ) -> None:
        h, w = frame.shape[:2]
        top, bottom = max(top, 0), min(bottom, h)
        left, right = max(left, 0), min(right, w)
        if top < bottom and left < right:
            frame[top:bottom, left:right] = color

    @staticmethod
    def _blend(frame: np.ndarray, rows: slice, cols: slice, color, alpha: float) -> None:
        region = frame[rows, cols].astype(np.float64)
        target = np.array(color, dtype=np.float64)
        frame[rows, cols] = (
            (1 - alpha) * region + alpha * target
        ).astype(np.int16)


def render_video(timeline: RaceTimeline, **kwargs) -> FrameStream:
    """Convenience: build a renderer and return its stream."""
    return RaceVideoRenderer(timeline, **kwargs).stream()
