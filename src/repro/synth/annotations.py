"""Ground-truth annotations for synthetic races.

The paper evaluates against manual annotations of the three digitized
Grands Prix. The synthetic races carry their annotations by construction:
time intervals per concept, with helpers to rasterize them onto the 10 Hz
evidence grid and to match detected segments against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import SynthesisError

__all__ = ["Interval", "GroundTruth", "raster", "merge_intervals"]


@dataclass(frozen=True)
class Interval:
    """A closed-open time interval [start, end) in seconds, with a label."""

    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SynthesisError(f"empty interval [{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def overlap_seconds(self, other: "Interval") -> float:
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))


def merge_intervals(intervals: Iterable[Interval], gap: float = 0.0) -> list[Interval]:
    """Union of intervals, merging any closer than ``gap`` seconds."""
    ordered = sorted(intervals, key=lambda i: i.start)
    out: list[Interval] = []
    for interval in ordered:
        if out and interval.start - out[-1].end <= gap:
            last = out.pop()
            out.append(
                Interval(last.start, max(last.end, interval.end), last.label)
            )
        else:
            out.append(interval)
    return out


def raster(
    intervals: Iterable[Interval], n_steps: int, step_seconds: float = 0.1
) -> np.ndarray:
    """Rasterize intervals onto a uniform grid: 1.0 inside, 0.0 outside."""
    out = np.zeros(n_steps)
    for interval in intervals:
        lo = max(int(interval.start / step_seconds), 0)
        hi = min(int(np.ceil(interval.end / step_seconds)), n_steps)
        if lo < hi:
            out[lo:hi] = 1.0
    return out


@dataclass
class GroundTruth:
    """All annotation tracks of one synthetic race.

    Attributes:
        duration: race length in seconds.
        excited_speech: intervals where the announcer is genuinely excited.
        highlights: the "interesting segments" (start, passings, fly-outs,
            and their replays).
        starts / fly_outs / passings / pit_stops / replays: per-concept
            intervals (labels carry driver names where applicable).
        overlays: (interval, words) pairs of superimposed text.
        shot_cuts: frame times (seconds) of hard cuts.
    """

    duration: float
    excited_speech: list[Interval] = field(default_factory=list)
    highlights: list[Interval] = field(default_factory=list)
    starts: list[Interval] = field(default_factory=list)
    fly_outs: list[Interval] = field(default_factory=list)
    passings: list[Interval] = field(default_factory=list)
    pit_stops: list[Interval] = field(default_factory=list)
    replays: list[Interval] = field(default_factory=list)
    overlays: list[tuple[Interval, list[str]]] = field(default_factory=list)
    shot_cuts: list[float] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[Interval]:
        table = {
            "excited_speech": self.excited_speech,
            "highlight": self.highlights,
            "start": self.starts,
            "fly_out": self.fly_outs,
            "passing": self.passings,
            "pit_stop": self.pit_stops,
            "replay": self.replays,
        }
        if kind not in table:
            raise SynthesisError(f"unknown annotation kind {kind!r}")
        return table[kind]
