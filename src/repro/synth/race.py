"""Race timeline generation.

A :class:`RaceSpec` describes one Grand Prix statistically (how many
passings, fly-outs, pit stops; how visible passings are to the fixed
camera; how often the announcer actually reacts); :func:`generate_timeline`
expands it into a concrete, seeded event schedule with full ground truth.

The spec knobs encode the properties the paper attributes to its three
races: the German GP's camera work makes passing manoeuvres visually
trackable (``passing_visibility`` high), the Belgian and USA GPs do not;
the USA GP "had no fly-outs"; the announcer reacts to only part of the
interesting events ("if we count replay scenes, recall will be about 50%"
for the audio-only network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SynthesisError
from repro.synth.annotations import GroundTruth, Interval, merge_intervals

__all__ = ["RaceSpec", "RaceEvent", "RaceTimeline", "generate_timeline"]

#: Drivers available to the event generator (subset of the OCR lexicon).
TIMELINE_DRIVERS = (
    "SCHUMACHER",
    "BARRICHELLO",
    "HAKKINEN",
    "COULTHARD",
    "MONTOYA",
    "RALF",
)


@dataclass(frozen=True)
class RaceSpec:
    """Statistical description of one Grand Prix broadcast."""

    name: str
    duration: float = 600.0
    n_passings: int = 6
    n_fly_outs: int = 3
    n_pit_stops: int = 4
    #: How visually trackable passings are (German GP camera work ~0.9,
    #: the other races ~0.3).
    passing_visibility: float = 0.9
    #: Probability the announcer gets excited about an interesting event.
    excitement_reaction: float = 0.55
    #: Expected number of excitement bursts NOT tied to any event.
    spurious_excitement: float = 2.0
    #: Average seconds between hard cuts.
    mean_shot_seconds: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration < 120:
            raise SynthesisError("races shorter than 120 s leave no room for events")
        if not 0 <= self.passing_visibility <= 1:
            raise SynthesisError("passing_visibility must be in [0, 1]")
        if not 0 <= self.excitement_reaction <= 1:
            raise SynthesisError("excitement_reaction must be in [0, 1]")


@dataclass(frozen=True)
class RaceEvent:
    """One scheduled race event."""

    kind: str  # "start" | "passing" | "fly_out" | "pit_stop"
    time: float
    duration: float
    drivers: tuple[str, ...] = ()
    #: Visual strength of the event's signature in [0, 1].
    visibility: float = 1.0
    #: Whether the announcer reacts with excited speech.
    announced: bool = True

    @property
    def interval(self) -> Interval:
        return Interval(self.time, self.time + self.duration, self.kind)


@dataclass
class RaceTimeline:
    """The full schedule of one synthetic race."""

    spec: RaceSpec
    events: list[RaceEvent]
    replays: list[tuple[Interval, RaceEvent]]
    overlays: list[tuple[Interval, list[str]]]
    excitement: list[Interval]
    shot_cuts: list[float]
    keywords: list[tuple[float, str]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.spec.duration

    def ground_truth(self) -> GroundTruth:
        """Derive the annotation tracks from the schedule."""
        truth = GroundTruth(duration=self.duration)
        truth.excited_speech = merge_intervals(self.excitement, gap=0.5)
        truth.shot_cuts = list(self.shot_cuts)
        truth.overlays = list(self.overlays)
        truth.replays = [interval for interval, _ in self.replays]
        highlight_parts: list[Interval] = []
        for event in self.events:
            interval = event.interval
            if event.kind == "start":
                truth.starts.append(interval)
            elif event.kind == "passing":
                truth.passings.append(interval)
            elif event.kind == "fly_out":
                truth.fly_outs.append(interval)
            elif event.kind == "pit_stop":
                truth.pit_stops.append(interval)
            if event.kind in ("start", "passing", "fly_out"):
                highlight_parts.append(interval)
        highlight_parts.extend(truth.replays)
        truth.highlights = merge_intervals(highlight_parts, gap=1.0)
        return truth


def generate_timeline(spec: RaceSpec) -> RaceTimeline:
    """Expand a spec into a seeded, collision-free event schedule."""
    rng = np.random.default_rng(spec.seed)
    events: list[RaceEvent] = []

    start_time = float(rng.uniform(12.0, 20.0))
    events.append(
        RaceEvent("start", start_time, duration=10.0, visibility=1.0, announced=True)
    )

    slots = _draw_times(
        rng,
        count=spec.n_passings + spec.n_fly_outs + spec.n_pit_stops,
        lo=start_time + 20.0,
        hi=spec.duration - 30.0,
        min_gap=18.0,
    )
    cursor = 0

    for _ in range(spec.n_passings):
        time = slots[cursor]
        cursor += 1
        overtaker, overtaken = rng.choice(
            len(TIMELINE_DRIVERS), size=2, replace=False
        )
        events.append(
            RaceEvent(
                "passing",
                time,
                duration=float(rng.uniform(6.0, 10.0)),
                drivers=(
                    TIMELINE_DRIVERS[overtaker],
                    TIMELINE_DRIVERS[overtaken],
                ),
                visibility=float(
                    np.clip(rng.normal(spec.passing_visibility, 0.08), 0.0, 1.0)
                ),
                announced=bool(rng.random() < spec.excitement_reaction),
            )
        )

    for _ in range(spec.n_fly_outs):
        time = slots[cursor]
        cursor += 1
        driver = TIMELINE_DRIVERS[int(rng.integers(len(TIMELINE_DRIVERS)))]
        events.append(
            RaceEvent(
                "fly_out",
                time,
                duration=float(rng.uniform(6.5, 11.0)),
                drivers=(driver,),
                visibility=1.0,
                announced=bool(rng.random() < spec.excitement_reaction + 0.2),
            )
        )

    for _ in range(spec.n_pit_stops):
        time = slots[cursor]
        cursor += 1
        driver = TIMELINE_DRIVERS[int(rng.integers(len(TIMELINE_DRIVERS)))]
        events.append(
            RaceEvent(
                "pit_stop",
                time,
                duration=float(rng.uniform(6.0, 10.0)),
                drivers=(driver,),
                visibility=0.5,
                announced=False,
            )
        )

    events.sort(key=lambda e: e.time)

    replays = _schedule_replays(rng, spec, events)
    excitement = _schedule_excitement(rng, spec, events)
    overlays = _schedule_overlays(rng, spec, events)
    shot_cuts = _schedule_cuts(rng, spec, events, replays)
    keywords = _schedule_keywords(rng, events)

    return RaceTimeline(
        spec=spec,
        events=events,
        replays=replays,
        overlays=overlays,
        excitement=excitement,
        shot_cuts=shot_cuts,
        keywords=keywords,
    )


def _draw_times(
    rng: np.random.Generator,
    count: int,
    lo: float,
    hi: float,
    min_gap: float,
) -> list[float]:
    """Random event times with a minimum pairwise gap."""
    if count == 0:
        return []
    span = hi - lo
    if span < count * min_gap:
        raise SynthesisError(
            f"cannot place {count} events with gap {min_gap} in {span:.0f} s"
        )
    # Draw in gap-free coordinates, then re-inflate: uniform order statistics.
    free = span - (count - 1) * min_gap
    offsets = np.sort(rng.uniform(0.0, free, size=count))
    return [float(lo + offsets[i] + i * min_gap) for i in range(count)]


def _schedule_replays(
    rng: np.random.Generator, spec: RaceSpec, events: list[RaceEvent]
) -> list[tuple[Interval, RaceEvent]]:
    """Every start/passing/fly-out gets a replay a few seconds after."""
    out: list[tuple[Interval, RaceEvent]] = []
    for event in events:
        if event.kind not in ("start", "passing", "fly_out"):
            continue
        begin = event.time + event.duration + float(rng.uniform(1.0, 2.5))
        length = float(rng.uniform(5.0, 9.0))
        end = min(begin + length, spec.duration - 1.0)
        if end - begin >= 3.0:
            out.append((Interval(begin, end, f"replay:{event.kind}"), event))
    return out


def _schedule_excitement(
    rng: np.random.Generator, spec: RaceSpec, events: list[RaceEvent]
) -> list[Interval]:
    """Excited-speech intervals: reactions to events plus spurious bursts."""
    out: list[Interval] = []
    for event in events:
        if event.announced:
            begin = event.time + float(rng.uniform(0.0, 1.5))
            length = float(rng.uniform(3.0, event.duration + 4.0))
            out.append(Interval(begin, min(begin + length, spec.duration), "reaction"))
    n_spurious = int(rng.poisson(spec.spurious_excitement))
    for _ in range(n_spurious):
        begin = float(rng.uniform(30.0, spec.duration - 10.0))
        out.append(Interval(begin, begin + float(rng.uniform(2.0, 4.0)), "spurious"))
    return out


def _schedule_overlays(
    rng: np.random.Generator, spec: RaceSpec, events: list[RaceEvent]
) -> list[tuple[Interval, list[str]]]:
    """Superimposed-text schedule: classifications, pit stops, winner."""
    out: list[tuple[Interval, list[str]]] = []
    order = list(TIMELINE_DRIVERS)
    rng.shuffle(order)
    lap = 1
    # periodic classifications (lap counters shown separately: the chyron
    # line must fit the frame width)
    time = 40.0
    while time < spec.duration - 40.0:
        words = ["1", order[0], "2", order[1]]
        out.append((Interval(time, time + 4.0, "classification"), words))
        out.append((Interval(time + 4.5, time + 7.0, "lap"), ["LAP", str(lap)]))
        # passings reorder the classification
        for event in events:
            if event.kind == "passing" and time < event.time < time + 60.0:
                a = event.drivers[0]
                if a in order:
                    i = order.index(a)
                    if i > 0:
                        order[i - 1], order[i] = order[i], order[i - 1]
        time += float(rng.uniform(45.0, 70.0))
        lap += int(rng.integers(1, 4))
    for event in events:
        if event.kind == "pit_stop":
            out.append(
                (
                    Interval(event.time + 1.0, event.time + event.duration, "pit"),
                    ["PIT", "STOP", event.drivers[0]],
                )
            )
    out.append(
        (
            Interval(spec.duration - 15.0, spec.duration - 10.0, "final_lap"),
            ["FINAL", "LAP"],
        )
    )
    out.append(
        (
            Interval(spec.duration - 8.0, spec.duration - 3.0, "winner"),
            ["WINNER", order[0]],
        )
    )
    out.sort(key=lambda pair: pair[0].start)
    return out


def _schedule_cuts(
    rng: np.random.Generator,
    spec: RaceSpec,
    events: list[RaceEvent],
    replays: list[tuple[Interval, RaceEvent]],
) -> list[float]:
    """Hard-cut times, avoiding the replay DVE boundaries."""
    forbidden = [
        (interval.start - 1.5, interval.start + 1.5) for interval, _ in replays
    ] + [(interval.end - 1.5, interval.end + 1.5) for interval, _ in replays]
    out: list[float] = []
    time = float(rng.uniform(4.0, spec.mean_shot_seconds))
    while time < spec.duration - 3.0:
        if not any(lo <= time <= hi for lo, hi in forbidden):
            out.append(round(time, 1))
        time += float(rng.uniform(0.5, 2.0) * spec.mean_shot_seconds)
    return out


def _schedule_keywords(
    rng: np.random.Generator, events: list[RaceEvent]
) -> list[tuple[float, str]]:
    """Keywords the commentator utters near events."""
    table = {
        "start": ["start"],
        "passing": ["overtake", "passing", "incredible"],
        "fly_out": ["crash", "gravel", "offtrack", "unbelievable"],
        "pit_stop": ["pitstop"],
    }
    out: list[tuple[float, str]] = []
    for event in events:
        if not event.announced and event.kind != "pit_stop":
            continue
        options = table[event.kind]
        word = options[int(rng.integers(len(options)))]
        out.append((event.time + float(rng.uniform(0.5, 2.0)), word))
        if event.drivers and rng.random() < 0.7:
            driver = event.drivers[0].lower()
            out.append((event.time + float(rng.uniform(2.0, 4.0)), driver))
    out.sort()
    return out
