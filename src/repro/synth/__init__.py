"""Synthetic Formula 1 substrate: seeded race timelines, broadcast audio,
rendered video with overlays, and full ground-truth annotations — the
documented stand-in for the paper's three digitized 2001 Grands Prix."""

from repro.synth.annotations import GroundTruth, Interval, merge_intervals, raster
from repro.synth.audio_synth import RaceAudio, synthesize_audio
from repro.synth.grandprix import (
    BELGIAN_GP,
    GERMAN_GP,
    USA_GP,
    SyntheticRace,
    synthesize_race,
)
from repro.synth.race import RaceEvent, RaceSpec, RaceTimeline, generate_timeline
from repro.synth.text_synth import draw_overlay
from repro.synth.video_synth import RaceVideoRenderer, render_video

__all__ = [
    "GroundTruth", "Interval", "merge_intervals", "raster",
    "RaceAudio", "synthesize_audio",
    "BELGIAN_GP", "GERMAN_GP", "USA_GP", "SyntheticRace", "synthesize_race",
    "RaceEvent", "RaceSpec", "RaceTimeline", "generate_timeline",
    "draw_overlay",
    "RaceVideoRenderer", "render_video",
]
