"""Overlay (chyron) rendering into synthetic frames.

Draws what §5.4 describes from the producer's side: "the superimposed text
is placed in the bottom of the picture, while the background is shaded in
order to make characters clearer ... The characters are usually drawn with
high contrast to the dark background".
"""

from __future__ import annotations

import numpy as np

from repro.errors import SynthesisError
from repro.text.patterns import render_text

__all__ = ["draw_overlay", "OVERLAY_SHADE", "OVERLAY_INK"]

#: Shade luminance behind the text and the character brightness.
OVERLAY_SHADE = 28
OVERLAY_INK = 232


def draw_overlay(
    frame: np.ndarray,
    words: list[str],
    bottom_fraction: float = 0.2,
    left_margin: int = 6,
) -> np.ndarray:
    """Draw a shaded strip plus one line of text into the frame (in place).

    Args:
        frame: (H, W, 3) uint8 frame, modified and returned.
        words: words to render, joined by single spaces.
        bottom_fraction: height of the shaded strip.
        left_margin: columns before the first character.
    """
    if not words:
        raise SynthesisError("overlay needs at least one word")
    height, width = frame.shape[:2]
    strip_top = int(height * (1 - bottom_fraction))
    frame[strip_top:, :, :] = OVERLAY_SHADE

    text = " ".join(words).upper()
    bitmap = render_text(text, scale=1, spacing=1)
    rows, cols = bitmap.shape
    if cols + left_margin > width:
        raise SynthesisError(
            f"overlay text {text!r} is {cols} px wide, frame only {width}"
        )
    top = strip_top + (height - strip_top - rows) // 2
    window = frame[top : top + rows, left_margin : left_margin + cols]
    window[bitmap.astype(bool)] = OVERLAY_INK
    return frame
