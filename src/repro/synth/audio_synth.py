"""Audio synthesis for a race timeline.

Produces the broadcast soundtrack the paper's §5.2 analyses: announcer
speech (excited speech with raised pitch and energy — "whenever something
important happens the announcer raises his voice due to his excitement"),
Formula 1 engine noise, crowd bursts at events, plus the true phone stream
for the simulated keyword-spotting front-end.

Everything is seeded and vectorized; the defaults (16 kHz) trade the
paper's 22 kHz for speed while keeping every analysis band below Nyquist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audio.keywords import F1_KEYWORDS, PHONES, PHONE_SECONDS
from repro.audio.signal import AudioSignal
from repro.synth.annotations import Interval, raster
from repro.synth.race import RaceTimeline

__all__ = ["RaceAudio", "synthesize_audio"]

#: Neutral and excited announcer pitch (Hz).
NEUTRAL_PITCH = 135.0
EXCITED_PITCH = 255.0


@dataclass
class RaceAudio:
    """The synthesized soundtrack and its hidden ground truth.

    Attributes:
        signal: the mixed mono waveform.
        phone_slots: true phone per 0.1 s slot (None = no speech) — input
            to the simulated acoustic front-end.
        speech_intervals: when the announcer is talking at all.
    """

    signal: AudioSignal
    phone_slots: list[str | None]
    speech_intervals: list[Interval]


def synthesize_audio(
    timeline: RaceTimeline, sample_rate: int = 16000
) -> RaceAudio:
    """Render the soundtrack of a race timeline."""
    rng = np.random.default_rng(timeline.spec.seed + 1)
    duration = timeline.duration
    n = int(duration * sample_rate)
    t = np.arange(n) / sample_rate

    speech_intervals = _speech_plan(rng, timeline)
    n_slots = int(round(duration / PHONE_SECONDS))
    speech_mask = raster(speech_intervals, n_slots, PHONE_SECONDS)

    # Excitement is not all-or-nothing: every burst gets its own intensity,
    # and mild bursts (an announcer only half carried away) are genuinely
    # hard to separate from ordinary speech — the source of the paper's
    # missed detections.
    excited_mask = np.zeros(n_slots)
    for interval in timeline.excitement:
        lo = max(int(interval.start / PHONE_SECONDS), 0)
        hi = min(int(np.ceil(interval.end / PHONE_SECONDS)), n_slots)
        intensity = float(rng.uniform(0.35, 1.0))
        if lo < hi:
            excited_mask[lo:hi] = np.maximum(excited_mask[lo:hi], intensity)

    # "Hype": short bursts of genuinely excited-SOUNDING delivery (a name
    # shouted, a one-liner) that are not annotated excitement because they
    # are over in a couple of seconds. Acoustically they carry almost the
    # full excitement signature; only their brevity gives them away — the
    # false-positive source a per-step classifier cannot reject.
    hype_mask = np.zeros(n_slots)
    n_hype = int(rng.poisson(duration / 40.0))
    for _ in range(n_hype):
        begin = rng.uniform(5.0, duration - 6.0)
        lo = int(begin / PHONE_SECONDS)
        hi = min(lo + int(rng.uniform(1.2, 2.5) / PHONE_SECONDS), n_slots)
        hype_mask[lo:hi] = np.maximum(hype_mask[lo:hi], float(rng.uniform(0.6, 0.95)))

    # --- announcer speech --------------------------------------------------
    samples_per_slot = int(sample_rate * PHONE_SECONDS)
    speech_env = np.repeat(speech_mask, samples_per_slot)[:n]
    excited_env = np.repeat(excited_mask, samples_per_slot)[:n]
    hype_env = np.repeat(hype_mask, samples_per_slot)[:n]
    # soften slot boundaries
    kernel = np.ones(samples_per_slot // 4) / (samples_per_slot // 4)
    speech_env = np.convolve(speech_env, kernel, mode="same")
    excited_env = np.convolve(excited_env, kernel, mode="same")
    hype_env = np.convolve(hype_env, kernel, mode="same")

    pitch_drive = np.maximum(excited_env, 0.85 * hype_env)
    f0 = NEUTRAL_PITCH + (EXCITED_PITCH - NEUTRAL_PITCH) * pitch_drive
    f0 = f0 * (1.0 + 0.03 * np.sin(2 * np.pi * 5.0 * t))  # vibrato
    phase = 2 * np.pi * np.cumsum(f0) / sample_rate
    voice = np.zeros(n)
    # Excited voices are not just higher: their spectral tilt flattens
    # (pressed phonation pushes energy into the upper harmonics), which is
    # what gives the MFCC features genuine excitement information.
    for harmonic, neutral_amp, excited_amp in (
        (1, 1.0, 0.95),
        (2, 0.6, 0.7),
        (3, 0.4, 0.55),
        (4, 0.25, 0.45),
        (5, 0.15, 0.35),
    ):
        tilt_drive = np.maximum(excited_env, 0.8 * hype_env)
        amplitude = neutral_amp + (excited_amp - neutral_amp) * tilt_drive
        voice += amplitude * np.sin(harmonic * phase)
    syllable_rate = 3.5 + 2.5 * np.maximum(excited_env, hype_env)
    syllables = 0.55 + 0.45 * np.sin(
        2 * np.pi * np.cumsum(syllable_rate) / sample_rate
    )
    loudness = 0.18 + 0.30 * np.maximum(excited_env, hype_env)
    speech = voice * syllables * loudness * speech_env

    # --- engine noise ------------------------------------------------------
    engine_noise = rng.standard_normal(n)
    # crude low-pass via cumulative smoothing
    engine_noise = np.convolve(engine_noise, np.ones(8) / 8, mode="same")
    rpm = 110.0 + 60.0 * np.sin(2 * np.pi * 0.05 * t + rng.uniform(0, np.pi))
    engine_phase = 2 * np.pi * np.cumsum(rpm) / sample_rate
    engine = 0.05 * engine_noise + 0.04 * np.sin(engine_phase) + 0.02 * np.sin(
        2 * engine_phase
    )

    # --- crowd bursts at events and at random --------------------------------
    crowd = np.zeros(n)
    burst_windows = [
        (event.time, event.time + event.duration)
        for event in timeline.events
        if event.kind != "pit_stop"
    ]
    for _ in range(int(rng.poisson(duration / 70.0))):
        begin = rng.uniform(5.0, duration - 8.0)
        burst_windows.append((begin, begin + float(rng.uniform(2.0, 5.0))))
    for begin, end in burst_windows:
        lo = int(begin * sample_rate)
        hi = min(int(end * sample_rate), n)
        if lo < hi:
            burst = rng.standard_normal(hi - lo)
            envelope = np.hanning(hi - lo)
            crowd[lo:hi] += 0.17 * burst * envelope

    # --- flutter artifacts ---------------------------------------------------
    # Brief intermittent whistles / close-by engine pops: they land in the
    # speech analysis bands and fool any per-step (atemporal) classifier,
    # but they lack the sustained build-up of genuine excitement — exactly
    # the noise a DBN's temporal model integrates away (Fig. 9).
    flutter = np.zeros(n)
    for _ in range(int(rng.poisson(duration / 45.0))):
        begin = rng.uniform(4.0, duration - 5.0)
        length = float(rng.uniform(0.8, 2.0))
        tone_hz = float(rng.uniform(300.0, 480.0))
        lo_slot = int(begin / PHONE_SECONDS)
        hi_slot = min(int((begin + length) / PHONE_SECONDS), n_slots)
        for slot in range(lo_slot, hi_slot):
            if rng.random() > 0.55:
                continue
            a = slot * samples_per_slot
            b = min(a + samples_per_slot, n)
            if a >= b:
                continue
            tt = t[a:b]
            whistle = 0.3 * np.sin(2 * np.pi * tone_hz * tt)
            pop = 0.2 * rng.standard_normal(b - a) * np.hanning(b - a)
            flutter[a:b] += whistle + pop

    # --- engine surges --------------------------------------------------------
    # A car sweeping past the commentary box: a strong, SHORT broadband
    # burst inside the 882-2205 Hz excitement band. Frequent enough that a
    # per-step classifier keeps tripping over them; too brief to build up
    # through a temporal model.
    surges = np.zeros(n)
    for _ in range(int(rng.poisson(duration / 22.0))):
        begin = rng.uniform(3.0, duration - 3.0)
        length = float(rng.uniform(0.3, 1.0))
        a = int(begin * sample_rate)
        b = min(int((begin + length) * sample_rate), n)
        if a >= b:
            continue
        burst = rng.standard_normal(b - a)
        # shape the noise toward the 0.8-2.5 kHz band with a crude
        # differencing high-pass followed by smoothing
        burst = np.diff(burst, prepend=burst[0])
        burst = np.convolve(burst, np.ones(4) / 4, mode="same")
        surges[a:b] += 0.5 * burst * np.hanning(b - a)

    samples = speech + engine + crowd + flutter + surges
    peak = np.abs(samples).max()
    if peak > 1.0:
        samples = samples / (peak * 1.05)

    phone_slots = _phone_plan(rng, timeline, speech_mask, n_slots)
    return RaceAudio(
        AudioSignal(samples, sample_rate), phone_slots, speech_intervals
    )


def _speech_plan(
    rng: np.random.Generator, timeline: RaceTimeline
) -> list[Interval]:
    """Alternating talk/pause plan; excitement forces talk on."""
    out: list[Interval] = []
    time = float(rng.uniform(0.0, 1.0))
    while time < timeline.duration - 1.0:
        talk = float(rng.uniform(2.0, 6.0))
        end = min(time + talk, timeline.duration)
        out.append(Interval(time, end, "talk"))
        time = end + float(rng.uniform(0.4, 1.8))
    # announcer always talks through his excitement
    out.extend(
        Interval(i.start, min(i.end, timeline.duration), "talk")
        for i in timeline.excitement
        if i.start < timeline.duration
    )
    return out


def _pronounce(word: str) -> list[str]:
    """Phone spelling: lexicon entry, else letter-by-letter fallback."""
    if word in F1_KEYWORDS:
        return list(F1_KEYWORDS[word])
    return [c for c in word.lower() if c in set(p for p in PHONES if len(p) == 1)]


def _phone_plan(
    rng: np.random.Generator,
    timeline: RaceTimeline,
    speech_mask: np.ndarray,
    n_slots: int,
) -> list[str | None]:
    """True phone per 0.1 s slot: keywords at their times, filler elsewhere."""
    single = [p for p in PHONES if len(p) == 1]
    slots: list[str | None] = [
        (single[int(rng.integers(len(single)))] if speech_mask[i] else None)
        for i in range(n_slots)
    ]
    for time, word in timeline.keywords:
        phones = _pronounce(word)
        start = int(time / PHONE_SECONDS)
        for offset, phone in enumerate(phones):
            index = start + offset
            if 0 <= index < n_slots:
                slots[index] = phone
    return slots
