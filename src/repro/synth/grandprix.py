"""Grand Prix presets and the full synthetic-race bundle.

The paper digitized "three Formula 1 races of the 2001 season, namely, the
German, Belgian, and USA Grand Prix". The presets encode their
experimentally relevant differences:

* **German GP** — "a different camera work" makes passing manoeuvres
  visually trackable (high ``passing_visibility``); the passing sub-network
  works here and only here.
* **Belgian GP** — ordinary camera work (low passing visibility), several
  fly-outs.
* **USA GP** — "there were no fly-outs in the USA Grand Prix"; low passing
  visibility.

Race durations default to 600 s rather than the 90-minute broadcasts so a
full evaluation runs on a laptop; every rate-dependent algorithm sees
exactly the same 10 Hz evidence cadence the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audio.signal import AudioSignal
from repro.faults import resolve_injector
from repro.synth.annotations import GroundTruth
from repro.synth.audio_synth import RaceAudio, synthesize_audio
from repro.synth.race import RaceSpec, RaceTimeline, generate_timeline
from repro.synth.video_synth import RaceVideoRenderer
from repro.video.frames import FrameStream

__all__ = [
    "GERMAN_GP",
    "BELGIAN_GP",
    "USA_GP",
    "SyntheticRace",
    "synthesize_race",
]

GERMAN_GP = RaceSpec(
    name="german",
    duration=600.0,
    n_passings=7,
    n_fly_outs=3,
    n_pit_stops=4,
    passing_visibility=0.9,
    excitement_reaction=0.6,
    spurious_excitement=4.0,
    seed=2001_07,
)

BELGIAN_GP = RaceSpec(
    name="belgian",
    duration=600.0,
    n_passings=6,
    n_fly_outs=4,
    n_pit_stops=4,
    passing_visibility=0.3,
    excitement_reaction=0.55,
    spurious_excitement=3.0,
    seed=2001_09,
)

USA_GP = RaceSpec(
    name="usa",
    duration=600.0,
    n_passings=6,
    n_fly_outs=0,
    n_pit_stops=4,
    passing_visibility=0.3,
    excitement_reaction=0.55,
    spurious_excitement=3.0,
    seed=2001_10,
)


@dataclass
class SyntheticRace:
    """Everything one digitized race provides to the pipeline."""

    spec: RaceSpec
    timeline: RaceTimeline
    audio: RaceAudio
    video: FrameStream
    truth: GroundTruth

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def duration(self) -> float:
        return self.spec.duration

    @property
    def signal(self) -> AudioSignal:
        return self.audio.signal


def synthesize_race(
    spec: RaceSpec,
    sample_rate: int = 16000,
    frame_height: int = 144,
    frame_width: int = 192,
    fps: float = 10.0,
    faults=None,
) -> SyntheticRace:
    """Generate one complete synthetic Grand Prix (seeded by the spec).

    ``faults`` (an injector, a plan, or None for the global injector)
    degrades the *broadcast material* while leaving the ground truth
    clean: audio dropouts (site ``synth.audio``), lost/frozen frames
    (``synth.video``), and garbled overlay text (``synth.text``) — the
    messy inputs a robust extraction chain has to survive.
    """
    injector = resolve_injector(faults)
    timeline = generate_timeline(spec)
    # Truth reflects what happened on track, not what survived broadcast —
    # capture it before any corruption touches the timeline.
    truth = timeline.ground_truth()
    if injector.enabled:
        timeline.overlays = [
            (interval, [injector.corrupt_text("synth.text", word) for word in words])
            for interval, words in timeline.overlays
        ]
    audio = synthesize_audio(timeline, sample_rate=sample_rate)
    if injector.enabled:
        samples = injector.corrupt_array("synth.audio", audio.signal.samples)
        if samples is not audio.signal.samples:
            audio = RaceAudio(
                AudioSignal(np.clip(samples, -1.0, 1.0), audio.signal.sample_rate),
                audio.phone_slots,
                audio.speech_intervals,
            )
    renderer = RaceVideoRenderer(
        timeline, height=frame_height, width=frame_width, fps=fps
    )
    video = renderer.stream()
    if injector.enabled:
        mask = injector.frame_loss_mask("synth.video", video.n_frames)
        if mask is not None:
            video = _with_frame_loss(video, mask)
    return SyntheticRace(
        spec=spec,
        timeline=timeline,
        audio=audio,
        video=video,
        truth=truth,
    )


def _with_frame_loss(stream: FrameStream, mask: np.ndarray) -> FrameStream:
    """Freeze lost frames to their predecessor (broadcast-style glitching)."""

    def source():
        last = None
        for index, frame in enumerate(stream):
            if mask[index] and last is not None:
                yield last
            else:
                last = frame
                yield frame

    return FrameStream(source, stream.fps, stream.n_frames)
