"""Grand Prix presets and the full synthetic-race bundle.

The paper digitized "three Formula 1 races of the 2001 season, namely, the
German, Belgian, and USA Grand Prix". The presets encode their
experimentally relevant differences:

* **German GP** — "a different camera work" makes passing manoeuvres
  visually trackable (high ``passing_visibility``); the passing sub-network
  works here and only here.
* **Belgian GP** — ordinary camera work (low passing visibility), several
  fly-outs.
* **USA GP** — "there were no fly-outs in the USA Grand Prix"; low passing
  visibility.

Race durations default to 600 s rather than the 90-minute broadcasts so a
full evaluation runs on a laptop; every rate-dependent algorithm sees
exactly the same 10 Hz evidence cadence the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audio.signal import AudioSignal
from repro.synth.annotations import GroundTruth
from repro.synth.audio_synth import RaceAudio, synthesize_audio
from repro.synth.race import RaceSpec, RaceTimeline, generate_timeline
from repro.synth.video_synth import RaceVideoRenderer
from repro.video.frames import FrameStream

__all__ = [
    "GERMAN_GP",
    "BELGIAN_GP",
    "USA_GP",
    "SyntheticRace",
    "synthesize_race",
]

GERMAN_GP = RaceSpec(
    name="german",
    duration=600.0,
    n_passings=7,
    n_fly_outs=3,
    n_pit_stops=4,
    passing_visibility=0.9,
    excitement_reaction=0.6,
    spurious_excitement=4.0,
    seed=2001_07,
)

BELGIAN_GP = RaceSpec(
    name="belgian",
    duration=600.0,
    n_passings=6,
    n_fly_outs=4,
    n_pit_stops=4,
    passing_visibility=0.3,
    excitement_reaction=0.55,
    spurious_excitement=3.0,
    seed=2001_09,
)

USA_GP = RaceSpec(
    name="usa",
    duration=600.0,
    n_passings=6,
    n_fly_outs=0,
    n_pit_stops=4,
    passing_visibility=0.3,
    excitement_reaction=0.55,
    spurious_excitement=3.0,
    seed=2001_10,
)


@dataclass
class SyntheticRace:
    """Everything one digitized race provides to the pipeline."""

    spec: RaceSpec
    timeline: RaceTimeline
    audio: RaceAudio
    video: FrameStream
    truth: GroundTruth

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def duration(self) -> float:
        return self.spec.duration

    @property
    def signal(self) -> AudioSignal:
        return self.audio.signal


def synthesize_race(
    spec: RaceSpec,
    sample_rate: int = 16000,
    frame_height: int = 144,
    frame_width: int = 192,
    fps: float = 10.0,
) -> SyntheticRace:
    """Generate one complete synthetic Grand Prix (seeded by the spec)."""
    timeline = generate_timeline(spec)
    audio = synthesize_audio(timeline, sample_rate=sample_rate)
    renderer = RaceVideoRenderer(
        timeline, height=frame_height, width=frame_width, fps=fps
    )
    return SyntheticRace(
        spec=spec,
        timeline=timeline,
        audio=audio,
        video=renderer.stream(),
        truth=timeline.ground_truth(),
    )
