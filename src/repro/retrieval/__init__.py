"""Content-based retrieval front-end: English-query templates and the
assembled Formula 1 system."""

from repro.retrieval.parser import english_to_coql
from repro.retrieval.system import DOMAIN_NAME, FormulaOneSystem

__all__ = ["english_to_coql", "DOMAIN_NAME", "FormulaOneSystem"]
