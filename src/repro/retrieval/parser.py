"""Mapping the paper's example queries (§5.6) onto COQL.

The GUI of the paper composes queries graphically; this module gives the
textual equivalent: a template matcher that turns the listed English query
forms into :class:`~repro.cobra.query.CoqlQuery` strings. It is a
convenience front-end — COQL remains the actual query language.
"""

from __future__ import annotations

import re

from repro.errors import QuerySyntaxError
from repro.text.recognition import DRIVER_NAMES

__all__ = ["english_to_coql"]

#: Maps surname spellings/full names to OCR labels.
_NAME_ALIASES = {
    "michael schumacher": "SCHUMACHER",
    "schumacher": "SCHUMACHER",
    "rubens barrichello": "BARRICHELLO",
    "barrichello": "BARRICHELLO",
    "mika hakkinen": "HAKKINEN",
    "hakkinen": "HAKKINEN",
    "david coulthard": "COULTHARD",
    "coulthard": "COULTHARD",
    "juan pablo montoya": "MONTOYA",
    "montoya": "MONTOYA",
    "ralf schumacher": "RALF",
    "ralf": "RALF",
}


def _find_driver(text: str) -> str | None:
    lowered = text.lower()
    for alias in sorted(_NAME_ALIASES, key=len, reverse=True):
        if alias in lowered:
            return _NAME_ALIASES[alias]
    for name in DRIVER_NAMES:
        if name.lower() in lowered:
            return name
    return None


_ORDINALS = {"first": 1, "second": 2, "third": 3, "leading": 1}


def english_to_coql(text: str) -> str:
    """Translate one of the paper's example query forms into COQL.

    Handles (case-insensitively):

    * "Retrieve the video sequences showing the car of <driver>"
    * "... with <driver> leading the race"
    * "... where <driver> is first, and <driver2> is second"
    * "... showing <driver> in the pit stop"
    * "... with the race leader crossing the finish line"
    * "Retrieve all fly outs [of <driver>]"
    * "Retrieve all highlights [showing the car of <driver>]"
    * "Retrieve all highlights at the pit line involving <driver>"
    """
    lowered = text.lower().strip().rstrip(".")
    driver = _find_driver(lowered)

    if "pit line" in lowered or ("highlight" in lowered and "pit" in lowered):
        if driver is None:
            raise QuerySyntaxError(f"no driver recognized in {text!r}")
        return (
            f"RETRIEVE highlight WHERE INTERSECTS pit_stop "
            f"WITH ROLE driver = {driver}"
        )
    if "highlight" in lowered:
        if driver is not None:
            return (
                f"RETRIEVE highlight WHERE INTERSECTS driver_mention "
                f"WITH ROLE driver = {driver}"
            )
        return "RETRIEVE highlight"
    if "fly out" in lowered or "fly-out" in lowered or "flyout" in lowered:
        if driver is not None:
            return f"RETRIEVE fly_out WHERE ROLE driver = {driver}"
        return "RETRIEVE fly_out"
    if "pit stop" in lowered:
        if driver is None:
            raise QuerySyntaxError(f"no driver recognized in {text!r}")
        return f"RETRIEVE pit_stop WHERE ROLE driver = {driver}"
    if "crossing the finish line" in lowered or "winner" in lowered:
        return "RETRIEVE winner"
    if "leading the race" in lowered:
        if driver is None:
            raise QuerySyntaxError(f"no driver recognized in {text!r}")
        return f"RETRIEVE classification WHERE POSITION {driver} = 1"
    # "<d1> is first, and <d2> is second"
    pairs = []
    for word, position in _ORDINALS.items():
        for match in re.finditer(
            rf"([a-z ]+?)\s+is\s+{word}", lowered
        ):
            candidate = _find_driver(match.group(1))
            if candidate is not None:
                pairs.append((candidate, position))
    if pairs:
        conditions = " AND ".join(
            f"POSITION {name} = {position}" for name, position in sorted(
                pairs, key=lambda p: p[1]
            )
        )
        return f"RETRIEVE classification WHERE {conditions}"
    if "showing the car of" in lowered or "sequences showing" in lowered:
        if driver is None:
            raise QuerySyntaxError(f"no driver recognized in {text!r}")
        return f"RETRIEVE driver_mention WHERE ROLE driver = {driver}"
    raise QuerySyntaxError(f"cannot map query {text!r} onto COQL")
