"""The assembled Formula 1 retrieval system (§5.6).

:class:`FormulaOneSystem` wires a :class:`~repro.cobra.vdbms.CobraVDBMS`
with the Formula 1 domain knowledge: trained audio and audio-visual DBNs
(registered as extraction methods so the query preprocessor can extract
highlights on demand), OCR-derived text metadata at ingest time, and the
English-query front-end.
"""

from __future__ import annotations

import numpy as np

from repro.cobra.catalog import DomainKnowledge, ExtractionMethod
from repro.cobra.model import FeatureTrack, RawVideo, VideoDocument, VideoObject
from repro.cobra.vdbms import CobraVDBMS, QueryResult
from repro.errors import CobraError
from repro.fusion.audio_networks import AUDIO_NODE_TO_FEATURE
from repro.fusion.av_network import av_node_to_feature
from repro.fusion.discretize import DiscretizationConfig, hard_evidence
from repro.fusion.evaluate import extract_segments
from repro.fusion.features import FeatureSet
from repro.fusion.pipeline import RaceData
from repro.fusion.train import train_audio_network, train_av_network
from repro.synth.annotations import Interval
from repro.text.pipeline import extract_overlays
from repro.text.recognition import DRIVER_NAMES

__all__ = ["FormulaOneSystem", "DOMAIN_NAME"]

DOMAIN_NAME = "formula1"


class FormulaOneSystem:
    """Train once on an annotated race, then ingest and query races.

    Args:
        train_data: the annotated race (the paper uses the German GP).
        include_passing: keep the passing sub-network in the AV DBN.
        seed: training initialization seed.
    """

    def __init__(
        self,
        train_data: RaceData,
        include_passing: bool = False,
        seed: int = 2,
        config: DiscretizationConfig | None = None,
    ):
        self.db = CobraVDBMS()
        self.include_passing = include_passing
        self._config = config
        self._feature_sets: dict[str, FeatureSet] = {}

        self.av_template, _ = train_av_network(
            train_data.features,
            train_data.truth,
            include_passing=include_passing,
            seed=seed,
            config=config,
        )
        self.audio_template, _ = train_audio_network(
            train_data.features, train_data.truth, seed=seed, config=config
        )
        self.db.dbn.register("av", self.av_template)
        self.db.dbn.register("audio", self.audio_template)
        self.db.register_domain(self._build_domain())
        self.ingest(train_data)

    # ------------------------------------------------------------------
    def _build_domain(self) -> DomainKnowledge:
        av_kinds = ("highlight", "start", "fly_out") + (
            ("passing",) if self.include_passing else ()
        )
        methods = [
            ExtractionMethod(
                name="av_dbn",
                produces=av_kinds,
                extract=self._extract_av_events,
                requires_features=tuple(
                    av_node_to_feature(self.include_passing).values()
                ),
                cost=5.0,
                quality=0.85,
            ),
            ExtractionMethod(
                name="audio_dbn",
                produces=("excited_speech",),
                extract=self._extract_excited_speech,
                requires_features=tuple(AUDIO_NODE_TO_FEATURE.values()),
                cost=2.0,
                quality=0.8,
            ),
        ]
        return DomainKnowledge(
            DOMAIN_NAME,
            models={"av": self.av_template, "audio": self.audio_template},
            methods=methods,
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, data: RaceData) -> VideoDocument:
        """Register a race: raw + feature layers, objects, text metadata.

        DBN-derived events are NOT extracted here — the query preprocessor
        pulls them in dynamically the first time a query needs them.
        """
        race = data.race
        document = VideoDocument(
            raw=RawVideo(
                video_id=data.name,
                locator=f"synthetic://{data.name}?seed={race.spec.seed}",
                duration=race.duration,
                fps=race.video.fps,
                width=race.video and 192,
                height=144,
                audio_sample_rate=race.signal.sample_rate,
            )
        )
        for name, values in data.features.streams.items():
            document.add_feature(FeatureTrack(name, values))
        for index, driver in enumerate(DRIVER_NAMES):
            document.add_object(
                VideoObject(f"{data.name}/driver{index}", "driver", driver)
            )
        self._add_text_events(document, data)
        self.db.register_document(document, DOMAIN_NAME)
        self._feature_sets[data.name] = data.features
        return document

    def _add_text_events(self, document: VideoDocument, data: RaceData) -> None:
        """Run the OCR pipeline and store the semantic overlay events."""
        overlays = extract_overlays(data.race.video)
        for overlay in overlays:
            interval = Interval(
                overlay.start_time, max(overlay.end_time, overlay.start_time + 0.1)
            )
            event = overlay.event
            roles: dict[str, str] = {}
            if event.kind == "classification":
                for driver, position in event.positions.items():
                    roles[f"p{position}"] = self._object_id(document, driver)
                if event.lap is not None:
                    roles["lap"] = str(event.lap)
            elif event.kind in ("pit_stop", "winner", "driver_info"):
                if event.drivers:
                    roles["driver"] = self._object_id(document, event.drivers[0])
            elif event.kind == "lap" and event.lap is not None:
                roles["lap"] = str(event.lap)
            document.new_event(event.kind, interval, 1.0, roles, source="text")
            # every driver on screen also yields a mention event
            for driver in event.drivers:
                document.new_event(
                    "driver_mention",
                    interval,
                    1.0,
                    {"driver": self._object_id(document, driver)},
                    source="text",
                )

    @staticmethod
    def _object_id(document: VideoDocument, label: str) -> str:
        for video_object in document.objects.values():
            if video_object.label == label:
                return video_object.object_id
        raise CobraError(f"no driver object labelled {label!r}")

    # ------------------------------------------------------------------
    # dynamic extraction callbacks
    # ------------------------------------------------------------------
    def _features_of(self, document: VideoDocument) -> FeatureSet:
        name = document.raw.video_id
        if name in self._feature_sets:
            return self._feature_sets[name]
        streams = {n: t.values for n, t in document.features.items()}
        return FeatureSet(name, streams)

    def _extract_av_events(self, document: VideoDocument) -> list:
        features = self._features_of(document)
        evidence = hard_evidence(
            self.av_template,
            features,
            av_node_to_feature(self.include_passing),
            config=self._config,
        )
        node_kinds = [("Highlight", "highlight"), ("Start", "start"), ("FlyOut", "fly_out")]
        if self.include_passing:
            node_kinds.append(("Passing", "passing"))
        events = []
        for node, kind in node_kinds:
            posterior = self.db.dbn.infer("av", evidence, node)
            for segment in extract_segments(posterior):
                lo = int(segment.start * 10)
                hi = max(int(segment.end * 10), lo + 1)
                confidence = float(np.mean(posterior[lo:hi]))
                events.append(
                    document.new_event(kind, segment, confidence, source="dbn")
                )
        return events

    def _extract_excited_speech(self, document: VideoDocument) -> list:
        features = self._features_of(document)
        evidence = hard_evidence(
            self.audio_template, features, AUDIO_NODE_TO_FEATURE, config=self._config
        )
        posterior = self.db.dbn.infer("audio", evidence, "EA")
        events = []
        for segment in extract_segments(posterior, min_duration=2.6, merge_gap=0.5):
            lo = int(segment.start * 10)
            hi = max(int(segment.end * 10), lo + 1)
            events.append(
                document.new_event(
                    "excited_speech",
                    segment,
                    float(np.mean(posterior[lo:hi])),
                    source="dbn",
                )
            )
        return events

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, coql: str) -> QueryResult:
        """Run a COQL query (dynamic extraction happens automatically)."""
        return self.db.query(coql)

    def ask(self, english: str) -> QueryResult:
        """Run one of the paper's English example queries."""
        from repro.retrieval.parser import english_to_coql

        return self.db.query(english_to_coql(english))
