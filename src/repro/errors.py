"""Exception hierarchy for the Cobra VDBMS reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary. Subsystem errors mirror the
three-level DBMS architecture of the paper: kernel (Monet), algebra (Moa),
and conceptual (Cobra) levels, plus the probabilistic engines.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TransientError(ReproError):
    """A fault where retrying the same operation may well succeed.

    Retry policies (:class:`repro.resilience.RetryPolicy`) only ever retry
    errors in this branch of the hierarchy; everything else is assumed to be
    deterministic and fails fast.
    """


class PermanentError(ReproError):
    """A deterministic fault retrying cannot fix (bad input/plan/model)."""


def is_transient(error: BaseException) -> bool:
    """Whether a retry of the failing operation could plausibly succeed."""
    return isinstance(error, TransientError)


def annotate(error: BaseException, note: str) -> BaseException:
    """Attach origin context to an exception without changing its type.

    Uses PEP 678 notes on Python >= 3.11; on 3.10 the note is folded into
    the message when the args are a plain one-string tuple, and always kept
    on ``error.context_notes`` for programmatic access.
    """
    notes = getattr(error, "context_notes", [])
    error.context_notes = [*notes, note]
    if hasattr(error, "add_note"):
        error.add_note(note)
    elif len(error.args) == 1 and isinstance(error.args[0], str):
        error.args = (f"{error.args[0]}\n  {note}",)
    return error


class DeadlineExceeded(ReproError):
    """A per-call or per-query monotonic-clock budget expired.

    Base of :class:`TimeoutExpired`, kept so existing ``except
    DeadlineExceeded`` handlers keep working; new code should raise and
    catch :class:`TimeoutExpired`, which is transient and carries the
    overshoot.
    """

    def __init__(self, message: str, site: str | None = None):
        self.site = site
        if site is not None:
            message = f"{message} (at {site})"
        super().__init__(message)


class TimeoutExpired(DeadlineExceeded, TransientError):
    """A deadline check fired: the budget is spent at a named site.

    Transient — the same operation may well succeed under a fresh budget —
    so :meth:`repro.resilience.FailureReport.from_exception` classifies it
    as retryable; but :class:`repro.resilience.RetryPolicy` excludes it by
    default (``give_up_on``) because retrying under the *same* exhausted
    deadline cannot help. Carries ``site`` (where the check fired) and
    ``overshoot`` (seconds past the deadline when it was noticed).
    """

    def __init__(
        self,
        message: str,
        site: str | None = None,
        overshoot: float | None = None,
    ):
        self.overshoot = overshoot
        if overshoot is not None:
            message = f"{message} (overshot by {overshoot:.3f}s)"
        super().__init__(message, site=site)


class OverloadError(TransientError):
    """The query service refused work to protect itself.

    Raised by admission control (queue full, rate limit, draining) and by
    the shed-oldest policy when a queued request is evicted under sustained
    saturation. Transient — the client may retry after ``retry_after``
    seconds — but retry policies exclude it by default so a saturated
    service is not hammered. ``reason`` is one of ``"queue-full"``,
    ``"rate-limited"``, ``"draining"``, ``"shed"``, ``"bulkhead-full"``.
    """

    def __init__(
        self,
        message: str,
        reason: str = "queue-full",
        retry_after: float | None = None,
    ):
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(message)


class RequestCancelled(ReproError):
    """A cooperatively cancelled request observed its cancellation token.

    Deliberately neither transient nor permanent: the work itself was
    fine — somebody (the client, or a draining service) asked it to stop.
    """

    def __init__(self, message: str, site: str | None = None):
        self.site = site
        if site is not None:
            message = f"{message} (at {site})"
        super().__init__(message)


class CircuitOpenError(TransientError):
    """A circuit breaker is open and the call was rejected without running.

    Transient — the breaker may close after its recovery timeout — but
    retry policies treat it as non-retryable by default so an open circuit
    keeps failing fast instead of being hammered.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class InjectedFault(ReproError):
    """Base class for faults raised by :mod:`repro.faults` injection."""

    def __init__(self, message: str, site: str | None = None):
        self.site = site
        super().__init__(message)


class SimulatedCrash(BaseException):
    """An injected process kill (``kind="kill"`` fault at a crash point).

    Deliberately a :class:`BaseException`, not a :class:`ReproError`: a real
    ``kill -9`` is not catchable, so generic ``except Exception`` recovery
    paths (retry loops, degradation handlers) must not absorb it. Only a
    chaos harness that models the process boundary should catch it, discard
    the "dead" process state, and drive recovery from disk.
    """

    def __init__(self, message: str, site: str | None = None):
        self.site = site
        if site is not None:
            message = f"{message} (at {site})"
        super().__init__(message)


class InjectedTransientError(InjectedFault, TransientError):
    """An injected fault that models a recoverable glitch."""


class InjectedPermanentError(InjectedFault, PermanentError):
    """An injected fault that models a hard, deterministic failure."""


class MonetError(ReproError):
    """Error raised by the Monet-style binary-relational kernel."""


class AtomTypeError(MonetError, PermanentError):
    """A value does not conform to the declared atom type of a column."""


class BatError(MonetError, PermanentError):
    """Structural misuse of a BAT (arity, alignment, missing key)."""


class DurabilityError(MonetError):
    """Error in the durability layer (WAL, checkpoints, recovery)."""


class WalCorruptionError(DurabilityError):
    """The write-ahead log is structurally damaged beyond safe truncation."""


class RecoveryError(DurabilityError, PermanentError):
    """Crash recovery could not reconstruct a consistent catalog.

    Raised when the checkpoint is unreadable or the recovered catalog fails
    the :mod:`repro.check` invariants — replaying the same store will fail
    the same way, so the error is permanent.
    """


class ReplicationError(MonetError):
    """Error in the replicated kernel group (WAL shipping, failover)."""


class FencedWriteError(ReplicationError, PermanentError):
    """A write carrying a stale epoch was rejected by the fence.

    Raised when a deposed primary (or any holder of an old epoch lease)
    tries to mutate the group after a failover. Permanent by design: the
    caller's view of the world is obsolete and retrying the same write
    under the same lease can never succeed — it must re-acquire a lease
    from the current primary. Carries both epochs for the audit trail.
    """

    def __init__(self, message: str, lease_epoch: int, group_epoch: int):
        self.lease_epoch = lease_epoch
        self.group_epoch = group_epoch
        super().__init__(
            f"{message} (lease epoch {lease_epoch}, group epoch {group_epoch})"
        )


class StalenessBoundError(ReplicationError, TransientError):
    """No group node could satisfy a staleness-bounded read right now.

    Transient — replicas catch up and partitions heal — so a client may
    retry, but the group never silently serves data staler than the bound
    the caller asked for.
    """


class ShardingError(MonetError):
    """Error in the sharded kernel fleet (placement, scatter-gather)."""


class PlacementError(ShardingError, PermanentError):
    """The placement map and the shard catalogs disagree.

    Raised when a write is presented for a shard that does not own the
    document, or when recovery finds a journaled placement no shard can
    attest — retrying the same operation against the same map cannot
    succeed.
    """


class InsufficientCoverageError(ShardingError, TransientError):
    """A gather lost too many shards to honor the caller's coverage floor.

    Transient — dead shards rebalance away, breakers close, stragglers
    catch up — so a retry may well see more of the corpus; but the fleet
    never silently returns an answer computed from less than the caller's
    ``min_coverage`` fraction of the documents. Carries the achieved
    ``coverage``, the ``required`` floor, and the full
    :class:`repro.sharding.ShardCoverageReport` for the audit trail.
    """

    def __init__(self, message: str, coverage: float, required: float, report=None):
        self.coverage = coverage
        self.required = required
        self.report = report
        super().__init__(
            f"{message} (covered {coverage:.3f} of the corpus, "
            f"floor {required:.3f})"
        )


class ShardConfigError(ShardingError, ValueError):
    """A fleet configuration value is outside its legal domain.

    Raised at :class:`repro.sharding.ShardedKernel` construction (and for
    per-call overrides) when a coverage floor falls outside [0, 1] or a
    catch-up lag floor is negative — a typed :class:`ValueError` so the
    misconfiguration fails where it was written, not silently at gather
    time where an impossible floor would reject (or wave through) every
    answer.
    """


class MigrationError(ShardingError):
    """Error in the online shard split/migration subsystem."""


class MigrationLagError(MigrationError, TransientError):
    """Cutover refused: the destination lags the source beyond the floor.

    Transient by design — another catch-up round ships more of the
    source's WAL tail for the moving document, so a retry after
    ``catch_up`` may well succeed. Carries the observed ``lag`` (pending
    tail records), the configured ``floor``, and the moving ``video`` id.
    """

    def __init__(self, message: str, lag: int, floor: int, video: str = ""):
        self.lag = lag
        self.floor = floor
        self.video = video
        super().__init__(
            f"{message} (lag {lag} record(s), floor {floor})"
        )


class MilError(MonetError):
    """Base error for the MIL interpreter."""


class MilSyntaxError(MilError, PermanentError):
    """The MIL source text could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MilNameError(MilError, PermanentError):
    """Reference to an unknown MIL variable, procedure, or command."""


class MilRecursionError(MilError, PermanentError):
    """PROC call nesting exceeded the interpreter's depth limit.

    Raised by :meth:`repro.monet.mil.MilInterpreter._call_proc` instead of
    letting recursive MIL blow the Python stack. The limit is
    :data:`repro.monet.mil.MIL_RECURSION_LIMIT` — the same bound the CALL002
    whole-program diagnostic cites when it flags statically-unbounded
    recursion at registration time. Carries the ``proc`` whose call tipped
    over and the ``depth`` reached.
    """

    def __init__(self, message: str, proc: str | None = None, depth: int | None = None):
        self.proc = proc
        self.depth = depth
        super().__init__(message)


class MilTypeError(MilError, PermanentError):
    """A MIL operation was applied to operands of the wrong type."""


class MoaError(ReproError):
    """Error in the Moa object algebra layer."""


class MoaTypeError(MoaError, PermanentError):
    """A Moa expression does not type-check against its structures."""


class MoaNameError(MoaError, PermanentError):
    """Reference to an unknown Moa extension or extension operator.

    Carries ``suggestions`` — close-matching known names — so callers can
    render a "did you mean" hint.
    """

    def __init__(self, message: str, suggestions: "list[str] | None" = None):
        self.suggestions = list(suggestions or [])
        if self.suggestions:
            hint = ", ".join(repr(s) for s in self.suggestions)
            message = f"{message} (did you mean {hint}?)"
        super().__init__(message)


class CobraError(ReproError):
    """Error at the conceptual (Cobra VDBMS) level."""


class QuerySyntaxError(CobraError, PermanentError):
    """A COQL query string could not be parsed."""


class UnknownConceptError(CobraError, PermanentError):
    """A query references an object/event concept the catalog does not know."""


class ExtractionError(CobraError):
    """A dynamic feature/semantic extraction invocation failed.

    Transiency depends on the cause, so this base commits to neither; use
    :class:`TransientExtractionError` when the underlying failure was
    transient (the preprocessor re-wraps accordingly).
    """


class TransientExtractionError(ExtractionError, TransientError):
    """An extraction failure whose underlying cause was transient."""


class InferenceError(ReproError):
    """Error inside a probabilistic engine (BN, DBN, or HMM)."""


class GraphStructureError(InferenceError, PermanentError):
    """A network definition is not a DAG or references unknown nodes."""


class CpdError(InferenceError, PermanentError):
    """A conditional probability table is malformed or unnormalized."""


class LearningError(InferenceError, PermanentError):
    """Parameter learning failed (empty data, dimension mismatch, ...)."""


class SignalError(ReproError):
    """Error in the audio/video/text signal-processing substrates."""


class SynthesisError(ReproError):
    """Error while synthesizing a Formula 1 race."""


class RuleError(ReproError):
    """Error in the rule-based inference extension."""


class DiagnosticError(PermanentError):
    """A static checker found error-severity diagnostics.

    The offending :class:`repro.check.Diagnostic` objects ride along on
    ``diagnostics`` so callers can render per-line findings.
    """

    def __init__(self, message: str, diagnostics: "Sequence | None" = None):
        self.diagnostics = list(diagnostics or [])
        if self.diagnostics:
            details = "\n".join(f"  {d}" for d in self.diagnostics)
            message = f"{message}\n{details}"
        super().__init__(message)


class CatalogCheckError(DiagnosticError, MonetError):
    """Catalog invariant checking found error-severity diagnostics.

    Raised by crash recovery before a restored catalog is opened for use,
    and available standalone through :func:`repro.check.check_catalog`.
    """


class MilCheckError(DiagnosticError, MilError):
    """Static analysis rejected a MIL procedure before execution."""


class SanitizerError(DiagnosticError, MonetError):
    """The runtime sanitizer (``check="sanitize"``) caught a violation.

    Raised while a plan executes: a conflicting catalog write across
    PARALLEL branches (RACE001), a catalog mutation from a thread that
    does not own the open transaction (RACE005), or a command value-range
    contract broken by actual data (FLOW005). The offending diagnostics
    ride along like on every :class:`DiagnosticError`.
    """


class MoaCheckError(DiagnosticError, MoaError):
    """Static analysis rejected a Moa expression before compilation."""


class ReplicationCheckError(DiagnosticError, ReplicationError):
    """Static analysis rejected a kernel-group configuration.

    Raised at :class:`repro.replication.KernelGroup` construction when the
    REPL diagnostic family finds error-severity misconfigurations (writes
    routed to a replica, fencing disabled, an unsatisfiable staleness
    bound)."""


class ShardingCheckError(DiagnosticError, ShardingError):
    """Static analysis rejected a sharded-fleet configuration.

    Raised at :class:`repro.sharding.ShardedKernel` construction when the
    SHARD diagnostic family finds error-severity misconfigurations (writes
    routed off the owning shard, unfenced replicated shards)."""


class ModelCheckError(DiagnosticError, InferenceError):
    """Static analysis rejected a BN/DBN model before registration."""
