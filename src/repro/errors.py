"""Exception hierarchy for the Cobra VDBMS reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary. Subsystem errors mirror the
three-level DBMS architecture of the paper: kernel (Monet), algebra (Moa),
and conceptual (Cobra) levels, plus the probabilistic engines.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class MonetError(ReproError):
    """Error raised by the Monet-style binary-relational kernel."""


class AtomTypeError(MonetError):
    """A value does not conform to the declared atom type of a column."""


class BatError(MonetError):
    """Structural misuse of a BAT (arity, alignment, missing key)."""


class MilError(MonetError):
    """Base error for the MIL interpreter."""


class MilSyntaxError(MilError):
    """The MIL source text could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MilNameError(MilError):
    """Reference to an unknown MIL variable, procedure, or command."""


class MilTypeError(MilError):
    """A MIL operation was applied to operands of the wrong type."""


class MoaError(ReproError):
    """Error in the Moa object algebra layer."""


class MoaTypeError(MoaError):
    """A Moa expression does not type-check against its structures."""


class MoaNameError(MoaError):
    """Reference to an unknown Moa extension or extension operator.

    Carries ``suggestions`` — close-matching known names — so callers can
    render a "did you mean" hint.
    """

    def __init__(self, message: str, suggestions: "list[str] | None" = None):
        self.suggestions = list(suggestions or [])
        if self.suggestions:
            hint = ", ".join(repr(s) for s in self.suggestions)
            message = f"{message} (did you mean {hint}?)"
        super().__init__(message)


class CobraError(ReproError):
    """Error at the conceptual (Cobra VDBMS) level."""


class QuerySyntaxError(CobraError):
    """A COQL query string could not be parsed."""


class UnknownConceptError(CobraError):
    """A query references an object/event concept the catalog does not know."""


class ExtractionError(CobraError):
    """A dynamic feature/semantic extraction invocation failed."""


class InferenceError(ReproError):
    """Error inside a probabilistic engine (BN, DBN, or HMM)."""


class GraphStructureError(InferenceError):
    """A network definition is not a DAG or references unknown nodes."""


class CpdError(InferenceError):
    """A conditional probability table is malformed or unnormalized."""


class LearningError(InferenceError):
    """Parameter learning failed (empty data, dimension mismatch, ...)."""


class SignalError(ReproError):
    """Error in the audio/video/text signal-processing substrates."""


class SynthesisError(ReproError):
    """Error while synthesizing a Formula 1 race."""


class RuleError(ReproError):
    """Error in the rule-based inference extension."""


class DiagnosticError(ReproError):
    """A static checker found error-severity diagnostics.

    The offending :class:`repro.check.Diagnostic` objects ride along on
    ``diagnostics`` so callers can render per-line findings.
    """

    def __init__(self, message: str, diagnostics: "Sequence | None" = None):
        self.diagnostics = list(diagnostics or [])
        if self.diagnostics:
            details = "\n".join(f"  {d}" for d in self.diagnostics)
            message = f"{message}\n{details}"
        super().__init__(message)


class MilCheckError(DiagnosticError, MilError):
    """Static analysis rejected a MIL procedure before execution."""


class MoaCheckError(DiagnosticError, MoaError):
    """Static analysis rejected a Moa expression before compilation."""


class ModelCheckError(DiagnosticError, InferenceError):
    """Static analysis rejected a BN/DBN model before registration."""
