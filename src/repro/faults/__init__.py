"""Deterministic fault injection for chaos-testing the VDBMS stack.

The package separates the *plan* (data: seeded :class:`FaultPlan` /
:class:`FaultSpec`) from the *runtime* (:class:`FaultInjector`, consulted
at opt-in hook points in synthesis, extraction, the kernel command path,
and the Moa extension call path). ``python -m repro.faults <plan>``
replays a named plan against a synthetic race and prints the degradation
summary.
"""

from repro.faults.injector import FaultInjector, Injection
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.plans import (
    NAMED_PLANS,
    get_plan,
    global_injector,
    install_global,
    plan_names,
    resolve_injector,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "Injection",
    "NAMED_PLANS",
    "get_plan",
    "plan_names",
    "global_injector",
    "install_global",
    "resolve_injector",
]
