"""Replay a named fault plan against a synthetic race.

Usage::

    python -m repro.faults --list
    python -m repro.faults --sites
    python -m repro.faults chaos
    python -m repro.faults modality-drop --race belgian --duration 180

``--sites`` prints every fault-site family a plan's specs can target —
including the ``sharding.transport:<shard>`` scatter transports and the
``sharding.place:*`` two-phase placement crash points — with the fault
kinds each family honours.

The replay drives the two fault-bearing stages end to end — synthesis
(audio dropouts, frame loss, garbled overlays) and extraction (modality
failures, per-stream corruption/loss) — in ``degrade`` mode, then prints
the exact injection schedule and every degradation the pipeline absorbed.
Because plans are deterministic, running the same command twice prints the
same schedule; CI replays ``ci-low-rate`` this way in its chaos job.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.faults.injector import FaultInjector
from repro.faults.plans import SITE_FAMILIES, get_plan, plan_names

_RACES = ("german", "belgian", "usa")


def _spec(race: str, duration: float, seed: int | None):
    from repro.synth.grandprix import BELGIAN_GP, GERMAN_GP, USA_GP

    spec = {"german": GERMAN_GP, "belgian": BELGIAN_GP, "usa": USA_GP}[race]
    changes = {"duration": duration}
    if seed is not None:
        changes["seed"] = seed
    return replace(spec, **changes)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Replay a named fault plan against a synthetic race.",
    )
    parser.add_argument(
        "plan", nargs="?", help=f"plan to replay (one of {plan_names()})"
    )
    parser.add_argument(
        "--list", action="store_true", help="list the named plans and exit"
    )
    parser.add_argument(
        "--sites",
        action="store_true",
        help="list the fault-site families specs can target and exit",
    )
    parser.add_argument("--race", choices=_RACES, default="german")
    parser.add_argument(
        "--duration", type=float, default=360.0, help="race length in seconds"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the race seed"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in plan_names():
            plan = get_plan(name)
            print(f"{name}: {plan.describe()}")
        return 0
    if args.sites:
        width = max(len(pattern) for pattern in SITE_FAMILIES)
        for pattern, description in SITE_FAMILIES.items():
            print(f"{pattern:<{width}}  {description}")
        return 0
    if args.plan is None:
        parser.error("a plan name (or --list or --sites) is required")

    plan = get_plan(args.plan)
    injector = FaultInjector(plan)
    print(f"plan {plan.name!r} (seed {plan.seed}): {plan.describe()}")

    # Imported lazily so `--list` stays instant.
    from repro.fusion.features import extract_feature_set
    from repro.synth.grandprix import synthesize_race

    from repro.errors import SynthesisError

    spec = _spec(args.race, args.duration, args.seed)
    print(f"replaying against {spec.name} GP, {spec.duration:.0f} s")
    try:
        race = synthesize_race(spec, faults=injector)
    except SynthesisError as exc:
        parser.error(f"--duration too short for the {spec.name} GP preset: {exc}")
    features = extract_feature_set(race, faults=injector, on_error="degrade")

    print(f"\ninjections ({len(injector.injections)}):")
    for record in injector.injections:
        print(f"  {record}")
    if not injector.injections:
        print("  (none triggered)")

    print("\ndegradations:")
    notes = [
        f"  dropped stream {name!r}: {reason}"
        for name, reason in sorted(features.dropped.items())
    ]
    notes.extend(f"  {report}" for report in features.failures)
    missing = features.missing_modalities()
    if missing:
        notes.append(f"  modalities lost entirely: {missing}")
    print("\n".join(notes) if notes else "  (none — all streams survived)")
    print(
        f"\nsurviving streams: {len(features.streams)} "
        f"({features.n_steps} steps at 10 Hz)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
