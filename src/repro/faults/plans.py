"""Named fault plans and the env-var-driven global injector.

The CI ``chaos`` job sets ``REPRO_FAULT_PLAN=<name>`` to enable a low-rate
global plan for every hook point that was not given an explicit injector;
``python -m repro.faults <name>`` replays a plan against a synthetic race.
"""

from __future__ import annotations

import os

from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "NAMED_PLANS",
    "SITE_FAMILIES",
    "get_plan",
    "plan_names",
    "global_injector",
    "install_global",
    "resolve_injector",
]

#: Every fault-site family the codebase consults, pattern -> what a spec
#: matching it injects into. The ``python -m repro.faults --sites``
#: listing prints this table; keep it in sync when adding hook points.
SITE_FAMILIES: dict[str, str] = {
    "synth.audio|video|text": "synthesis streams (corrupt: dropouts, "
    "frozen frames, garbled captions)",
    "extract.stream:<name>": "per-feature-stream extraction "
    "(corrupt/drop)",
    "extract.audio|visual|text": "whole-modality extraction (fail)",
    "extractor:<method>": "dynamic extraction methods (fail/stall/delay)",
    "kernel.command:<name>": "kernel command dispatch (fail/delay)",
    "moa.invoke:<ext>.<op>": "Moa operator invocation (fail/delay)",
    "wal.append:<point>": "WAL append crash points (kill)",
    "wal.commit:<point>": "WAL commit crash points (kill)",
    "checkpoint:<point>": "checkpoint crash points (kill)",
    "service.submit:<kind>": "service admission (burst: duplicate "
    "arrivals)",
    "replication.link:<replica>": "WAL shipping links (partition/lag)",
    "replication.probe:<primary>": "group health probes (fail/kill)",
    "sharding.transport:<shard>": "shard scatter transports "
    "(partition -> request lost, lag -> hedged backup read, "
    "kill -> shard crash mid-scatter, fail/delay)",
    "sharding.place:prepared|registered": "two-phase document placement "
    "crash points (kill between journal prepare and commit)",
    "sharding.migrate:<video>": "per-document migration copy/catch-up "
    "fault sites (kill before the bulk copy, fail/delay)",
    "migration:planned|copied|cutover|retired": "migration protocol "
    "crash points, one after each phase's journal record (kill)",
}

#: Environment variable naming the plan behind :func:`global_injector`.
ENV_VAR = "REPRO_FAULT_PLAN"

NAMED_PLANS: dict[str, FaultPlan] = {
    # Non-failing background noise for running tolerant suites under chaos:
    # mild stream corruption plus sub-millisecond kernel delays. Nothing
    # raises, so strict pipelines still complete.
    "ci-low-rate": FaultPlan(
        seed=2002,
        name="ci-low-rate",
        specs=(
            FaultSpec(site="extract.stream:f*", kind="corrupt", rate=0.02, severity=0.1),
            FaultSpec(site="kernel.command:*", kind="delay", rate=0.005, delay=0.001),
        ),
    ),
    # The acceptance scenario of ISSUE 2: one full modality gone plus 5 %
    # transient kernel-command failures.
    "modality-drop": FaultPlan(
        seed=55,
        name="modality-drop",
        specs=(
            FaultSpec(site="extract.visual", kind="fail", rate=1.0, transient=False),
            FaultSpec(site="kernel.command:*", kind="fail", rate=0.05, transient=True),
        ),
    ),
    # Transient kernel glitches only — exercised against retry policies.
    "kernel-transient": FaultPlan(
        seed=7,
        name="kernel-transient",
        specs=(
            FaultSpec(site="kernel.command:*", kind="fail", rate=0.05, transient=True),
        ),
    ),
    # One simulated process kill mid-commit: WAL records written, commit
    # marker not yet — recovery must discard the in-flight transaction.
    # Exercised by tests/test_crash_recovery.py and the crash-recovery CI
    # job (the kill-point sweep covers every other crash site).
    "crash-commit": FaultPlan(
        seed=11,
        name="crash-commit",
        specs=(
            FaultSpec(site="wal.commit:mid", kind="kill", max_triggers=1),
        ),
    ),
    # The ISSUE-5 acceptance scenario: every submission to the service is
    # amplified 4x (factor=3 extra clones per arrival) while the video
    # extractor lane wedges in cancellable stalls — drives the queue to
    # saturation so shed-oldest and drain paths are exercised. Used by
    # tests/test_service.py and the overload CI job.
    "overload-burst": FaultPlan(
        seed=41,
        name="overload-burst",
        specs=(
            FaultSpec(site="service.submit:*", kind="burst", rate=1.0, factor=3),
            FaultSpec(site="extractor:*", kind="stall", rate=0.5, delay=0.02),
        ),
    ),
    # The ISSUE-8 acceptance scenario: shards die mid-scatter. shard-1 is
    # killed outright while shard-0 straggles (a lag trigger the gather
    # answers through a hedged backup read) — a fan-out query must return
    # a degraded result with an exact ShardCoverageReport, never raise.
    # Used by tests/test_sharding.py; the richer two-kill scenario (dead
    # shard + in-shard failover) lives in repro.sharding.chaos.
    "shard-death": FaultPlan(
        seed=77,
        name="shard-death",
        specs=(
            FaultSpec(site="sharding.transport:shard-1", kind="kill", max_triggers=1),
            FaultSpec(site="sharding.transport:shard-0", kind="lag", factor=2, max_triggers=1),
        ),
    ),
    # The full broadcast-from-hell: audio dropouts, frame loss, garbled
    # chyrons, stream corruption, transient kernel/extractor failures.
    "chaos": FaultPlan(
        seed=1999,
        name="chaos",
        specs=(
            FaultSpec(site="synth.audio", kind="corrupt", rate=1.0, severity=0.05),
            FaultSpec(site="synth.video", kind="corrupt", rate=1.0, severity=0.03),
            FaultSpec(site="synth.text", kind="corrupt", rate=0.3, severity=0.4),
            FaultSpec(site="extract.stream:f*", kind="corrupt", rate=0.05, severity=0.2),
            FaultSpec(site="extract.stream:f1", kind="drop", rate=1.0, max_triggers=1),
            FaultSpec(site="kernel.command:*", kind="fail", rate=0.05, transient=True),
            FaultSpec(site="extractor:*", kind="fail", rate=0.2, transient=True),
            FaultSpec(site="moa.invoke:*", kind="delay", rate=0.05, delay=0.002),
        ),
    ),
}


def plan_names() -> list[str]:
    return sorted(NAMED_PLANS)


def get_plan(name: str) -> FaultPlan:
    try:
        return NAMED_PLANS[name]
    except KeyError:
        raise ReproError(
            f"unknown fault plan {name!r}; known plans: {plan_names()}"
        ) from None


# ---------------------------------------------------------------------------
# global injector
# ---------------------------------------------------------------------------

_NULL_INJECTOR = FaultInjector.disabled()
#: The installed global injector, or None when the env var decides lazily.
_GLOBAL: FaultInjector | None = None
_GLOBAL_FROM_ENV: str | None = None


def install_global(injector: "FaultInjector | FaultPlan | None") -> FaultInjector:
    """Install (or clear, with ``None``) the process-wide injector.

    Passing ``None`` reverts to the ``REPRO_FAULT_PLAN`` env-var behaviour.
    """
    global _GLOBAL, _GLOBAL_FROM_ENV
    if injector is None:
        _GLOBAL = None
        _GLOBAL_FROM_ENV = None
        return _NULL_INJECTOR
    if isinstance(injector, FaultPlan):
        injector = FaultInjector(injector)
    _GLOBAL = injector
    _GLOBAL_FROM_ENV = None
    return injector


def global_injector() -> FaultInjector:
    """The process-wide injector consulted when no explicit one is given.

    Explicitly installed injectors win; otherwise ``REPRO_FAULT_PLAN``
    names a plan from :data:`NAMED_PLANS` (re-read when the variable
    changes, so tests can monkeypatch it). Disabled by default.
    """
    global _GLOBAL, _GLOBAL_FROM_ENV
    env = os.environ.get(ENV_VAR) or None
    if _GLOBAL is not None and _GLOBAL_FROM_ENV is None:
        return _GLOBAL
    if env != _GLOBAL_FROM_ENV:
        _GLOBAL = FaultInjector(get_plan(env)) if env else None
        _GLOBAL_FROM_ENV = env
    return _GLOBAL if _GLOBAL is not None else _NULL_INJECTOR


def resolve_injector(injector: "FaultInjector | FaultPlan | None") -> FaultInjector:
    """Normalize a hook-point argument: explicit wins, else the global one."""
    if injector is None:
        return global_injector()
    if isinstance(injector, FaultPlan):
        return FaultInjector(injector)
    return injector
