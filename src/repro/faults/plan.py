"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is data, not behaviour: a seed plus a list of
:class:`FaultSpec` site patterns. Whether a given invocation of a given
site triggers a fault is a pure function of (plan seed, spec index, site
name, per-site invocation counter), so a chaos test that replays a plan
sees byte-identical fault schedules — chaos as reproducible unit tests,
not flakiness.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

#: What an injected fault does at its hook point.
#:
#: * ``fail``    — raise an Injected(Transient|Permanent)Error,
#: * ``delay``   — sleep ``delay`` seconds before the call proceeds,
#: * ``stall``   — model a wedged call: sleep ``delay`` seconds in small
#:   slices, checking the ambient cancellation token between slices, so a
#:   stalled extractor ties up its bulkhead lane but still honours
#:   cooperative cancellation at checkpoint granularity,
#: * ``drop``    — remove the data item (stream / frame / overlay) entirely,
#: * ``corrupt`` — damage the data in a kind-appropriate way (audio
#:   dropouts, frozen frames, garbled overlay text, noisy streams),
#: * ``burst``   — model an arrival surge at a service admission site: the
#:   :meth:`repro.faults.injector.FaultInjector.burst_count` hook reports
#:   ``factor`` extra duplicate arrivals per trigger, which the query
#:   service synthesizes as clone requests to drive overload,
#: * ``kill``    — raise :class:`repro.errors.SimulatedCrash`, modelling a
#:   process kill at a named WAL/checkpoint crash point (the chaos harness
#:   in :mod:`repro.durability.chaos` recovers from disk afterwards),
#: * ``partition`` — sever a replication link for one shipment round: the
#:   :meth:`repro.faults.injector.FaultInjector.link_partitioned` hook
#:   reports the link down, so no WAL records flow and the replica's lag
#:   grows (heals when the spec stops firing),
#: * ``lag``     — slow a replication link without severing it: the
#:   :meth:`repro.faults.injector.FaultInjector.link_lag` hook withholds
#:   the newest ``factor`` unshipped records per round, keeping the
#:   replica a bounded distance behind the primary.
FAULT_KINDS = (
    "fail", "delay", "stall", "drop", "corrupt", "burst", "kill",
    "partition", "lag",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: which sites, what happens, how often.

    Attributes:
        site: ``fnmatch``-style pattern over site names, e.g.
            ``"kernel.command:*"``, ``"extractor:flyout*"``,
            ``"synth.audio"``, ``"extract.stream:f1?"``.
        kind: one of :data:`FAULT_KINDS`.
        rate: per-invocation trigger probability in [0, 1].
        transient: for ``kind="fail"`` — raise a transient (retryable) or
            permanent injected error.
        delay: seconds slept for ``kind="delay"`` and total wedge duration
            for ``kind="stall"``.
        severity: corruption strength in [0, 1] for ``kind="corrupt"``
            (fraction of samples dropped out / frames frozen / characters
            garbled / noise amplitude).
        factor: for ``kind="burst"`` — how many extra duplicate arrivals
            each trigger injects on top of the real one; for ``kind="lag"``
            — how many of the newest unshipped WAL records each trigger
            withholds from a replication shipment.
        max_triggers: cap on how many times this spec may fire (``None`` =
            unlimited).
        message: override for the injected error message.
    """

    site: str
    kind: str = "fail"
    rate: float = 1.0
    transient: bool = True
    delay: float = 0.0
    severity: float = 0.5
    factor: int = 2
    max_triggers: int | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site:
            raise ReproError("fault spec needs a non-empty site pattern")
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError(f"rate must be in [0, 1], got {self.rate}")
        if not 0.0 <= self.severity <= 1.0:
            raise ReproError(f"severity must be in [0, 1], got {self.severity}")
        if self.delay < 0:
            raise ReproError(f"delay must be >= 0, got {self.delay}")
        if self.factor < 1:
            raise ReproError(f"factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs.

    The plan is inert until handed to a
    :class:`repro.faults.injector.FaultInjector`.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def rng_for(self, spec_index: int, site: str, invocation: int) -> np.random.Generator:
        """The deterministic generator deciding one (spec, site, call)."""
        return np.random.default_rng(
            [self.seed, spec_index, zlib.crc32(site.encode("utf-8")), invocation]
        )

    def triggers(self, spec_index: int, site: str, invocation: int) -> bool:
        """Whether spec #``spec_index`` fires at this invocation of ``site``."""
        spec = self.specs[spec_index]
        if spec.rate >= 1.0:
            return True
        if spec.rate <= 0.0:
            return False
        return bool(
            self.rng_for(spec_index, site, invocation).random() < spec.rate
        )

    def describe(self) -> str:
        lines = [f"FaultPlan {self.name or '<unnamed>'} (seed={self.seed})"]
        for spec in self.specs:
            extra = {
                "fail": f"transient={spec.transient}",
                "delay": f"delay={spec.delay}s",
                "stall": f"delay={spec.delay}s",
                "drop": "",
                "corrupt": f"severity={spec.severity}",
                "burst": f"factor={spec.factor}",
                "kill": "",
                "partition": "",
                "lag": f"factor={spec.factor}",
            }[spec.kind]
            cap = f" max={spec.max_triggers}" if spec.max_triggers else ""
            lines.append(
                f"  {spec.site}: {spec.kind} @ rate {spec.rate:g}"
                + (f" ({extra})" if extra else "")
                + cap
            )
        return "\n".join(lines)
