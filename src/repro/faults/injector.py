"""The runtime side of fault injection.

A :class:`FaultInjector` is consulted at opt-in hook points across the
stack — stream synthesis (`repro.synth`), feature extraction
(`repro.fusion.features`), kernel command invocation (`repro.monet`), the
Moa extension call path (`repro.moa`), and dynamic extraction
(`repro.cobra`). Every decision is deterministic in the plan seed and the
per-site invocation counter, and every triggered fault is appended to
:attr:`FaultInjector.injections` so tests can assert the exact schedule.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import (
    InjectedPermanentError,
    InjectedTransientError,
    SimulatedCrash,
)
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = ["Injection", "FaultInjector"]


@dataclass(frozen=True)
class Injection:
    """One triggered fault (the injector's log record)."""

    site: str
    kind: str
    spec_site: str
    invocation: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}@{self.site}#{self.invocation}{extra}"


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at hook points.

    ``FaultInjector(None)`` is a disabled no-op injector — hooks can call
    it unconditionally. ``sleep`` is injectable so delay faults are
    testable without wall-clock time.
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.plan = plan if plan and plan.specs else None
        self._sleep = sleep
        self._lock = threading.Lock()
        self._site_counts: dict[str, int] = {}
        self._spec_triggers: dict[int, int] = {}
        #: Every triggered fault, in trigger order.
        self.injections: list[Injection] = []

    @classmethod
    def disabled(cls) -> "FaultInjector":
        return cls(None)

    @property
    def enabled(self) -> bool:
        return self.plan is not None

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _next_invocation(self, site: str) -> int:
        with self._lock:
            count = self._site_counts.get(site, 0)
            self._site_counts[site] = count + 1
            return count

    def _matching(self, site: str, kinds: tuple[str, ...]) -> list[tuple[int, FaultSpec]]:
        assert self.plan is not None
        return [
            (i, spec)
            for i, spec in enumerate(self.plan.specs)
            if spec.kind in kinds and fnmatch.fnmatchcase(site, spec.site)
        ]

    def _fire(self, index: int, spec: FaultSpec, site: str, invocation: int) -> bool:
        """Trigger decision for one spec, honouring max_triggers."""
        assert self.plan is not None
        if not self.plan.triggers(index, site, invocation):
            return False
        with self._lock:
            fired = self._spec_triggers.get(index, 0)
            if spec.max_triggers is not None and fired >= spec.max_triggers:
                return False
            self._spec_triggers[index] = fired + 1
        return True

    def _log(
        self, site: str, spec: FaultSpec, invocation: int, detail: str = ""
    ) -> None:
        with self._lock:
            self.injections.append(
                Injection(site, spec.kind, spec.site, invocation, detail)
            )

    def counts(self) -> dict[str, int]:
        """Triggered-fault totals keyed by ``kind@site``."""
        out: dict[str, int] = {}
        with self._lock:
            for record in self.injections:
                key = f"{record.kind}@{record.site}"
                out[key] = out.get(key, 0) + 1
        return out

    # ------------------------------------------------------------------
    # call-path hooks (fail / delay)
    # ------------------------------------------------------------------
    def on_call(self, site: str) -> None:
        """Hook before a guarded call: may sleep (delay), wedge in a
        cancellable stall (stall), raise (fail), or simulate a process
        kill (kill)."""
        if self.plan is None:
            return
        specs = self._matching(site, ("fail", "delay", "stall", "kill"))
        if not specs:
            return
        invocation = self._next_invocation(site)
        for index, spec in specs:
            if not self._fire(index, spec, site, invocation):
                continue
            if spec.kind == "delay":
                self._log(site, spec, invocation, f"{spec.delay}s")
                if spec.delay > 0:
                    self._sleep(spec.delay)
                continue
            if spec.kind == "stall":
                self._log(site, spec, invocation, f"{spec.delay}s")
                self._stall(site, spec.delay)
                continue
            if spec.kind == "kill":
                self._log(site, spec, invocation, "crash")
                raise SimulatedCrash(
                    spec.message or "injected process kill", site=site
                )
            message = spec.message or (
                f"injected {'transient' if spec.transient else 'permanent'} "
                f"fault at {site}"
            )
            self._log(site, spec, invocation, "transient" if spec.transient else "permanent")
            error = InjectedTransientError if spec.transient else InjectedPermanentError
            raise error(message, site=site)

    def _stall(self, site: str, duration: float) -> None:
        """Wedge for ``duration`` seconds, but stay cancellable.

        Sleeps in small slices and checks the ambient cancellation token
        between them, so a stalled worker holds its bulkhead lane (the
        overload it models) yet still honours cooperative cancellation —
        a drain deadline can reclaim the lane within one slice.
        """
        from repro.resilience import cancel_checkpoint

        slice_s = 0.01
        remaining = duration
        cancel_checkpoint(site)
        while remaining > 0:
            self._sleep(min(slice_s, remaining))
            remaining -= slice_s
            cancel_checkpoint(site)

    # ------------------------------------------------------------------
    # arrival hook (burst)
    # ------------------------------------------------------------------
    def burst_count(self, site: str) -> int:
        """Extra duplicate arrivals to synthesize at an admission site.

        The query service calls this once per real submission; a matching
        ``burst`` spec that fires contributes ``spec.factor`` clones, so a
        plan with ``factor=3`` turns each arrival into 4 requests. Returns
        0 when no spec fires (the common case and the disabled case).
        """
        if self.plan is None:
            return 0
        specs = self._matching(site, ("burst",))
        if not specs:
            return 0
        invocation = self._next_invocation(site)
        extra = 0
        for index, spec in specs:
            if self._fire(index, spec, site, invocation):
                self._log(site, spec, invocation, f"factor={spec.factor}")
                extra += spec.factor
        return extra

    # ------------------------------------------------------------------
    # replication-link hooks (partition / lag)
    # ------------------------------------------------------------------
    def link_partitioned(self, site: str) -> bool:
        """Whether a replication link is severed for this shipment round.

        The kernel group consults this once per replica per pump (site
        ``replication.link:<replica>``); a firing ``partition`` spec drops
        the whole shipment, so the replica receives nothing and its lag
        grows. The link heals as soon as the spec stops firing (rate or
        ``max_triggers`` exhausted) — catch-up recovery then ships the
        checkpoint snapshot + WAL tail the replica missed.
        """
        if self.plan is None:
            return False
        specs = self._matching(site, ("partition",))
        if not specs:
            return False
        invocation = self._next_invocation(site)
        for index, spec in specs:
            if self._fire(index, spec, site, invocation):
                self._log(site, spec, invocation, "link down")
                return True
        return False

    def link_lag(self, site: str) -> int:
        """How many of the newest unshipped records to withhold this round.

        A firing ``lag`` spec keeps the replica ``spec.factor`` records
        behind the primary per trigger (summed across firing specs) without
        severing the link — the slow-follower regime staleness-bounded
        read routing must handle. Returns 0 when nothing fires.
        """
        if self.plan is None:
            return 0
        specs = self._matching(site, ("lag",))
        if not specs:
            return 0
        invocation = self._next_invocation(site)
        withheld = 0
        for index, spec in specs:
            if self._fire(index, spec, site, invocation):
                self._log(site, spec, invocation, f"withheld={spec.factor}")
                withheld += spec.factor
        return withheld

    # ------------------------------------------------------------------
    # data hooks (drop / corrupt)
    # ------------------------------------------------------------------
    def should_drop(self, site: str) -> bool:
        """Hook for whole-item loss (a stream, a modality, an overlay)."""
        if self.plan is None:
            return False
        specs = self._matching(site, ("drop",))
        if not specs:
            return False
        invocation = self._next_invocation(site)
        for index, spec in specs:
            if self._fire(index, spec, site, invocation):
                self._log(site, spec, invocation)
                return True
        return False

    def corrupt_array(self, site: str, values: np.ndarray) -> np.ndarray:
        """Corrupt a 1-D sample/feature array with dropout spans + noise.

        Models an audio dropout or a glitchy feature stream: ``severity``
        controls the total fraction of samples zeroed out across a few
        contiguous spans, plus low-amplitude noise over the survivors.
        Returns the input untouched when no matching spec fires.
        """
        if self.plan is None or values.size == 0:
            return values
        specs = self._matching(site, ("corrupt",))
        if not specs:
            return values
        invocation = self._next_invocation(site)
        out = values
        for index, spec in specs:
            if not self._fire(index, spec, site, invocation):
                continue
            rng = self.plan.rng_for(index, site, invocation)
            out = np.array(out, dtype=np.float64, copy=True)
            n = out.shape[0]
            budget = int(spec.severity * n)
            spans = max(1, min(4, budget))
            dropped = 0
            for _ in range(spans):
                if budget - dropped <= 0:
                    break
                width = max(1, int(rng.integers(1, max(2, (budget - dropped) + 1))))
                start = int(rng.integers(0, max(1, n - width + 1)))
                out[start : start + width] = 0.0
                dropped += width
            noise = 0.05 * spec.severity
            if noise > 0:
                out += rng.normal(0.0, noise, size=n)
            self._log(site, spec, invocation, f"dropout={dropped}/{n}")
        return out

    def corrupt_text(self, site: str, text: str) -> str:
        """Garble overlay text: replace a severity-fraction of characters."""
        if self.plan is None or not text:
            return text
        specs = self._matching(site, ("corrupt",))
        if not specs:
            return text
        invocation = self._next_invocation(site)
        out = text
        for index, spec in specs:
            if not self._fire(index, spec, site, invocation):
                continue
            rng = self.plan.rng_for(index, site, invocation)
            chars = list(out)
            n_garble = max(1, int(spec.severity * len(chars)))
            positions = rng.choice(len(chars), size=min(n_garble, len(chars)), replace=False)
            # Renderable garbage only (the overlay font's glyph set): a
            # garbled chyron should misread downstream, not crash the
            # renderer with an undrawable character.
            alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
            for position in positions:
                chars[int(position)] = alphabet[int(rng.integers(0, len(alphabet)))]
            out = "".join(chars)
            self._log(site, spec, invocation, f"garbled={len(positions)}/{len(chars)}")
        return out

    def frame_loss_mask(self, site: str, n_frames: int) -> np.ndarray | None:
        """Which frames are lost (frozen to the previous frame), or None.

        Returns a boolean array of shape (n_frames,) with True at lost
        positions when a matching ``corrupt`` spec fires; frame 0 is never
        lost so the freeze always has a predecessor.
        """
        if self.plan is None or n_frames <= 1:
            return None
        specs = self._matching(site, ("corrupt",))
        if not specs:
            return None
        invocation = self._next_invocation(site)
        mask: np.ndarray | None = None
        for index, spec in specs:
            if not self._fire(index, spec, site, invocation):
                continue
            rng = self.plan.rng_for(index, site, invocation)
            if mask is None:
                mask = np.zeros(n_frames, dtype=bool)
            n_lost = int(spec.severity * n_frames)
            if n_lost:
                lost = rng.choice(n_frames - 1, size=min(n_lost, n_frames - 1), replace=False)
                mask[lost + 1] = True
            self._log(site, spec, invocation, f"lost={int(mask.sum())}/{n_frames}")
        return mask
