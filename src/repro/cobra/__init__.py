"""Cobra VDBMS core: the four-layer video model, BAT-backed metadata,
COQL, the query preprocessor with dynamic extraction, compound events,
and the three-level facade."""

from repro.cobra.catalog import DomainKnowledge, ExtractionMethod, KnowledgeCatalog
from repro.cobra.compound import Component, CompoundEventDef, TemporalConstraint
from repro.cobra.extensions import (
    DBN_INFER_PROC,
    DbnExtension,
    DbnModule,
    RuleExtension,
    VideoProcessingExtension,
)
from repro.cobra.metadata import MetadataStore
from repro.cobra.model import (
    FeatureTrack,
    RawVideo,
    VideoDocument,
    VideoEvent,
    VideoObject,
)
from repro.cobra.preprocessor import PreprocessReport, QueryPreprocessor
from repro.cobra.query import CoqlQuery, Condition, QueryExecutor, parse_coql
from repro.cobra.vdbms import CobraVDBMS, QueryResult

__all__ = [
    "DomainKnowledge", "ExtractionMethod", "KnowledgeCatalog",
    "Component", "CompoundEventDef", "TemporalConstraint",
    "DBN_INFER_PROC", "DbnExtension", "DbnModule", "RuleExtension",
    "VideoProcessingExtension",
    "MetadataStore",
    "FeatureTrack", "RawVideo", "VideoDocument", "VideoEvent", "VideoObject",
    "PreprocessReport", "QueryPreprocessor",
    "CoqlQuery", "Condition", "QueryExecutor", "parse_coql",
    "CobraVDBMS", "QueryResult",
]
