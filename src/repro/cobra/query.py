"""COQL — the Cobra object query language (conceptual level).

A small declarative language over the event/object metadata::

    RETRIEVE fly_out
    RETRIEVE pit_stop WHERE ROLE driver = BARRICHELLO
    RETRIEVE classification WHERE POSITION SCHUMACHER = 1
    RETRIEVE classification WHERE POSITION SCHUMACHER = 1
                              AND POSITION HAKKINEN = 2
    RETRIEVE highlight WHERE INTERSECTS driver_mention
                              WITH ROLE driver = SCHUMACHER
    RETRIEVE highlight FROM german WHERE CONFIDENCE >= 0.6
    RETRIEVE fly_out FROM ALL WHERE ROLE driver = HAKKINEN

Grammar (case-insensitive keywords, identifiers/labels case-preserved)::

    query  := RETRIEVE kind [FROM video|ALL] [WHERE cond (AND cond)*]
    cond   := ROLE name = label
            | DRIVER = label                  -- sugar for ROLE driver
            | POSITION label = int
            | CONFIDENCE >= float
            | LAP = int
            | relation kind [WITH ROLE name = label]
    relation := INTERSECTS | WITHIN | BEFORE | AFTER | DURING | CONTAINS
              | MEETS | OVERLAPS | STARTS | FINISHES | EQUALS

The executor resolves queries against a :class:`~repro.cobra.metadata
.MetadataStore`; temporal conditions join against other event sets through
the Allen relations of :mod:`repro.rules.temporal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import re
from typing import Any

from repro.cobra.metadata import MetadataStore
from repro.errors import QuerySyntaxError, UnknownConceptError
from repro.rules.temporal import ALLEN_RELATIONS, holds

__all__ = ["Condition", "CoqlQuery", "parse_coql", "QueryExecutor"]

_RELATIONS = tuple(r.upper() for r in ALLEN_RELATIONS) + ("INTERSECTS", "WITHIN")


@dataclass(frozen=True)
class Condition:
    """One WHERE conjunct.

    kind is one of "role", "position", "confidence", "lap", "temporal".
    """

    kind: str
    params: tuple[tuple[str, Any], ...]

    @staticmethod
    def of(kind: str, **params: Any) -> "Condition":
        return Condition(kind, tuple(sorted(params.items())))

    def get(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)


@dataclass
class CoqlQuery:
    """A parsed COQL query."""

    kind: str
    video: str | None = None  # None = ALL
    conditions: list[Condition] = field(default_factory=list)


def _tokenize(text: str) -> list[str]:
    tokens = re.findall(r'"[^"]*"|>=|=|[A-Za-z_][A-Za-z_0-9]*|\d+\.\d+|\d+', text)
    if not tokens:
        raise QuerySyntaxError("empty query")
    return tokens


def parse_coql(text: str) -> CoqlQuery:
    """Parse COQL text into a :class:`CoqlQuery`."""
    tokens = _tokenize(text)
    pos = 0

    def peek() -> str | None:
        return tokens[pos] if pos < len(tokens) else None

    def take(expected: str | None = None) -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise QuerySyntaxError(f"unexpected end of query (wanted {expected})")
        token = tokens[pos]
        pos += 1
        if expected is not None and token.upper() != expected:
            raise QuerySyntaxError(f"expected {expected}, found {token!r}")
        return token

    def label(token: str) -> str:
        return token[1:-1] if token.startswith('"') else token

    take("RETRIEVE")
    query = CoqlQuery(kind=take().lower())
    if peek() is not None and peek().upper() == "FROM":
        take()
        video = take()
        query.video = None if video.upper() == "ALL" else video
    if peek() is None:
        return query
    take("WHERE")
    while True:
        token = take().upper()
        if token == "ROLE":
            role = take().lower()
            take("=")
            query.conditions.append(
                Condition.of("role", role=role, label=label(take()).upper())
            )
        elif token == "DRIVER":
            take("=")
            query.conditions.append(
                Condition.of("role", role="driver", label=label(take()).upper())
            )
        elif token == "POSITION":
            driver = label(take()).upper()
            take("=")
            query.conditions.append(
                Condition.of("position", label=driver, position=int(take()))
            )
        elif token == "CONFIDENCE":
            take(">=")
            query.conditions.append(
                Condition.of("confidence", minimum=float(take()))
            )
        elif token == "LAP":
            take("=")
            query.conditions.append(Condition.of("lap", lap=int(take())))
        elif token in _RELATIONS:
            other = take().lower()
            role = None
            role_label = None
            if peek() is not None and peek().upper() == "WITH":
                take()
                take("ROLE")
                role = take().lower()
                take("=")
                role_label = label(take()).upper()
            query.conditions.append(
                Condition.of(
                    "temporal",
                    relation=token.lower(),
                    other=other,
                    role=role,
                    label=role_label,
                )
            )
        else:
            raise QuerySyntaxError(f"unknown condition starting with {token!r}")
        if peek() is None:
            break
        take("AND")
    return query


class QueryExecutor:
    """Resolves parsed COQL queries against the metadata store."""

    def __init__(self, metadata: MetadataStore):
        self._metadata = metadata

    def execute(self, query: CoqlQuery) -> list[dict[str, Any]]:
        """Return matching event records (dicts with ``interval`` etc.)."""
        candidates = self._metadata.events(video_id=query.video, kind=query.kind)
        if not candidates and not self._kind_known(query.kind):
            raise UnknownConceptError(
                f"no events of kind {query.kind!r} in any video — is the "
                f"concept extracted or defined?"
            )
        for condition in query.conditions:
            candidates = self._apply(condition, candidates, query)
        return candidates

    def _kind_known(self, kind: str) -> bool:
        return any(True for _ in self._metadata.events(kind=kind))

    # ------------------------------------------------------------------
    def _apply(
        self,
        condition: Condition,
        candidates: list[dict[str, Any]],
        query: CoqlQuery,
    ) -> list[dict[str, Any]]:
        if condition.kind == "role":
            role = condition.get("role")
            wanted = condition.get("label")
            return [
                r
                for r in candidates
                if self._role_label(r, role) == wanted
            ]
        if condition.kind == "position":
            wanted = condition.get("label")
            position = condition.get("position")
            return [
                r
                for r in candidates
                if self._role_label(r, f"p{position}") == wanted
            ]
        if condition.kind == "confidence":
            minimum = condition.get("minimum")
            return [r for r in candidates if r["confidence"] >= minimum]
        if condition.kind == "lap":
            lap = condition.get("lap")
            return [r for r in candidates if r["roles"].get("lap") == str(lap)]
        if condition.kind == "temporal":
            return self._temporal(condition, candidates, query)
        raise QuerySyntaxError(f"unknown condition kind {condition.kind!r}")

    def _role_label(self, record: dict[str, Any], role: str) -> str | None:
        object_id = record["roles"].get(role)
        if object_id is None:
            return None
        matches = self._metadata.objects(video_id=record["video_id"])
        for video_object in matches:
            if video_object["object_id"] == object_id:
                return video_object["label"]
        return object_id  # roles may store bare labels

    def _temporal(
        self,
        condition: Condition,
        candidates: list[dict[str, Any]],
        query: CoqlQuery,
    ) -> list[dict[str, Any]]:
        relation = condition.get("relation")
        other_kind = condition.get("other")
        role = condition.get("role")
        role_label = condition.get("label")
        out = []
        for record in candidates:
            others = self._metadata.events(
                video_id=record["video_id"], kind=other_kind
            )
            if role is not None:
                others = [
                    o for o in others if self._role_label(o, role) == role_label
                ]
            if any(
                holds(relation, record["interval"], o["interval"]) for o in others
            ):
                out.append(record)
        return out
