"""The Cobra VDBMS facade — the three-level architecture in one object.

Conceptual level: COQL parsing + the query preprocessor (dynamic
extraction). Logical level: the Moa extension registry holding the four
extensions. Physical level: the Monet kernel with the BAT-backed metadata
store and the extensions' MEL modules.
"""

from __future__ import annotations

from contextlib import nullcontext as _null_scope
from dataclasses import dataclass, field
from typing import Any

from repro.cobra.catalog import DomainKnowledge, KnowledgeCatalog
from repro.cobra.compound import CompoundEventDef
from repro.cobra.extensions import (
    DbnExtension,
    RuleExtension,
    VideoProcessingExtension,
)
from repro.cobra.metadata import MetadataStore
from repro.cobra.model import VideoDocument
from repro.cobra.preprocessor import PreprocessReport, QueryPreprocessor
from repro.cobra.query import CoqlQuery, QueryExecutor, parse_coql
from repro.errors import CobraError, UnknownConceptError
from repro.faults import resolve_injector
from repro.hmm.parallel import HmmExtension
from repro.moa.extension import ExtensionRegistry
from repro.moa.rewrite import MoaCompiler
from repro.monet.kernel import MonetKernel
from repro.resilience import (
    CancellationToken,
    CircuitBreaker,
    Deadline,
    FailureReport,
    ResiliencePolicy,
    cancel_scope,
)

__all__ = ["QueryResult", "DrainedFailures", "CobraVDBMS"]


@dataclass
class DrainedFailures:
    """Failure reports plus the circuit-breaker panel, drained together.

    ``breakers`` maps each extraction method that has a breaker to its
    current state (``closed`` / ``open`` / ``half-open``) — the operator
    view needed to decide which extractors to :meth:`CobraVDBMS
    .reset_breaker`.
    """

    failures: list[FailureReport] = field(default_factory=list)
    breakers: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.failures)

    def __iter__(self):
        return iter(self.failures)

    @property
    def open_breakers(self) -> list[str]:
        return [name for name, state in self.breakers.items() if state != "closed"]


@dataclass
class QueryResult:
    """Records answering a query plus the preprocessing trace."""

    query: CoqlQuery
    records: list[dict[str, Any]]
    report: PreprocessReport
    #: Faults handled while answering (retries, drops, rollbacks) across
    #: all three levels — kernel command failures included.
    failures: list[FailureReport] = field(default_factory=list)
    #: Shard coverage of the answer when it came from a sharded fleet
    #: (a :class:`repro.sharding.ShardCoverageReport`); None on a
    #: single-kernel VDBMS, where the answer always covers everything.
    coverage: Any = None

    def __len__(self) -> int:
        return len(self.records)

    def intervals(self) -> list:
        return [r["interval"] for r in self.records]

    @property
    def degraded(self) -> bool:
        """True when the answer was computed from less than was asked."""
        if self.coverage is not None and not self.coverage.complete:
            return True
        return self.report.degraded

    def degradations(self) -> list[str]:
        """Human-readable list of everything dropped or recovered from."""
        notes = [
            f"dropped kind {kind!r}: {reason}" for kind, reason in self.report.dropped
        ]
        if self.coverage is not None and not self.coverage.complete:
            notes.append(f"partial shard coverage: {self.coverage.describe()}")
        notes.extend(str(f) for f in self.failures)
        return notes


class CobraVDBMS:
    """The prototype video DBMS (Fig. 2).

    Usage::

        db = CobraVDBMS()
        db.register_domain(knowledge)           # models + methods
        db.register_document(document, "formula1")
        result = db.query('RETRIEVE fly_out WHERE ROLE driver = HAKKINEN')
    """

    def __init__(
        self,
        threads: int = 4,
        check: str = "error",
        faults: Any = None,
        resilience: ResiliencePolicy | None = None,
        store: Any = None,
    ):
        self.faults = resolve_injector(faults)
        self.resilience = resilience or ResiliencePolicy()
        #: ``store`` (a directory path or :class:`repro.durability
        #: .DurableStore`) makes the catalog durable: registered documents
        #: and preprocessor extraction results survive a restart, and the
        #: startup :class:`RecoveryReport` lands on :attr:`recovery`.
        self.kernel = MonetKernel(
            threads=threads,
            check=check,
            faults=self.faults,
            resilience=self.resilience,
            store=store,
        )
        self.recovery = self.kernel.recovery
        self.metadata = MetadataStore(self.kernel)
        self.extensions = ExtensionRegistry(faults=self.faults)
        self.compiler = MoaCompiler(
            self.kernel, extensions=self.extensions, check=check
        )
        self.catalog = KnowledgeCatalog()
        self._domain_of_video: dict[str, str] = {}
        self._compound_defs: dict[str, CompoundEventDef] = {}
        #: Per-extraction-method circuit breakers, persisted across queries
        #: so a flapping extractor's failure history is not forgotten.
        self._breakers: dict[str, CircuitBreaker] = {}

        # the four extensions of §3
        self.videoproc = VideoProcessingExtension()
        self.hmm = HmmExtension(self.kernel, n_servers=6)
        self.dbn = DbnExtension(self.kernel, check=check)
        self.rules = RuleExtension()
        for extension in (self.videoproc, self.hmm, self.dbn, self.rules):
            self.extensions.register(extension)

    @property
    def diagnostics(self) -> list[Any]:
        """Static-analysis findings collected across all three levels."""
        return (
            self.kernel.diagnostics
            + list(self.compiler.diagnostics)
            + list(self.dbn.diagnostics)
        )

    # ------------------------------------------------------------------
    # domains & documents
    # ------------------------------------------------------------------
    def register_domain(self, knowledge: DomainKnowledge) -> None:
        self.catalog.add_domain(knowledge)

    def register_document(
        self,
        document: VideoDocument,
        domain: str,
        token: CancellationToken | None = None,
    ) -> None:
        """Register a video under a domain; its metadata becomes queryable.

        Runs in a kernel transaction: the document's event and object rows
        land in the metadata BATs atomically, and on a durable kernel the
        whole registration is one WAL commit. ``token`` (from the service's
        batch lane) makes the registration cancellable; cancellation rolls
        the transaction back, so no partial document is ever visible.
        """
        self.catalog.domain(domain)  # raises if unknown
        with cancel_scope(token) if token is not None else _null_scope():
            with self.kernel.transaction():
                self.metadata.register_document(document)
        self._domain_of_video[document.raw.video_id] = domain

    def document(self, video_id: str) -> VideoDocument:
        return self.metadata.document(video_id)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self, coql: str | CoqlQuery, token: CancellationToken | None = None
    ) -> QueryResult:
        """Parse, preprocess (extracting missing metadata), and execute.

        The whole round runs under the policy's query budget; faults the
        layers recovered from (kernel retries, dropped extraction kinds,
        rollbacks) are gathered on ``QueryResult.failures``.

        ``token`` (from the service layer) rides as the deadline *and* as
        the ambient cancellation token, so every checkpoint down to MIL
        statement dispatch observes both expiry and explicit cancellation.
        """
        parsed = parse_coql(coql) if isinstance(coql, str) else coql
        self.kernel.drain_failures()  # don't attribute stale faults here
        deadline = token if token is not None else self.resilience.query_deadline()
        with cancel_scope(token) if token is not None else _null_scope():
            report = self._preprocess(parsed, deadline)
            try:
                records = QueryExecutor(self.metadata).execute(parsed)
            except UnknownConceptError:
                # A kind whose extraction was dropped under the degrade
                # policy may be entirely absent from the store: answer
                # empty rather than failing a query we deliberately kept
                # alive.
                if not any(kind == parsed.kind for kind, _ in report.dropped):
                    raise
                records = []
        failures = list(report.failures) + self.kernel.drain_failures()
        return QueryResult(parsed, records, report, failures=failures)

    def _preprocess(
        self, query: CoqlQuery, deadline: Deadline | None = None
    ) -> PreprocessReport:
        if query.video is not None:
            domains = [self._domain_of(query.video)]
        else:
            domains = sorted(set(self._domain_of_video.values()))
        report: PreprocessReport | None = None
        for domain in domains:
            preprocessor = QueryPreprocessor(
                self.metadata,
                self.catalog.domain(domain),
                kernel=self.kernel,
                resilience=self.resilience,
                faults=self.faults,
                breakers=self._breakers,
            )
            report = preprocessor.prepare(query, deadline)
        if report is None:
            raise CobraError("no videos registered")
        return report

    def _domain_of(self, video_id: str) -> str:
        try:
            return self._domain_of_video[video_id]
        except KeyError:
            raise CobraError(f"unknown video {video_id!r}") from None

    # ------------------------------------------------------------------
    # operations: failures, breakers, durability
    # ------------------------------------------------------------------
    def drain_failures(self) -> DrainedFailures:
        """Drain accumulated failure reports, with the breaker panel."""
        return DrainedFailures(
            failures=self.kernel.drain_failures(),
            breakers=self.breaker_states(),
        )

    def breaker_states(self) -> dict[str, str]:
        """Current state of every per-extraction-method circuit breaker."""
        return {
            name: breaker.state
            for name, breaker in sorted(self._breakers.items())
        }

    def reset_breaker(self, method: str) -> None:
        """Operator re-arm of one extraction method's circuit breaker."""
        try:
            self._breakers[method].reset()
        except KeyError:
            raise CobraError(
                f"no circuit breaker for extraction method {method!r}"
            ) from None

    def checkpoint(self) -> int:
        """Fold the durable kernel's WAL into a fresh checkpoint."""
        return self.kernel.checkpoint()

    def close(self) -> None:
        """Release the durable store (no-op for an in-memory kernel)."""
        self.kernel.close()

    # ------------------------------------------------------------------
    # compound events (§5.6)
    # ------------------------------------------------------------------
    def define_compound_event(self, definition: CompoundEventDef) -> None:
        if definition.name in self._compound_defs:
            raise CobraError(
                f"compound event {definition.name!r} already defined"
            )
        self._compound_defs[definition.name] = definition

    def materialize_compound_event(self, name: str, video_id: str) -> int:
        """Evaluate a compound definition and store the found events.

        Returns the number of new events — "adding a newly defined event
        ... will speed up the future retrieval of this event".
        """
        try:
            definition = self._compound_defs[name]
        except KeyError:
            raise CobraError(f"no compound event named {name!r}") from None
        # component kinds may themselves need dynamic extraction first
        for component in definition.components:
            self._preprocess(CoqlQuery(kind=component.kind, video=video_id))
        return len(definition.materialize(self.metadata, video_id))
