"""The query preprocessor (§2).

"Dynamic feature/semantic extraction is facilitated by a query
pre-processor. It checks the availability of required metadata needed to
resolve the query. If metadata is not available it invokes feature/semantic
extraction engines to extract it dynamically. ... Depending on the
(un)availability of metadata ... as well as the cost and quality models of
the method, it makes a decision which method and feature set to use."

Extraction is the least reliable stage of the pipeline — it runs arbitrary
detector code against broadcast material — so every dynamic extraction is
executed under the resilience policy: retried on transient faults, guarded
by a per-method circuit breaker, and (when a kernel is attached) persisted
inside a catalog transaction so a failure cannot leave half-written event
BATs behind. In ``degrade`` mode a kind whose extraction keeps failing is
dropped from the query instead of aborting it, and the drop is recorded on
the :class:`PreprocessReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cobra.catalog import DomainKnowledge, ExtractionMethod
from repro.cobra.metadata import MetadataStore
from repro.cobra.query import CoqlQuery
from repro.errors import (
    ExtractionError,
    RequestCancelled,
    TimeoutExpired,
    TransientError,
    TransientExtractionError,
    UnknownConceptError,
)
from repro.faults import resolve_injector
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FailureReport,
    ResiliencePolicy,
    cancel_checkpoint,
)

__all__ = [
    "PreprocessReport",
    "QueryPreprocessor",
    "ScatterPlan",
    "choose_scatter_plan",
    "eligible_for_compiled_execution",
]


def eligible_for_compiled_execution(plan: Any) -> bool:
    """Whether a compiled Moa plan may bypass the tree-walking interpreter.

    The future vectorized/compiled MIL executor (ROADMAP item 1) is gated
    on translation validation: a plan qualifies only when it carries an
    EQ001 :class:`~repro.check.equivcheck.EquivalenceCertificate` proving
    the emitted MIL denotes the Moa expression it replaced. Plans compiled
    with ``check="off"`` or containing constructs outside the abstract BAT
    algebra (EQ003) keep the interpreter fallback.
    """
    certificate = getattr(plan, "equivalence", None)
    if certificate is None:
        return False
    payload = certificate.to_dict()
    return payload.get("artifact") == "repro.equivcert/1" and bool(
        payload.get("normal_form")
    )


@dataclass(frozen=True)
class ScatterPlan:
    """The preprocessor's cost-model verdict for one sharded gather.

    ``mode`` is ``"shard-local"`` (one shard owns everything the query
    touches), ``"fan-out"`` (scatter concurrently: longest shard plus the
    per-branch overhead beats visiting the shards in turn), or
    ``"sequential"`` (the fan-out overhead exceeds its concurrency win —
    the exact situation :mod:`repro.check.costcheck` flags as PERF006, so
    the planner refuses to scatter it).
    """

    mode: str
    shards: tuple[str, ...]
    fan_out_cost: float
    sequential_cost: float

    @property
    def scattered(self) -> bool:
        return self.mode == "fan-out"


def choose_scatter_plan(
    query: CoqlQuery, shard_costs: "dict[str, float]"
) -> ScatterPlan:
    """Choose between shard-local, fan-out, and sequential gather plans.

    This is the sharded analogue of :meth:`QueryPreprocessor
    ._choose_method`: a document-aware cost decision instead of a static
    rule. ``shard_costs`` maps each candidate shard to the estimated rows
    it would scan for this query (the fleet derives it from the feature
    and event rows of the documents placed there). The comparison reuses
    :data:`repro.check.costcheck.BRANCH_OVERHEAD` — the same constant the
    PERF006 lint charges per ``PARALLEL`` branch — so a gather the static
    pass would flag as fan-out-costlier-than-shard-local is exactly the
    gather this function executes sequentially instead. That is what makes
    PERF006 actionable: the advisory lint and the runtime planner apply
    one cost model.
    """
    from repro.check.costcheck import BRANCH_OVERHEAD

    targets = dict(sorted(shard_costs.items()))
    names = tuple(targets)
    sequential = float(sum(targets.values()))
    fan_out = float(max(targets.values(), default=0.0)) + BRANCH_OVERHEAD * len(
        targets
    )
    if query.video is not None or len(targets) <= 1:
        return ScatterPlan("shard-local", names, fan_out, sequential)
    if fan_out >= sequential:
        return ScatterPlan("sequential", names, fan_out, sequential)
    return ScatterPlan("fan-out", names, fan_out, sequential)


@dataclass
class PreprocessReport:
    """What the preprocessor did to make a query answerable."""

    required_kinds: list[str]
    available: list[str] = field(default_factory=list)
    extracted: list[tuple[str, str]] = field(default_factory=list)  # (kind, method)
    #: Event kinds the query gave up on, as ``(kind, reason)`` pairs.
    dropped: list[tuple[str, str]] = field(default_factory=list)
    #: Structured records of every fault handled along the way.
    failures: list[FailureReport] = field(default_factory=list)

    @property
    def ran_extraction(self) -> bool:
        return bool(self.extracted)

    @property
    def degraded(self) -> bool:
        """True when the answer comes from less metadata than requested."""
        return bool(self.dropped)


class QueryPreprocessor:
    """Metadata-availability analysis + dynamic extraction dispatch.

    ``breakers`` may be shared by the owning VDBMS so a method's failure
    history survives across queries; ``kernel`` (when given) provides the
    transactional catalog used to roll back failed extractions.
    """

    def __init__(
        self,
        metadata: MetadataStore,
        knowledge: DomainKnowledge,
        *,
        kernel: Any = None,
        resilience: ResiliencePolicy | None = None,
        faults: Any = None,
        breakers: dict[str, CircuitBreaker] | None = None,
    ):
        self._metadata = metadata
        self._knowledge = knowledge
        self._kernel = kernel
        self._resilience = resilience or ResiliencePolicy()
        self._faults = resolve_injector(faults)
        self._breakers = breakers if breakers is not None else {}

    def required_kinds(self, query: CoqlQuery) -> list[str]:
        """Event kinds the query touches (target + temporal joins)."""
        kinds = [query.kind]
        for condition in query.conditions:
            if condition.kind == "temporal":
                other = condition.get("other")
                if other not in kinds:
                    kinds.append(other)
        return kinds

    def prepare(
        self, query: CoqlQuery, deadline: Deadline | None = None
    ) -> PreprocessReport:
        """Ensure all metadata a query needs exists, extracting on demand.

        For every required kind and every target video: if events of the
        kind are absent, pick the best applicable extraction method (the
        cheapest estimated plan within the top quality band — see
        :meth:`_choose_method`) and run it, persisting the produced
        events. Under a
        ``degrade`` policy a kind whose extraction fails is dropped (and
        reported) instead of aborting the whole query.
        """
        report = PreprocessReport(self.required_kinds(query))
        videos = (
            [query.video] if query.video is not None else self._metadata.video_ids()
        )
        for kind in report.required_kinds:
            for video_id in videos:
                cancel_checkpoint(f"preprocess:{kind}")
                if deadline is not None:
                    deadline.check(f"preprocess:{kind}")
                if self._metadata.has_events(video_id, kind):
                    if kind not in report.available:
                        report.available.append(kind)
                    continue
                method = self._choose_method(kind, video_id)
                if method is None:
                    raise UnknownConceptError(
                        f"no stored events of kind {kind!r} for video "
                        f"{video_id!r} and no extraction method can produce it"
                    )
                try:
                    self._run_method(method, video_id, report, deadline)
                except Exception as exc:  # noqa: BLE001 - policy decides
                    if not self._resilience.degrade:
                        raise
                    reason = f"{type(exc).__name__}: {exc}"
                    report.dropped.append((kind, reason))
                    report.failures.append(
                        FailureReport.from_exception(
                            f"extractor:{method.name}",
                            exc,
                            action="dropped",
                            detail=f"kind {kind!r} on video {video_id!r}",
                        )
                    )
                else:
                    report.extracted.append((kind, method.name))
        return report

    # ------------------------------------------------------------------
    def _choose_method(self, kind: str, video_id: str) -> ExtractionMethod | None:
        """Cost-model plan choice over the applicable extraction methods.

        The catalog's static ordering (quality, then declared unit cost)
        ignores the document: a method with a low unit cost can still be
        the expensive plan when its prerequisite feature tracks are long.
        Selection therefore keeps the methods within
        :data:`repro.check.costcheck.QUALITY_TOLERANCE` of the best
        applicable quality and picks the lowest *estimated* cost —
        ``unit cost x feature rows actually scanned on this document``
        (:func:`repro.check.costcheck.estimate_extraction_cost`) — with
        quality, then name, as deterministic tie-breaks.
        """
        from repro.check.costcheck import (
            QUALITY_TOLERANCE,
            estimate_extraction_cost,
        )

        document = self._metadata.document(video_id)
        applicable = [
            method
            for method in self._knowledge.methods_for(kind)
            if all(document.has_feature(f) for f in method.requires_features)
        ]
        if not applicable:
            return None
        best_quality = max(method.quality for method in applicable)
        band = [
            method
            for method in applicable
            if method.quality >= best_quality - QUALITY_TOLERANCE
        ]
        return min(
            band,
            key=lambda method: (
                estimate_extraction_cost(method, document),
                -method.quality,
                method.name,
            ),
        )

    def _breaker_for(self, method: ExtractionMethod) -> CircuitBreaker:
        breaker = self._breakers.get(method.name)
        if breaker is None:
            breaker = self._resilience.new_breaker(f"extractor:{method.name}")
            self._breakers[method.name] = breaker
        return breaker

    def _run_method(
        self,
        method: ExtractionMethod,
        video_id: str,
        report: PreprocessReport,
        deadline: Deadline | None = None,
    ) -> None:
        site = f"extractor:{method.name}"
        breaker = self._breaker_for(method)

        def attempt() -> list:
            breaker.allow()
            try:
                self._faults.on_call(site)
                cancel_checkpoint(site)
                events = method.extract(document)
            except (TimeoutExpired, RequestCancelled):
                # Not the extractor's fault: the caller's budget expired or
                # the request was cancelled. Give the half-open probe slot
                # back (no outcome to record) and propagate.
                breaker.release_probe()
                raise
            except TransientError as exc:
                breaker.record_failure()
                raise TransientExtractionError(
                    f"extraction method {method.name!r} hit a transient fault "
                    f"on {video_id!r}: {exc}"
                ) from exc
            except Exception as exc:  # noqa: BLE001 - boundary translation
                breaker.record_failure()
                raise ExtractionError(
                    f"extraction method {method.name!r} failed on {video_id!r}: {exc}"
                ) from exc
            breaker.record_success()
            return list(events)

        def on_retry(attempts: int, exc: BaseException) -> None:
            report.failures.append(
                FailureReport.from_exception(
                    site, exc, action="retried", attempts=attempts
                )
            )

        document = self._metadata.document(video_id)
        events = self._resilience.retry.call(
            attempt, site=site, deadline=deadline, on_retry=on_retry
        )
        self._store_events(video_id, document, events)

    def _store_events(self, video_id: str, document: Any, events: list) -> None:
        """Persist extracted events; atomic when a kernel is attached.

        The kernel transaction rolls back the event BATs; the in-memory
        ``document.events`` additions are undone alongside so both views of
        the metadata stay consistent after a failed run.
        """
        added: list[str] = []
        try:
            if self._kernel is not None:
                with self._kernel.transaction():
                    self._persist(video_id, document, events, added)
            else:
                self._persist(video_id, document, events, added)
        except Exception:
            for event_id in added:
                document.events.pop(event_id, None)
            raise

    def _persist(
        self, video_id: str, document: Any, events: list, added: list[str]
    ) -> None:
        for event in events:
            if event.event_id not in document.events:
                added.append(event.event_id)
            document.events[event.event_id] = event
            self._metadata.store_event(video_id, event)
