"""The query preprocessor (§2).

"Dynamic feature/semantic extraction is facilitated by a query
pre-processor. It checks the availability of required metadata needed to
resolve the query. If metadata is not available it invokes feature/semantic
extraction engines to extract it dynamically. ... Depending on the
(un)availability of metadata ... as well as the cost and quality models of
the method, it makes a decision which method and feature set to use."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cobra.catalog import DomainKnowledge, ExtractionMethod
from repro.cobra.metadata import MetadataStore
from repro.cobra.query import CoqlQuery
from repro.errors import ExtractionError, UnknownConceptError

__all__ = ["PreprocessReport", "QueryPreprocessor"]


@dataclass
class PreprocessReport:
    """What the preprocessor did to make a query answerable."""

    required_kinds: list[str]
    available: list[str] = field(default_factory=list)
    extracted: list[tuple[str, str]] = field(default_factory=list)  # (kind, method)

    @property
    def ran_extraction(self) -> bool:
        return bool(self.extracted)


class QueryPreprocessor:
    """Metadata-availability analysis + dynamic extraction dispatch."""

    def __init__(self, metadata: MetadataStore, knowledge: DomainKnowledge):
        self._metadata = metadata
        self._knowledge = knowledge

    def required_kinds(self, query: CoqlQuery) -> list[str]:
        """Event kinds the query touches (target + temporal joins)."""
        kinds = [query.kind]
        for condition in query.conditions:
            if condition.kind == "temporal":
                other = condition.get("other")
                if other not in kinds:
                    kinds.append(other)
        return kinds

    def prepare(self, query: CoqlQuery) -> PreprocessReport:
        """Ensure all metadata a query needs exists, extracting on demand.

        For every required kind and every target video: if events of the
        kind are absent, pick the best applicable extraction method
        (highest quality, then lowest cost, feature prerequisites
        satisfied) and run it, persisting the produced events.
        """
        report = PreprocessReport(self.required_kinds(query))
        videos = (
            [query.video] if query.video is not None else self._metadata.video_ids()
        )
        for kind in report.required_kinds:
            for video_id in videos:
                if self._metadata.has_events(video_id, kind):
                    if kind not in report.available:
                        report.available.append(kind)
                    continue
                method = self._choose_method(kind, video_id)
                if method is None:
                    raise UnknownConceptError(
                        f"no stored events of kind {kind!r} for video "
                        f"{video_id!r} and no extraction method can produce it"
                    )
                self._run_method(method, video_id)
                report.extracted.append((kind, method.name))
        return report

    # ------------------------------------------------------------------
    def _choose_method(self, kind: str, video_id: str) -> ExtractionMethod | None:
        document = self._metadata.document(video_id)
        for method in self._knowledge.methods_for(kind):
            if all(document.has_feature(f) for f in method.requires_features):
                return method
        return None

    def _run_method(self, method: ExtractionMethod, video_id: str) -> None:
        document = self._metadata.document(video_id)
        try:
            events = method.extract(document)
        except Exception as exc:  # noqa: BLE001 - boundary translation
            raise ExtractionError(
                f"extraction method {method.name!r} failed on {video_id!r}: {exc}"
            ) from exc
        for event in events:
            document.events[event.event_id] = event
            self._metadata.store_event(video_id, event)
