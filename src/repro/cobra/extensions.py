"""The four Cobra extensions as Moa extensions (§3).

"In the current implementation we have four extensions: Video-processing /
feature-extraction, HMM, DBN, and rule-based extension." The HMM extension
lives in :mod:`repro.hmm.parallel`; this module provides the other three
plus the physical-level DBN module that mirrors Fig. 5 (a Moa operation
backed by a MIL procedure backed by an engine call).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.dbn.compiled import CompiledDbn
from repro.dbn.evidence import EvidenceSequence
from repro.dbn.learn import dbn_em
from repro.dbn.template import DbnTemplate
from repro.errors import CobraError
from repro.moa.extension import MoaExtension
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.monet.module import MonetModule, command
from repro.rules.engine import Fact, Rule, RuleEngine
from repro.video.frames import FrameStream
from repro.video.shots import ShotDetector

__all__ = [
    "VideoProcessingExtension",
    "DbnExtension",
    "DbnModule",
    "RuleExtension",
    "DBN_INFER_PROC",
]

#: The Fig. 5b MIL procedure: the logical-level DBN operation is rewritten
#: into this PROC, which calls the engine through the ``dbnInfer`` module
#: command (standing in for Monet's TCP/IP call to the Matlab server).
DBN_INFER_PROC = """
PROC dbnInferP(str model, str node, BAT[void,int] obs) : any := {
  VAR ret := dbnInfer(model, node, obs);
  RETURN ret;
}
"""


class DbnModule(MonetModule):
    """Physical-level DBN commands (the paper's Matlab-server stand-in)."""

    name = "dbn"

    def __init__(self) -> None:
        self._models: dict[str, CompiledDbn] = {}

    def register_model(self, name: str, template: DbnTemplate) -> None:
        self._models[name] = CompiledDbn(template)

    def model(self, name: str) -> CompiledDbn:
        try:
            return self._models[name]
        except KeyError:
            raise CobraError(f"no DBN model named {name!r}") from None

    @command(
        args=("str", "str", "BAT[void,int]"),
        returns="BAT[void,dbl]",
        returns_range=(0.0, 1.0),
    )
    def dbnInfer(self, model_name: str, node: str, obs: BAT) -> BAT:
        """Filter a single-evidence-node model over a symbol BAT.

        The general multi-node path goes through the Python extension API;
        this MIL command covers the Fig. 5 demonstration where one fused
        observation stream is shipped to the engine.
        """
        engine = self.model(model_name)
        observed = engine.template.observed_nodes()
        if len(observed) != 1:
            raise CobraError(
                f"dbnInfer needs a single-evidence model, {model_name!r} "
                f"has {len(observed)}"
            )
        values = np.asarray(obs.tails(), dtype=np.int64)
        evidence = EvidenceSequence(engine.template, hard={observed[0]: values})
        posterior = engine.posterior_series(evidence, node)[:, 1]
        out = BAT("void", "dbl")
        out.insert_bulk(None, [float(p) for p in posterior])
        return out


class DbnExtension(MoaExtension):
    """Logical-level DBN extension: train / infer / loglik operators."""

    name = "dbn"

    def __init__(self, kernel: MonetKernel, check: str = "error"):
        self._module = DbnModule()
        kernel.load_module(self._module)
        kernel.run(DBN_INFER_PROC)
        self._kernel = kernel
        self._templates: dict[str, DbnTemplate] = {}
        self._check = check
        #: Model-lint diagnostics collected across registrations.
        self.diagnostics: list[Any] = []
        #: Per-model inference cost estimates recorded at registration.
        self._model_costs: dict[str, float] = {}

    def monet_module(self) -> MonetModule:
        return self._module

    def operators(self) -> dict[str, Any]:
        return {
            "register": self.register,
            "train": self.train,
            "infer": self.infer,
            "log_likelihood": self.log_likelihood,
        }

    # ------------------------------------------------------------------
    def register(self, name: str, template: DbnTemplate) -> None:
        if self._check != "off":
            from repro.check.modelcheck import check_template
            from repro.errors import ModelCheckError

            report = check_template(template, source=name)
            self.diagnostics.extend(report)
            if self._check in ("error", "sanitize"):
                report.raise_if_errors(f"DBN model {name!r}", ModelCheckError)
        template.validate()
        self._templates[name] = template
        self._module.register_model(name, template)
        # record the static cost estimate so plan choice can weigh models
        from repro.check.costcheck import estimate_model_cost

        self._model_costs[name] = estimate_model_cost(template)

    def model_cost(self, name: str) -> float:
        """Per-step inference cost estimate recorded at registration."""
        try:
            return self._model_costs[name]
        except KeyError:
            raise CobraError(f"no DBN template named {name!r}") from None

    def template(self, name: str) -> DbnTemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise CobraError(f"no DBN template named {name!r}") from None

    def train(
        self,
        name: str,
        sequences: Sequence[EvidenceSequence],
        max_iterations: int = 10,
        prior_strength: float = 2.0,
    ) -> DbnTemplate:
        """EM-train a registered template in place (re-registers it)."""
        result = dbn_em(
            self.template(name),
            sequences,
            max_iterations=max_iterations,
            prior_strength=prior_strength,
        )
        self.register(name, result.template)
        return result.template

    def infer(
        self, name: str, evidence: EvidenceSequence, node: str
    ) -> np.ndarray:
        """P(node = 1 | evidence) per step (filtered)."""
        engine = self._module.model(name)
        return engine.posterior_series(evidence, node)[:, 1]

    def log_likelihood(self, name: str, evidence: EvidenceSequence) -> float:
        return self._module.model(name).log_likelihood(evidence)


class VideoProcessingExtension(MoaExtension):
    """Video-processing / feature-extraction extension.

    Wraps the substrate extractors so the executor and the preprocessor
    invoke them uniformly.
    """

    name = "videoproc"

    def operators(self) -> dict[str, Any]:
        from repro.audio.excitement import extract_excitement_features
        from repro.fusion.features import extract_feature_set
        from repro.video.features import extract_visual_features

        return {
            "features": extract_feature_set,
            "visual_features": extract_visual_features,
            "audio_features": extract_excitement_features,
            "shots": self.shots,
        }

    def shots(self, stream: FrameStream) -> list:
        return ShotDetector().shots(stream)


class RuleExtension(MoaExtension):
    """Rule-based extension: named rule sets run over fact collections."""

    name = "rules"

    def __init__(self) -> None:
        self._rules: list[Rule] = []

    def operators(self) -> dict[str, Any]:
        return {"add_rule": self.add_rule, "run": self.run}

    def add_rule(self, rule: Rule) -> None:
        self._rules.append(rule)

    def run(self, facts: Sequence[Fact]) -> list[Fact]:
        """Run all registered rules to fixpoint over the given facts."""
        engine = RuleEngine()
        for fact in facts:
            engine.add_fact(fact)
        for rule in self._rules:
            engine.add_rule(rule)
        engine.run()
        return engine.facts()
