"""User-defined compound events (§5.6).

"A user can define new compound events by specifying different temporal
relationships among already defined events. He can also update meta-data
through the interface by adding a newly defined event, which will speed up
the future retrieval of this event."

A :class:`CompoundEventDef` names components (existing event kinds, with
optional role constraints) and pairwise Allen relations; evaluating it over
a video's metadata materializes new events which are stored back — the
"speed up future retrieval" path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cobra.metadata import MetadataStore
from repro.cobra.model import VideoEvent
from repro.errors import CobraError
from repro.rules.temporal import holds
from repro.synth.annotations import Interval

__all__ = ["Component", "TemporalConstraint", "CompoundEventDef"]


@dataclass(frozen=True)
class Component:
    """One part of a compound event."""

    alias: str
    kind: str
    role: str | None = None
    role_label: str | None = None


@dataclass(frozen=True)
class TemporalConstraint:
    """Allen relation between two components (by alias)."""

    left: str
    relation: str
    right: str


@dataclass
class CompoundEventDef:
    """A named compound event over existing event kinds."""

    name: str
    components: list[Component]
    constraints: list[TemporalConstraint] = field(default_factory=list)

    def __post_init__(self) -> None:
        aliases = [c.alias for c in self.components]
        if len(set(aliases)) != len(aliases):
            raise CobraError(f"duplicate component aliases in {self.name!r}")
        known = set(aliases)
        for constraint in self.constraints:
            if constraint.left not in known or constraint.right not in known:
                raise CobraError(
                    f"constraint references unknown alias in {self.name!r}"
                )

    # ------------------------------------------------------------------
    def evaluate(
        self, metadata: MetadataStore, video_id: str
    ) -> list[dict[str, Any]]:
        """All component combinations satisfying the constraints."""
        candidate_sets = []
        for component in self.components:
            events = metadata.events(video_id=video_id, kind=component.kind)
            if component.role is not None:
                events = [
                    e
                    for e in events
                    if _role_label(metadata, e, component.role)
                    == component.role_label
                ]
            candidate_sets.append(events)

        matches: list[dict[str, Any]] = []
        def backtrack(index: int, chosen: dict[str, dict[str, Any]]) -> None:
            if index == len(self.components):
                matches.append(dict(chosen))
                return
            component = self.components[index]
            for event in candidate_sets[index]:
                chosen[component.alias] = event
                if self._constraints_hold(chosen):
                    backtrack(index + 1, chosen)
                del chosen[component.alias]

        backtrack(0, {})
        return matches

    def _constraints_hold(self, chosen: dict[str, dict[str, Any]]) -> bool:
        for constraint in self.constraints:
            if constraint.left in chosen and constraint.right in chosen:
                if not holds(
                    constraint.relation,
                    chosen[constraint.left]["interval"],
                    chosen[constraint.right]["interval"],
                ):
                    return False
        return True

    def materialize(
        self, metadata: MetadataStore, video_id: str
    ) -> list[VideoEvent]:
        """Evaluate and store the compound events as new metadata."""
        document = metadata.document(video_id)
        out: list[VideoEvent] = []
        for match in self.evaluate(metadata, video_id):
            intervals = [record["interval"] for record in match.values()]
            span = Interval(
                min(i.start for i in intervals),
                max(i.end for i in intervals),
                self.name,
            )
            confidence = min(record["confidence"] for record in match.values())
            roles = {
                alias: record["event_id"] for alias, record in match.items()
            }
            event = document.new_event(
                self.name, span, confidence, roles, source="compound"
            )
            metadata.store_event(video_id, event)
            out.append(event)
        return out


def _role_label(metadata: MetadataStore, record: dict[str, Any], role: str) -> str | None:
    object_id = record["roles"].get(role)
    if object_id is None:
        return None
    for video_object in metadata.objects(video_id=record["video_id"]):
        if video_object["object_id"] == object_id:
            return video_object["label"]
    return object_id
