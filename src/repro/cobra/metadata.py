"""BAT-backed metadata store.

"The content abstractions, which are stored as metadata, are used to
organize, index and retrieve the video source. The metadata is populated
off-line most of the time, but can also be extracted on-line in the case of
dynamic feature/semantic extractions in the query time." (§2)

Events and objects are decomposed into aligned BAT groups on the Monet
kernel (fully decomposed storage), so the conceptual level can resolve
queries with kernel operators instead of walking Python objects.
"""

from __future__ import annotations

from typing import Any

from repro.cobra.model import VideoDocument, VideoEvent, VideoObject
from repro.errors import CobraError, MonetError
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.synth.annotations import Interval

__all__ = ["MetadataStore"]

_EVENT_SCHEMA = {
    "event_id": "str",
    "video_id": "str",
    "kind": "str",
    "start": "dbl",
    "end": "dbl",
    "confidence": "dbl",
    "source": "str",
}

_OBJECT_SCHEMA = {
    "object_id": "str",
    "video_id": "str",
    "category": "str",
    "label": "str",
}


class MetadataStore:
    """Persists Cobra layers into kernel BATs and answers lookups."""

    def __init__(self, kernel: MonetKernel):
        self._kernel = kernel
        self._event_bats = {
            attr: self._adopt(f"meta_event_{attr}", "void", tail)
            for attr, tail in _EVENT_SCHEMA.items()
        }
        self._object_bats = {
            attr: self._adopt(f"meta_object_{attr}", "void", tail)
            for attr, tail in _OBJECT_SCHEMA.items()
        }
        # event roles: (event oid -> role name) and (event oid -> object id)
        self._role_names = self._adopt("meta_role_name", "oid", "str")
        self._role_objects = self._adopt("meta_role_object", "oid", "str")
        self._documents: dict[str, VideoDocument] = {}

    def _adopt(self, name: str, head_type: str, tail_type: str) -> BAT:
        """Reuse a recovered catalog BAT when its types match (a kernel
        opened on a durable store already holds the metadata); otherwise
        persist a fresh empty one."""
        try:
            existing = self._kernel.bat(name)
        except MonetError:
            existing = None
        if existing is not None and (
            existing.head_type,
            existing.tail_type,
        ) == (head_type, tail_type):
            return existing
        return self._kernel.persist(name, BAT(head_type, tail_type))

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def register_document(self, document: VideoDocument) -> None:
        video_id = document.raw.video_id
        if video_id in self._documents:
            raise CobraError(f"video {video_id!r} already registered")
        self._documents[video_id] = document
        if self._has_rows_for(video_id):
            # the BATs were recovered from a durable store: re-registering
            # the document only restores the Python-side handle
            return
        for video_object in document.objects.values():
            self._store_object(video_id, video_object)
        for event in document.events.values():
            self._store_event(video_id, event)

    def _has_rows_for(self, video_id: str) -> bool:
        return (
            video_id in self._event_bats["video_id"].tails()
            or video_id in self._object_bats["video_id"].tails()
        )

    def store_event(self, video_id: str, event: VideoEvent) -> None:
        """Add one (possibly freshly extracted) event to the metadata."""
        self.document(video_id)  # raises on unknown video
        self._store_event(video_id, event)

    def _store_event(self, video_id: str, event: VideoEvent) -> None:
        oid = self._event_bats["event_id"].count()
        self._event_bats["event_id"].insert(event.event_id)
        self._event_bats["video_id"].insert(video_id)
        self._event_bats["kind"].insert(event.kind)
        self._event_bats["start"].insert(float(event.interval.start))
        self._event_bats["end"].insert(float(event.interval.end))
        self._event_bats["confidence"].insert(float(event.confidence))
        self._event_bats["source"].insert(event.source)
        for role, object_id in event.roles.items():
            self._role_names.insert(oid, role)
            self._role_objects.insert(oid, object_id)

    def _store_object(self, video_id: str, video_object: VideoObject) -> None:
        self._object_bats["object_id"].insert(video_object.object_id)
        self._object_bats["video_id"].insert(video_id)
        self._object_bats["category"].insert(video_object.category)
        self._object_bats["label"].insert(video_object.label)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def document(self, video_id: str) -> VideoDocument:
        try:
            return self._documents[video_id]
        except KeyError:
            raise CobraError(f"unknown video {video_id!r}") from None

    def video_ids(self) -> list[str]:
        return sorted(self._documents)

    def events(
        self,
        video_id: str | None = None,
        kind: str | None = None,
        min_confidence: float = 0.0,
    ) -> list[dict[str, Any]]:
        """Event records (from the BATs) matching the filters."""
        columns = {attr: bat.tails() for attr, bat in self._event_bats.items()}
        roles_by_oid = self._roles_by_oid()
        out: list[dict[str, Any]] = []
        for oid in range(len(columns["event_id"])):
            record = {attr: tails[oid] for attr, tails in columns.items()}
            if video_id is not None and record["video_id"] != video_id:
                continue
            if kind is not None and record["kind"] != kind:
                continue
            if record["confidence"] < min_confidence:
                continue
            record["roles"] = roles_by_oid.get(oid, {})
            record["interval"] = Interval(
                record["start"], record["end"], record["kind"]
            )
            out.append(record)
        out.sort(key=lambda r: (r["video_id"], r["start"]))
        return out

    def _roles_of(self, oid: int) -> dict[str, str]:
        return self._roles_by_oid().get(oid, {})

    def _roles_by_oid(self) -> dict[int, dict[str, str]]:
        """The role pairs grouped by event oid in one pass over the role
        BATs, so listing n events costs O(events + roles), not O(n^2)."""
        grouped: dict[int, dict[str, str]] = {}
        for (head, role), (_, object_id) in zip(
            self._role_names, self._role_objects
        ):
            grouped.setdefault(head, {})[role] = object_id
        return grouped

    def objects(
        self,
        video_id: str | None = None,
        category: str | None = None,
        label: str | None = None,
    ) -> list[dict[str, Any]]:
        ids = self._object_bats["object_id"].tails()
        out = []
        for oid in range(len(ids)):
            record = {
                attr: bat.tails()[oid] for attr, bat in self._object_bats.items()
            }
            if video_id is not None and record["video_id"] != video_id:
                continue
            if category is not None and record["category"] != category:
                continue
            if label is not None and record["label"] != label:
                continue
            out.append(record)
        return out

    def has_events(self, video_id: str, kind: str) -> bool:
        return bool(self.events(video_id, kind))
