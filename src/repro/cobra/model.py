"""The Cobra video data model (§2).

"The model is in line with the latest development in MPEG-7, distinguishing
four distinct layers within video content: the raw data, the feature, the
object and the event layer. The object and event layers are concept layers
consisting of entities characterized by prominent spatial and temporal
dimensions respectively."

A :class:`VideoDocument` binds the four layers for one video. The layers
are storage-agnostic descriptions; :mod:`repro.cobra.metadata` persists
them into kernel BATs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import CobraError
from repro.synth.annotations import Interval

__all__ = [
    "RawVideo",
    "FeatureTrack",
    "VideoObject",
    "VideoEvent",
    "VideoDocument",
]


@dataclass(frozen=True)
class RawVideo:
    """Raw-data layer: a reference to the underlying media.

    The reproduction's media are synthetic, so the locator names the
    generator spec instead of a file path; everything else (frame rate,
    duration, resolution) is real metadata.
    """

    video_id: str
    locator: str
    duration: float
    fps: float
    width: int
    height: int
    audio_sample_rate: int

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.fps <= 0:
            raise CobraError("raw video needs positive duration and fps")


@dataclass
class FeatureTrack:
    """Feature layer: one named per-step stream (10 Hz, values in [0, 1])."""

    name: str
    values: np.ndarray
    step_seconds: float = 0.1

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise CobraError(f"feature track {self.name!r} must be 1-D")

    def at_time(self, seconds: float) -> float:
        index = int(seconds / self.step_seconds)
        if not 0 <= index < self.values.shape[0]:
            raise CobraError(f"time {seconds} outside track {self.name!r}")
        return float(self.values[index])


@dataclass
class VideoObject:
    """Object layer: an entity with prominent *spatial* dimension.

    Attributes:
        object_id: unique within the document.
        category: "driver", "car", "semaphore", ...
        label: display name ("SCHUMACHER").
        appearances: intervals in which the object is on screen / active.
        properties: free-form attributes (team, car color, ...).
    """

    object_id: str
    category: str
    label: str
    appearances: list[Interval] = field(default_factory=list)
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class VideoEvent:
    """Event layer: an entity with prominent *temporal* dimension.

    Attributes:
        event_id: unique within the document.
        kind: "highlight", "start", "fly_out", "passing", "pit_stop",
            "excited_speech", "replay", "overlay", or user-defined.
        interval: when the event happens.
        confidence: posterior from the extraction method (1.0 = certain /
            manually annotated).
        roles: role name -> object_id ("driver" -> "obj3").
        source: which extractor produced it ("dbn", "text", "rule", ...).
    """

    event_id: str
    kind: str
    interval: Interval
    confidence: float = 1.0
    roles: dict[str, str] = field(default_factory=dict)
    source: str = "annotation"


@dataclass
class VideoDocument:
    """All four Cobra layers of one video."""

    raw: RawVideo
    features: dict[str, FeatureTrack] = field(default_factory=dict)
    objects: dict[str, VideoObject] = field(default_factory=dict)
    events: dict[str, VideoEvent] = field(default_factory=dict)
    _event_counter: int = 0

    # ------------------------------------------------------------------
    def add_feature(self, track: FeatureTrack) -> None:
        if track.name in self.features:
            raise CobraError(f"feature track {track.name!r} already present")
        self.features[track.name] = track

    def add_object(self, video_object: VideoObject) -> None:
        if video_object.object_id in self.objects:
            raise CobraError(f"object {video_object.object_id!r} already present")
        self.objects[video_object.object_id] = video_object

    def new_event(
        self,
        kind: str,
        interval: Interval,
        confidence: float = 1.0,
        roles: dict[str, str] | None = None,
        source: str = "annotation",
    ) -> VideoEvent:
        """Create, register and return a new event with a fresh id."""
        event_id = f"{self.raw.video_id}/e{self._event_counter}"
        self._event_counter += 1
        event = VideoEvent(
            event_id, kind, interval, confidence, dict(roles or {}), source
        )
        self.events[event_id] = event
        return event

    # ------------------------------------------------------------------
    def events_of_kind(self, kind: str) -> list[VideoEvent]:
        return sorted(
            (e for e in self.events.values() if e.kind == kind),
            key=lambda e: e.interval.start,
        )

    def object_by_label(self, label: str) -> VideoObject:
        for video_object in self.objects.values():
            if video_object.label == label:
                return video_object
        raise CobraError(f"no object labelled {label!r}")

    def has_feature(self, name: str) -> bool:
        return name in self.features

    def has_events(self, kind: str) -> bool:
        return any(e.kind == kind for e in self.events.values())
