"""Domain-knowledge catalog.

"Domain independence is achieved by separating domain knowledge and
techniques, which use it. Domain knowledge is stored within the database.
... To provide a user with the ability to query a new domain, knowledge of
that domain (HMMs, DBNs, rules, etc.) has to be provided." (§2)

The catalog stores, per domain, the trained models and the registered
extraction methods with their cost/quality descriptors, which the query
preprocessor consults when deciding how to resolve a query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CobraError

__all__ = ["ExtractionMethod", "DomainKnowledge", "KnowledgeCatalog"]


@dataclass
class ExtractionMethod:
    """One way to produce events of some kind for a video.

    Attributes:
        name: method identifier ("av_dbn", "audio_dbn", "text", "rule").
        produces: event kinds this method can extract.
        requires_features: feature tracks that must exist first.
        cost: relative compute cost (higher = slower) — the preprocessor
            prefers cheap methods.
        quality: expected detection quality in [0, 1] — the preprocessor
            prefers high quality at equal cost.
        extract: callable(document) -> list of VideoEvent.
    """

    name: str
    produces: tuple[str, ...]
    extract: Callable[..., list]
    requires_features: tuple[str, ...] = ()
    cost: float = 1.0
    quality: float = 0.5


@dataclass
class DomainKnowledge:
    """Everything the system knows about one domain (e.g. "formula1")."""

    domain: str
    models: dict[str, Any] = field(default_factory=dict)
    methods: list[ExtractionMethod] = field(default_factory=list)
    rules: list[Any] = field(default_factory=list)

    def methods_for(self, kind: str) -> list[ExtractionMethod]:
        """Methods able to produce ``kind``, best (quality/cost) first."""
        candidates = [m for m in self.methods if kind in m.produces]
        return sorted(candidates, key=lambda m: (-m.quality, m.cost))


class KnowledgeCatalog:
    """Domain name -> :class:`DomainKnowledge`."""

    def __init__(self) -> None:
        self._domains: dict[str, DomainKnowledge] = {}

    def add_domain(self, knowledge: DomainKnowledge) -> None:
        if knowledge.domain in self._domains:
            raise CobraError(f"domain {knowledge.domain!r} already present")
        self._domains[knowledge.domain] = knowledge

    def domain(self, name: str) -> DomainKnowledge:
        try:
            return self._domains[name]
        except KeyError:
            raise CobraError(f"unknown domain {name!r}") from None

    def domains(self) -> list[str]:
        return sorted(self._domains)
