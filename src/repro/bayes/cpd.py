"""Tabular conditional probability distributions.

A :class:`TabularCpd` stores P(X | parents) as a table whose first axis is
the child variable and whose remaining axes follow the parent order. Each
column (one parent configuration) must sum to one.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.bayes.factor import Factor
from repro.errors import CpdError

__all__ = ["TabularCpd"]

Node = Hashable


class TabularCpd:
    """P(variable | parents) as a normalized table.

    Args:
        variable: child variable name.
        cardinality: number of child states.
        table: array of shape ``(cardinality, *parent_cards)``; every slice
            along axis 0 for a fixed parent configuration sums to 1.
        parents: parent names in axis order (axis 1..n).
        parent_cards: cardinalities aligned with ``parents``.
    """

    def __init__(
        self,
        variable: Node,
        cardinality: int,
        table: np.ndarray | Sequence,
        parents: Sequence[Node] = (),
        parent_cards: Sequence[int] = (),
    ):
        self.variable = variable
        self.cardinality = int(cardinality)
        self.parents = list(parents)
        self.parent_cards = [int(c) for c in parent_cards]
        if len(self.parents) != len(self.parent_cards):
            raise CpdError(
                f"{variable!r}: {len(self.parents)} parents but "
                f"{len(self.parent_cards)} cardinalities"
            )
        shape = (self.cardinality, *self.parent_cards)
        values = np.asarray(table, dtype=np.float64).reshape(shape)
        if np.any(values < 0):
            raise CpdError(f"{variable!r}: negative probabilities")
        sums = values.sum(axis=0)
        if not np.allclose(sums, 1.0, atol=1e-6):
            raise CpdError(
                f"{variable!r}: columns must sum to 1 "
                f"(min {sums.min():.6f}, max {sums.max():.6f})"
            )
        self.table = values

    # ------------------------------------------------------------------
    def to_factor(self, rename: Mapping[Node, Node] | None = None) -> Factor:
        """View the CPD as a factor over (variable, *parents).

        Args:
            rename: optional node-name mapping applied to the scope — used
                when instantiating DBN template CPDs at concrete time slices.
        """
        mapping = rename or {}
        scope = [mapping.get(self.variable, self.variable)]
        scope += [mapping.get(p, p) for p in self.parents]
        cards = [self.cardinality, *self.parent_cards]
        return Factor(scope, cards, self.table)

    def probability(self, state: int, parent_states: Mapping[Node, int] | None = None) -> float:
        """Look up P(variable=state | parents=parent_states)."""
        if not 0 <= state < self.cardinality:
            raise CpdError(f"state {state} out of range for {self.variable!r}")
        index: list[int] = [state]
        given = parent_states or {}
        for parent, card in zip(self.parents, self.parent_cards):
            if parent not in given:
                raise CpdError(f"missing parent state for {parent!r}")
            ps = given[parent]
            if not 0 <= ps < card:
                raise CpdError(f"state {ps} out of range for parent {parent!r}")
            index.append(ps)
        return float(self.table[tuple(index)])

    # ------------------------------------------------------------------
    @staticmethod
    def uniform(
        variable: Node,
        cardinality: int,
        parents: Sequence[Node] = (),
        parent_cards: Sequence[int] = (),
    ) -> "TabularCpd":
        shape = (cardinality, *[int(c) for c in parent_cards])
        return TabularCpd(
            variable, cardinality, np.full(shape, 1.0 / cardinality), parents, parent_cards
        )

    @staticmethod
    def random(
        variable: Node,
        cardinality: int,
        parents: Sequence[Node] = (),
        parent_cards: Sequence[int] = (),
        rng: np.random.Generator | None = None,
        concentration: float = 1.0,
    ) -> "TabularCpd":
        """Dirichlet-random CPD, used to initialize EM."""
        rng = rng or np.random.default_rng()
        shape = (cardinality, *[int(c) for c in parent_cards])
        raw = rng.gamma(concentration, size=shape)
        raw /= raw.sum(axis=0, keepdims=True)
        return TabularCpd(variable, cardinality, raw, parents, parent_cards)

    def perturbed(self, rng: np.random.Generator, amount: float = 0.1) -> "TabularCpd":
        """Return a noise-perturbed copy (for EM restarts)."""
        noise = rng.uniform(0, amount, size=self.table.shape)
        raw = self.table + noise
        raw /= raw.sum(axis=0, keepdims=True)
        return TabularCpd(
            self.variable, self.cardinality, raw, self.parents, self.parent_cards
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.parents:
            given = ", ".join(str(p) for p in self.parents)
            return f"TabularCpd(P({self.variable} | {given}))"
        return f"TabularCpd(P({self.variable}))"
