"""Parameter learning for Bayesian networks.

Two estimators:

* :func:`mle` — maximum-likelihood counting from complete data (with an
  optional Dirichlet pseudo-count for smoothing);
* :class:`ExpectationMaximization` — the EM algorithm for data with hidden
  (never-observed or missing) variables, the learning algorithm the paper
  uses for its BNs and (through the DBN wrapper) its DBNs.

The E-step computes expected family counts with exact variable-elimination
posteriors; the M-step normalizes them into new CPDs.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.bayes.cpd import TabularCpd
from repro.bayes.inference import VariableElimination
from repro.bayes.network import BayesianNetwork
from repro.errors import LearningError

__all__ = ["mle", "ExpectationMaximization", "EmResult"]

Node = Hashable


def mle(
    network: BayesianNetwork,
    records: Sequence[Mapping[Node, int]],
    pseudo_count: float = 0.0,
) -> BayesianNetwork:
    """Maximum-likelihood parameters from fully observed records.

    Args:
        network: defines structure and cardinalities; parameters are ignored.
        records: complete assignments {node: state}.
        pseudo_count: added to every cell before normalizing (Laplace
            smoothing when 1.0); with 0.0, unseen parent configurations fall
            back to a uniform column.

    Returns:
        A new network with re-estimated CPDs.
    """
    if not records:
        raise LearningError("mle needs at least one record")
    out = network.copy()
    for node in network.nodes():
        cpd = network.cpd(node)
        counts = np.full((cpd.cardinality, *cpd.parent_cards), pseudo_count)
        for record in records:
            if node not in record:
                raise LearningError(
                    f"record missing node {node!r}; use ExpectationMaximization"
                )
            index = (record[node], *[record[p] for p in cpd.parents])
            counts[index] += 1.0
        table = _normalize_columns(counts)
        out.replace_cpd(
            TabularCpd(node, cpd.cardinality, table, cpd.parents, cpd.parent_cards)
        )
    return out


def _normalize_columns(counts: np.ndarray) -> np.ndarray:
    sums = counts.sum(axis=0, keepdims=True)
    cardinality = counts.shape[0]
    safe = np.where(sums > 0, sums, 1.0)
    table = counts / safe
    uniform = np.full_like(counts, 1.0 / cardinality)
    return np.where(sums > 0, table, uniform)


@dataclass
class EmResult:
    """Outcome of an EM run."""

    network: BayesianNetwork
    log_likelihoods: list[float]
    converged: bool

    @property
    def iterations(self) -> int:
        return len(self.log_likelihoods)

    @property
    def final_log_likelihood(self) -> float:
        return self.log_likelihoods[-1] if self.log_likelihoods else float("-inf")


class ExpectationMaximization:
    """EM parameter learning with hidden variables.

    Args:
        network: initial network (structure + starting parameters). Starting
            parameters matter: EM climbs to a local optimum. Use
            :meth:`TabularCpd.random` or :meth:`TabularCpd.perturbed` for
            restarts.
        max_iterations: hard cap on EM sweeps.
        tolerance: stop when the per-record log-likelihood improves by less
            than this between sweeps.
        pseudo_count: Dirichlet prior added to expected counts in the M-step
            (keeps probabilities off the simplex boundary).
    """

    def __init__(
        self,
        network: BayesianNetwork,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
        pseudo_count: float = 0.05,
    ):
        network.validate()
        self._initial = network.copy()
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.pseudo_count = pseudo_count

    def fit(
        self,
        records: Sequence[Mapping[Node, int]],
        virtual_records: Sequence[Mapping[Node, Sequence[float]]] | None = None,
    ) -> EmResult:
        """Run EM on partially observed records.

        Args:
            records: assignments; nodes absent from a record are hidden for
                that record.
            virtual_records: optional per-record soft evidence, aligned with
                ``records`` (may be None or shorter; missing entries mean no
                soft evidence for that record).

        Returns:
            :class:`EmResult` with the fitted network and the log-likelihood
            trace (one entry per iteration, computed *before* that
            iteration's M-step update).
        """
        if not records:
            raise LearningError("EM needs at least one record")
        current = self._initial.copy()
        history: list[float] = []
        converged = False
        for _ in range(self.max_iterations):
            engine = VariableElimination(current)
            counts, log_likelihood = self._expected_counts(
                current, engine, records, virtual_records
            )
            history.append(log_likelihood)
            for node, table in counts.items():
                cpd = current.cpd(node)
                current.replace_cpd(
                    TabularCpd(
                        node,
                        cpd.cardinality,
                        _normalize_columns(table + self.pseudo_count),
                        cpd.parents,
                        cpd.parent_cards,
                    )
                )
            if len(history) >= 2 and abs(history[-1] - history[-2]) < self.tolerance * len(records):
                converged = True
                break
        return EmResult(current, history, converged)

    # ------------------------------------------------------------------
    def _expected_counts(
        self,
        network: BayesianNetwork,
        engine: VariableElimination,
        records: Sequence[Mapping[Node, int]],
        virtual_records: Sequence[Mapping[Node, Sequence[float]]] | None,
    ) -> tuple[dict[Node, np.ndarray], float]:
        counts: dict[Node, np.ndarray] = {
            node: np.zeros((network.cpd(node).cardinality, *network.cpd(node).parent_cards))
            for node in network.nodes()
        }
        log_likelihood = 0.0
        for i, record in enumerate(records):
            soft = {}
            if virtual_records is not None and i < len(virtual_records):
                soft = dict(virtual_records[i] or {})
            evidence = dict(record)
            p_evidence = engine.evidence_probability(evidence, soft)
            if p_evidence <= 0:
                raise LearningError(
                    f"record {i} has zero likelihood under the current model"
                )
            log_likelihood += float(np.log(p_evidence))
            for node in network.nodes():
                cpd = network.cpd(node)
                family = [node, *cpd.parents]
                hidden_family = [v for v in family if v not in evidence]
                if not hidden_family:
                    index = (evidence[node], *[evidence[p] for p in cpd.parents])
                    counts[node][index] += 1.0
                    continue
                posterior = engine.query(hidden_family, evidence, soft)
                for assignment in itertools.product(
                    *[range(posterior.cardinality(v)) for v in hidden_family]
                ):
                    prob = float(posterior.values[assignment])
                    if prob == 0.0:
                        continue
                    full = dict(evidence)
                    full.update(dict(zip(hidden_family, assignment)))
                    index = (full[node], *[full[p] for p in cpd.parents])
                    counts[node][index] += prob
        return counts, log_likelihood
