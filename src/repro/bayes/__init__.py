"""Discrete Bayesian networks: factors, structure, inference, learning."""

from repro.bayes.cpd import TabularCpd
from repro.bayes.factor import Factor
from repro.bayes.graph import Dag
from repro.bayes.inference import VariableElimination, min_fill_order
from repro.bayes.learn import EmResult, ExpectationMaximization, mle
from repro.bayes.network import BayesianNetwork

__all__ = [
    "TabularCpd",
    "Factor",
    "Dag",
    "VariableElimination",
    "min_fill_order",
    "EmResult",
    "ExpectationMaximization",
    "mle",
    "BayesianNetwork",
]
