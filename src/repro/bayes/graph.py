"""Directed acyclic graphs for Bayesian networks.

A minimal DAG with the queries inference and learning need: parents,
children, topological order, ancestors, and cycle rejection at edge-insert
time. Node names are arbitrary hashables (strings in practice; DBN slices
use ``("EA", t)`` tuples).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.errors import GraphStructureError

__all__ = ["Dag"]

Node = Hashable


class Dag:
    """A directed acyclic graph with insert-time cycle checking."""

    def __init__(self) -> None:
        self._parents: dict[Node, list[Node]] = {}
        self._children: dict[Node, list[Node]] = {}

    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node not in self._parents:
            self._parents[node] = []
            self._children[node] = []

    def add_edge(self, parent: Node, child: Node) -> None:
        """Insert parent -> child, rejecting self-loops and cycles."""
        if parent == child:
            raise GraphStructureError(f"self-loop on {parent!r}")
        self.add_node(parent)
        self.add_node(child)
        if parent in self._parents[child]:
            return  # idempotent
        if self._reaches(child, parent):
            raise GraphStructureError(
                f"edge {parent!r} -> {child!r} would create a cycle"
            )
        self._parents[child].append(parent)
        self._children[parent].append(child)

    def _reaches(self, start: Node, goal: Node) -> bool:
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._children.get(node, ()))
        return False

    # ------------------------------------------------------------------
    def nodes(self) -> list[Node]:
        return list(self._parents)

    def has_node(self, node: Node) -> bool:
        return node in self._parents

    def parents(self, node: Node) -> list[Node]:
        self._require(node)
        return list(self._parents[node])

    def children(self, node: Node) -> list[Node]:
        self._require(node)
        return list(self._children[node])

    def roots(self) -> list[Node]:
        return [n for n, ps in self._parents.items() if not ps]

    def leaves(self) -> list[Node]:
        return [n for n, cs in self._children.items() if not cs]

    def edges(self) -> list[tuple[Node, Node]]:
        return [(p, c) for c, ps in self._parents.items() for p in ps]

    def ancestors(self, node: Node) -> set[Node]:
        self._require(node)
        out: set[Node] = set()
        stack = list(self._parents[node])
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._parents[current])
        return out

    def descendants(self, node: Node) -> set[Node]:
        self._require(node)
        out: set[Node] = set()
        stack = list(self._children[node])
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._children[current])
        return out

    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; deterministic given insertion order."""
        in_degree = {n: len(ps) for n, ps in self._parents.items()}
        ready = [n for n, d in in_degree.items() if d == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._parents):
            raise GraphStructureError("graph contains a cycle")
        return order

    def subgraph(self, nodes: Iterable[Node]) -> "Dag":
        wanted = set(nodes)
        missing = wanted - set(self._parents)
        if missing:
            raise GraphStructureError(f"subgraph of unknown nodes {missing}")
        out = Dag()
        for node in self._parents:
            if node in wanted:
                out.add_node(node)
        for parent, child in self.edges():
            if parent in wanted and child in wanted:
                out.add_edge(parent, child)
        return out

    def _require(self, node: Node) -> None:
        if node not in self._parents:
            raise GraphStructureError(f"unknown node {node!r}")
