"""Exact inference on Bayesian networks by variable elimination.

Supports hard evidence, soft (virtual) evidence vectors — the mechanism the
fusion layer uses for the paper's probabilistic feature values in [0, 1] —
joint queries over several variables, and evidence likelihood P(e).
Elimination order follows the min-fill heuristic.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.bayes.factor import Factor
from repro.bayes.network import BayesianNetwork
from repro.errors import InferenceError

__all__ = ["VariableElimination", "min_fill_order"]

Node = Hashable


def min_fill_order(
    scopes: Sequence[Sequence[Node]], eliminate: Sequence[Node]
) -> list[Node]:
    """Order ``eliminate`` by the min-fill heuristic over factor scopes."""
    neighbors: dict[Node, set[Node]] = {}
    for scope in scopes:
        for v in scope:
            neighbors.setdefault(v, set()).update(w for w in scope if w != v)
    remaining = [v for v in eliminate if v in neighbors]
    # Variables absent from every scope cost nothing; put them first.
    order = [v for v in eliminate if v not in neighbors]

    def fill_cost(v: Node) -> int:
        around = [w for w in neighbors[v] if w in remaining or w not in order]
        cost = 0
        for i, a in enumerate(around):
            for b in around[i + 1:]:
                if b not in neighbors.get(a, ()):
                    cost += 1
        return cost

    live = set(remaining)
    while live:
        best = min(sorted(live, key=repr), key=fill_cost)
        order.append(best)
        live.remove(best)
        around = {w for w in neighbors[best] if w in live}
        for a in around:
            neighbors[a].discard(best)
            neighbors[a].update(w for w in around if w != a)
    return order


class VariableElimination:
    """Exact querying of a validated :class:`BayesianNetwork`."""

    def __init__(self, network: BayesianNetwork):
        network.validate()
        self._network = network

    # ------------------------------------------------------------------
    def query(
        self,
        variables: Sequence[Node] | Node,
        evidence: Mapping[Node, int] | None = None,
        virtual_evidence: Mapping[Node, Sequence[float]] | None = None,
    ) -> Factor:
        """Posterior joint over ``variables`` given evidence.

        Args:
            variables: one node or several (joint query).
            evidence: hard assignments {node: state}.
            virtual_evidence: soft likelihood vectors {node: [l_0, ..]}.

        Returns:
            A normalized factor over the query variables.
        """
        if not isinstance(variables, (list, tuple)):
            variables = [variables]
        query_vars = list(variables)
        evidence = dict(evidence or {})
        overlap = [v for v in query_vars if v in evidence]
        if overlap:
            raise InferenceError(f"query variables {overlap} are in the evidence")
        unnormalized = self._eliminate(query_vars, evidence, virtual_evidence or {})
        return unnormalized.normalize().transpose(query_vars)

    def evidence_probability(
        self,
        evidence: Mapping[Node, int],
        virtual_evidence: Mapping[Node, Sequence[float]] | None = None,
    ) -> float:
        """P(evidence) — the likelihood of the observed assignment."""
        result = self._eliminate([], dict(evidence), virtual_evidence or {})
        return result.total()

    def log_evidence(self, evidence: Mapping[Node, int]) -> float:
        p = self.evidence_probability(evidence)
        if p <= 0:
            return float("-inf")
        return float(np.log(p))

    def map_state(
        self, variable: Node, evidence: Mapping[Node, int] | None = None
    ) -> int:
        """Most probable state of one variable given evidence."""
        posterior = self.query([variable], evidence)
        return int(np.argmax(posterior.values))

    # ------------------------------------------------------------------
    def _eliminate(
        self,
        keep: Sequence[Node],
        evidence: Mapping[Node, int],
        virtual_evidence: Mapping[Node, Sequence[float]],
    ) -> Factor:
        for node in list(evidence) + list(virtual_evidence):
            if not self._network.dag.has_node(node):
                raise InferenceError(f"evidence on unknown node {node!r}")
        factors = [cpd.to_factor().reduce(evidence) for cpd in
                   (self._network.cpd(n) for n in self._network.nodes())]
        for node, likelihood in virtual_evidence.items():
            if node in evidence:
                raise InferenceError(
                    f"node {node!r} has both hard and virtual evidence"
                )
            # Weight exactly one factor mentioning the node (applying the
            # likelihood to several would square it into the posterior).
            for i, f in enumerate(factors):
                if node in f.variables:
                    factors[i] = f.weight(node, likelihood)
                    break
            else:
                raise InferenceError(
                    f"virtual evidence on node {node!r} absent from all factors"
                )
        hidden = [
            n
            for n in self._network.nodes()
            if n not in keep and n not in evidence
        ]
        order = min_fill_order([f.variables for f in factors], hidden)
        for variable in order:
            involved = [f for f in factors if variable in f.variables]
            if not involved:
                continue
            product = involved[0]
            for f in involved[1:]:
                product = product * f
            summed = product.marginalize([variable])
            factors = [f for f in factors if variable not in f.variables] + [summed]
        result = Factor.unit()
        for f in factors:
            result = result * f
        return result
