"""Discrete factors: the workhorse of all probabilistic inference here.

A factor is a non-negative table over a set of named discrete variables.
Bayesian-network CPDs, DBN transition models, interface beliefs, and
Boyen–Koller cluster marginals are all represented as factors; inference is
factor multiplication, reduction by evidence, and marginalization.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import InferenceError

__all__ = ["Factor"]


class Factor:
    """A table over named discrete variables.

    Args:
        variables: variable names, one per axis, in axis order.
        cardinalities: number of states per variable (aligned with names).
        values: array broadcastable to the implied shape; copied.

    Factors are immutable by convention: every operation returns a new
    factor. Values are float64 throughout.
    """

    def __init__(
        self,
        variables: Sequence[str],
        cardinalities: Sequence[int],
        values: np.ndarray | Sequence,
    ):
        names = list(variables)
        if len(set(names)) != len(names):
            raise InferenceError(f"duplicate variables in factor: {names}")
        cards = [int(c) for c in cardinalities]
        if len(cards) != len(names):
            raise InferenceError(
                f"{len(names)} variables but {len(cards)} cardinalities"
            )
        if any(c < 1 for c in cards):
            raise InferenceError(f"cardinalities must be positive: {cards}")
        table = np.asarray(values, dtype=np.float64).reshape(cards)
        if np.any(table < 0):
            raise InferenceError("factor values must be non-negative")
        # Empty scope is allowed: a scalar factor (multiplicative constant).
        self._variables = names
        self._cards = cards
        self._values = table

    # ------------------------------------------------------------------
    @property
    def variables(self) -> list[str]:
        return list(self._variables)

    @property
    def cardinalities(self) -> list[int]:
        return list(self._cards)

    @property
    def values(self) -> np.ndarray:
        return self._values

    def cardinality(self, variable: str) -> int:
        return self._cards[self._axis(variable)]

    def _axis(self, variable: str) -> int:
        try:
            return self._variables.index(variable)
        except ValueError:
            raise InferenceError(
                f"factor over {self._variables} has no variable {variable!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = ", ".join(self._variables)
        return f"Factor({scope})"

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of scopes."""
        union = list(self._variables)
        for v in other._variables:
            if v not in union:
                union.append(v)
        cards = []
        for v in union:
            if v in self._variables:
                card = self._cards[self._variables.index(v)]
                if v in other._variables and other.cardinality(v) != card:
                    raise InferenceError(
                        f"variable {v!r} has cardinality {card} vs "
                        f"{other.cardinality(v)}"
                    )
            else:
                card = other.cardinality(v)
            cards.append(card)
        left = _expand(self, union, cards)
        right = _expand(other, union, cards)
        return Factor(union, cards, left * right)

    def __mul__(self, other: "Factor") -> "Factor":
        return self.multiply(other)

    def marginalize(self, variables: Iterable[str]) -> "Factor":
        """Sum out the given variables."""
        drop = set(variables)
        axes = tuple(i for i, v in enumerate(self._variables) if v in drop)
        missing = drop - set(self._variables)
        if missing:
            raise InferenceError(f"cannot marginalize absent variables {missing}")
        keep = [v for v in self._variables if v not in drop]
        cards = [self._cards[self._variables.index(v)] for v in keep]
        return Factor(keep, cards, self._values.sum(axis=axes))

    def keep(self, variables: Iterable[str]) -> "Factor":
        """Marginalize down TO the given variables (order preserved)."""
        wanted = list(variables)
        out = self.marginalize([v for v in self._variables if v not in wanted])
        return out.transpose(wanted)

    def transpose(self, order: Sequence[str]) -> "Factor":
        """Reorder axes to the given variable order."""
        order = list(order)
        if sorted(order, key=repr) != sorted(self._variables, key=repr):
            raise InferenceError(
                f"transpose order {order} does not match scope {self._variables}"
            )
        axes = [self._variables.index(v) for v in order]
        cards = [self._cards[a] for a in axes]
        return Factor(order, cards, self._values.transpose(axes))

    def reduce(self, evidence: Mapping[str, int]) -> "Factor":
        """Condition on hard evidence, dropping the instantiated variables."""
        relevant = {v: s for v, s in evidence.items() if v in self._variables}
        if not relevant:
            return self
        index: list = [slice(None)] * len(self._variables)
        for v, state in relevant.items():
            axis = self._axis(v)
            if not 0 <= state < self._cards[axis]:
                raise InferenceError(
                    f"state {state} out of range for {v!r} "
                    f"(cardinality {self._cards[axis]})"
                )
            index[axis] = state
        keep = [v for v in self._variables if v not in relevant]
        cards = [self._cards[self._variables.index(v)] for v in keep]
        return Factor(keep, cards, self._values[tuple(index)])

    def weight(self, variable: str, likelihood: Sequence[float]) -> "Factor":
        """Multiply in soft (virtual) evidence on one variable.

        ``likelihood[s]`` scales all entries with ``variable = s`` — Pearl's
        virtual-evidence mechanism, used for the paper's probabilistic
        feature values in [0, 1].
        """
        axis = self._axis(variable)
        lik = np.asarray(likelihood, dtype=np.float64)
        if lik.shape != (self._cards[axis],):
            raise InferenceError(
                f"likelihood for {variable!r} needs {self._cards[axis]} entries"
            )
        shape = [1] * len(self._variables)
        shape[axis] = self._cards[axis]
        return Factor(self._variables, self._cards, self._values * lik.reshape(shape))

    def normalize(self) -> "Factor":
        """Scale so the table sums to one."""
        total = float(self._values.sum())
        if total <= 0:
            raise InferenceError("cannot normalize a zero factor")
        return Factor(self._variables, self._cards, self._values / total)

    def total(self) -> float:
        return float(self._values.sum())

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @staticmethod
    def uniform(variables: Sequence[str], cardinalities: Sequence[int]) -> "Factor":
        shape = [int(c) for c in cardinalities]
        size = int(np.prod(shape))
        return Factor(variables, shape, np.full(shape, 1.0 / size))

    @staticmethod
    def unit() -> "Factor":
        """The multiplicative identity: a scalar factor of 1."""
        return Factor([], [], 1.0)

    def is_scalar(self) -> bool:
        return not self._variables

    def almost_equal(self, other: "Factor", atol: float = 1e-9) -> bool:
        if sorted(self._variables, key=repr) != sorted(other._variables, key=repr):
            return False
        aligned = other.transpose(self._variables)
        return bool(np.allclose(self._values, aligned._values, atol=atol))


def _expand(factor: Factor, union: list[str], cards: list[int]) -> np.ndarray:
    """Broadcast a factor's table to the union scope."""
    shape = [1] * len(union)
    order = []
    for v in factor._variables:
        order.append(union.index(v))
    # Move the factor's axes into union positions.
    values = factor._values
    # Build the permutation: we need axes sorted by union position.
    perm = np.argsort(order)
    values = values.transpose(perm)
    sorted_positions = sorted(order)
    for pos in sorted_positions:
        shape[pos] = cards[pos]
    return values.reshape(shape)
