"""Bayesian networks: DAG + CPDs.

"A Bayesian network ... is a directed acyclic graph that describes
dependencies in a probability distribution function defined over a set of
variables" (§4). This module binds the :class:`~repro.bayes.graph.Dag`
structure to :class:`~repro.bayes.cpd.TabularCpd` parameters and validates
their mutual consistency.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.bayes.cpd import TabularCpd
from repro.bayes.factor import Factor
from repro.bayes.graph import Dag
from repro.errors import GraphStructureError, InferenceError

__all__ = ["BayesianNetwork"]

Node = Hashable


class BayesianNetwork:
    """A discrete Bayesian network.

    Build by adding CPDs; edges are implied by each CPD's parent list::

        net = BayesianNetwork()
        net.add_cpd(TabularCpd("Rain", 2, [0.8, 0.2]))
        net.add_cpd(TabularCpd("Wet", 2, [[0.9, 0.1], [0.1, 0.9]],
                               parents=["Rain"], parent_cards=[2]))
        net.validate()
    """

    def __init__(self) -> None:
        self._dag = Dag()
        self._cpds: dict[Node, TabularCpd] = {}

    # ------------------------------------------------------------------
    @property
    def dag(self) -> Dag:
        return self._dag

    def add_cpd(self, cpd: TabularCpd) -> None:
        if cpd.variable in self._cpds:
            raise GraphStructureError(f"node {cpd.variable!r} already has a CPD")
        self._dag.add_node(cpd.variable)
        for parent in cpd.parents:
            self._dag.add_edge(parent, cpd.variable)
        self._cpds[cpd.variable] = cpd

    def replace_cpd(self, cpd: TabularCpd) -> None:
        """Swap in new parameters; structure must be unchanged."""
        old = self.cpd(cpd.variable)
        if old.parents != cpd.parents or old.parent_cards != cpd.parent_cards:
            raise GraphStructureError(
                f"replace_cpd for {cpd.variable!r} changes the structure"
            )
        self._cpds[cpd.variable] = cpd

    def cpd(self, node: Node) -> TabularCpd:
        try:
            return self._cpds[node]
        except KeyError:
            raise GraphStructureError(f"node {node!r} has no CPD") from None

    def nodes(self) -> list[Node]:
        return self._dag.nodes()

    def cardinality(self, node: Node) -> int:
        return self.cpd(node).cardinality

    def cardinalities(self) -> dict[Node, int]:
        return {n: c.cardinality for n, c in self._cpds.items()}

    def validate(self) -> None:
        """Check every node has a CPD consistent with the structure."""
        for node in self._dag.nodes():
            if node not in self._cpds:
                raise GraphStructureError(f"node {node!r} lacks a CPD")
            cpd = self._cpds[node]
            structural = sorted(map(str, self._dag.parents(node)))
            declared = sorted(map(str, cpd.parents))
            if structural != declared:
                raise GraphStructureError(
                    f"node {node!r}: CPD parents {declared} differ from "
                    f"graph parents {structural}"
                )
            for parent, card in zip(cpd.parents, cpd.parent_cards):
                if self.cpd(parent).cardinality != card:
                    raise GraphStructureError(
                        f"node {node!r}: parent {parent!r} cardinality mismatch"
                    )
        self._dag.topological_order()  # raises on cycles

    # ------------------------------------------------------------------
    def factors(self) -> list[Factor]:
        """One factor per CPD (the network's factorization)."""
        return [cpd.to_factor() for cpd in self._cpds.values()]

    def joint(self) -> Factor:
        """The full joint distribution (exponential; small nets only)."""
        product = Factor.unit()
        for factor in self.factors():
            product = product * factor
        return product

    def sample(
        self,
        n: int,
        rng: np.random.Generator | None = None,
        evidence: Mapping[Node, int] | None = None,
    ) -> list[dict[Node, int]]:
        """Ancestral sampling of complete assignments.

        Evidence nodes, if given, are clamped (rejection-free: clamped values
        are simply used as parent states downstream — this is *forward
        sampling with interventions*, adequate for generating training data).
        """
        rng = rng or np.random.default_rng()
        clamp = dict(evidence or {})
        order = self._dag.topological_order()
        out: list[dict[Node, int]] = []
        for _ in range(n):
            assignment: dict[Node, int] = {}
            for node in order:
                if node in clamp:
                    assignment[node] = clamp[node]
                    continue
                cpd = self._cpds[node]
                column = [
                    cpd.probability(s, {p: assignment[p] for p in cpd.parents})
                    for s in range(cpd.cardinality)
                ]
                assignment[node] = int(rng.choice(cpd.cardinality, p=column))
            out.append(assignment)
        return out

    def log_likelihood(self, records: Sequence[Mapping[Node, int]]) -> float:
        """Complete-data log likelihood."""
        total = 0.0
        for record in records:
            for node, cpd in self._cpds.items():
                if node not in record:
                    raise InferenceError(
                        f"record is missing node {node!r}; use EM for hidden data"
                    )
                p = cpd.probability(
                    record[node], {q: record[q] for q in cpd.parents}
                )
                if p <= 0:
                    return float("-inf")
                total += float(np.log(p))
        return total

    def copy(self) -> "BayesianNetwork":
        out = BayesianNetwork()
        for node in self._dag.topological_order():
            cpd = self._cpds[node]
            out.add_cpd(
                TabularCpd(
                    cpd.variable,
                    cpd.cardinality,
                    cpd.table.copy(),
                    cpd.parents,
                    cpd.parent_cards,
                )
            )
        return out
