"""Moa object algebra (the paper's logical level).

Structure primitives (set/tuple/object), an expression algebra with an
evaluator, the extension registry the four Cobra extensions plug into, and
the Moa -> MIL rewriting used to push bulk work down to the kernel.
"""

from repro.moa.algebra import (
    Aggregate,
    Apply,
    Arith,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Field,
    Join,
    MakeTuple,
    Map,
    Nest,
    Not,
    Select,
    Semijoin,
    SetOp,
    The,
    Unnest,
    Var,
    evaluate,
)
from repro.moa.extension import ExtensionRegistry, MoaExtension
from repro.moa.rewrite import BulkModule, MilPlan, MoaCompiler
from repro.moa.types import Atomic, MoaType, ObjectOf, SetOf, TupleOf, typecheck

__all__ = [
    "Aggregate", "Apply", "Arith", "BoolOp", "Cmp", "Const", "Expr", "Field",
    "Join", "MakeTuple", "Map", "Nest", "Not", "Select", "Semijoin", "SetOp",
    "The", "Unnest", "Var", "evaluate",
    "ExtensionRegistry", "MoaExtension",
    "BulkModule", "MilPlan", "MoaCompiler",
    "Atomic", "MoaType", "ObjectOf", "SetOf", "TupleOf", "typecheck",
]
