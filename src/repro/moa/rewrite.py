"""Rewriting Moa expressions into MIL plans.

"For each Moa operation, there is a program written using an interface
language understood by the physical layer. In our system, a Moa query is
rewritten into Monet Interface Language (MIL)." — §3 of the paper.

:class:`MoaCompiler` implements that rewriting for the BAT-representable
algebra subset (pipelines of ``Select``/``Map``/``Aggregate``/``SetOp`` over
sets of atomics). The compiler emits a MIL ``PROC`` whose body is a chain of
bulk kernel commands, registers it with a kernel, and executes it — the same
compile-then-ship pathway the Cobra executor uses for feature-level
predicates, keeping bulk work out of the Python interpreter loop.

The bulk commands themselves (Monet's multiplexed operators, ``[+]`` and
friends, here spelled ``mmap``/``mselect``/``maggr``) are provided by
:class:`BulkModule`.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools
from typing import Any

import numpy as np

from repro.errors import MoaError
from repro.moa.algebra import Aggregate, Arith, Cmp, Const, Expr, Map, Select, SetOp, Var
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.monet.module import MonetModule, command

__all__ = ["BulkModule", "MoaCompiler", "MilPlan", "builtin_moa_plans"]

_OPS_CMP = {"=", "!=", "<", "<=", ">", ">="}
_OPS_ARITH = {"+", "-", "*", "/"}


class BulkModule(MonetModule):
    """Physical-level bulk operators backing the Moa→MIL rewriting.

    These mirror Monet's multiplexed operators: each consumes and produces
    whole BATs using vectorized numpy kernels on the tail column.
    """

    name = "bulk"

    @command(args=("BAT", "str", "any"), returns="BAT")
    def mselect(self, bat: BAT, op: str, value: Any) -> BAT:
        """Keep associations whose tail satisfies ``tail <op> value``."""
        if op not in _OPS_CMP:
            raise MoaError(f"mselect: unknown comparison {op!r}")
        tails = bat.tail_array()
        heads = bat.heads()
        if tails.dtype == object:
            mask = [_compare(op, t, value) for t in tails]
        else:
            mask = _vector_compare(op, tails, value)
        out = BAT("oid" if bat.head_type == "void" else bat.head_type, bat.tail_type)
        out.insert_bulk(
            list(itertools.compress(heads, mask)),
            list(itertools.compress(bat.tails(), mask)),
        )
        return out

    @command(args=("BAT", "str", "dbl"), returns="BAT")
    def mmap(self, bat: BAT, op: str, value: Any) -> BAT:
        """Elementwise arithmetic on the tail column (Monet ``[+]`` style)."""
        if op not in _OPS_ARITH:
            raise MoaError(f"mmap: unknown arithmetic op {op!r}")
        tails = bat.tail_array()
        if tails.dtype == object:
            raise MoaError("mmap needs a numeric tail column")
        result = _vector_arith(op, tails.astype(np.float64), value)
        out = BAT("oid" if bat.head_type == "void" else bat.head_type, "dbl")
        out.insert_bulk(bat.heads(), result.tolist())
        return out

    @command(args=("BAT", "str"), returns="any")
    def maggr(self, bat: BAT, kind: str) -> Any:
        """Aggregate the tail column: count/sum/min/max/avg."""
        if kind == "count":
            return bat.count()
        if kind == "sum":
            return bat.sum()
        if kind == "min":
            return bat.min()
        if kind == "max":
            return bat.max()
        if kind == "avg":
            return bat.avg()
        raise MoaError(f"maggr: unknown aggregate {kind!r}")

    @command(args=("str", "BAT", "BAT"), returns="BAT")
    def msetop(self, op: str, left: BAT, right: BAT) -> BAT:
        """Head-based set combination of two BATs."""
        if op == "union":
            return left.kunion(right)
        if op == "diff":
            return left.kdiff(right)
        if op == "intersect":
            return left.semijoin(right)
        raise MoaError(f"msetop: unknown set op {op!r}")


def _compare(op: str, a: Any, b: Any) -> bool:
    table = {
        "=": a == b,
        "!=": a != b,
        "<": a < b,
        "<=": a <= b,
        ">": a > b,
        ">=": a >= b,
    }
    return bool(table[op])


def _vector_compare(op: str, tails: np.ndarray, value: Any) -> np.ndarray:
    table = {
        "=": tails == value,
        "!=": tails != value,
        "<": tails < value,
        "<=": tails <= value,
        ">": tails > value,
        ">=": tails >= value,
    }
    return table[op]


def _vector_arith(op: str, tails: np.ndarray, value: float) -> np.ndarray:
    table = {
        "+": tails + value,
        "-": tails - value,
        "*": tails * value,
        "/": tails / value,
    }
    return table[op]


@dataclass(frozen=True)
class MilPlan:
    """A compiled plan: the emitted MIL source and its entry procedure."""

    proc_name: str
    mil_source: str
    input_names: tuple[str, ...]
    #: :class:`repro.check.fusecheck.FusionPlan` of the emitted procedure
    #: (``None`` when the kernel compiled with ``check="off"``).
    fusion_plan: Any = None
    #: Cost-model estimate of the source Moa expression, in abstract work
    #: units (``None`` when checking is off).
    estimated_cost: float | None = None
    #: :class:`repro.check.equivcheck.EquivalenceCertificate` proving the
    #: emitted MIL denotes the source expression (``None`` when checking is
    #: off or the construct fell outside the abstract semantics, EQ003).
    equivalence: Any = None


class MoaCompiler:
    """Compiles the BAT-representable Moa subset into MIL procedures.

    Supported shapes (composable): ``Var`` leaves naming input BATs,
    ``Select(var, Cmp(op, Var(var), Const))``, ``Map(var, Arith(op,
    Var(var), Const))``, ``Aggregate(kind, sub)``, and ``SetOp`` over two
    sub-plans. Anything else falls outside the compilable subset and raises
    :class:`MoaError` — the Cobra executor then evaluates it at the logical
    level instead.
    """

    def __init__(
        self,
        kernel: MonetKernel,
        extensions: Any = None,
        check: str = "error",
    ):
        self._kernel = kernel
        if not kernel.has_command("mselect"):
            kernel.load_module(BulkModule())
        self._counter = 0
        self._extensions = extensions
        self._check = check
        #: Moa-level diagnostics collected across compilations.
        self.diagnostics: list[Any] = []

    def compile(self, expr: Expr) -> MilPlan:
        """Emit a MIL PROC computing ``expr`` and register it on the kernel.

        Before rewriting, the expression is statically validated by
        :mod:`repro.check.moacheck` (free variables are allowed — they
        become the plan's input BATs).
        """
        self._precheck(expr)
        inputs: list[str] = []
        body_lines: list[str] = []
        temp_counter = [0]

        def emit(sub: Expr) -> str:
            match sub:
                case Var(name=name):
                    if name not in inputs:
                        inputs.append(name)
                    return name
                case Select(
                    var=var,
                    pred=Cmp(op=op, left=Var(name=lv), right=Const(value=value)),
                    source=source,
                ) if lv == var:
                    src = emit(source)
                    tmp = _fresh(temp_counter)
                    body_lines.append(self._emit_select(tmp, src, op, value))
                    return tmp
                case Map(
                    var=var,
                    body=Arith(op=op, left=Var(name=lv), right=Const(value=value)),
                    source=source,
                ) if lv == var:
                    src = emit(source)
                    tmp = _fresh(temp_counter)
                    body_lines.append(
                        f"VAR {tmp} := mmap({src}, {_quote(op)}, {_literal(value)});"
                    )
                    return tmp
                case Aggregate(kind=kind, source=source):
                    src = emit(source)
                    tmp = _fresh(temp_counter)
                    body_lines.append(f"VAR {tmp} := maggr({src}, {_quote(kind)});")
                    return tmp
                case SetOp(op=op, left=left, right=right):
                    lsrc = emit(left)
                    rsrc = emit(right)
                    tmp = _fresh(temp_counter)
                    body_lines.append(
                        f"VAR {tmp} := msetop({_quote(op)}, {lsrc}, {rsrc});"
                    )
                    return tmp
                case _:
                    raise MoaError(
                        f"expression node {type(sub).__name__} is outside the "
                        f"MIL-compilable Moa subset"
                    )

        result_var = emit(expr)
        proc_name = f"moaPlan{self._counter}"
        self._counter += 1
        params = ", ".join(f"BAT[void,dbl] {name}" for name in inputs)
        body = "\n".join(f"  {line}" for line in body_lines)
        source = (
            f"PROC {proc_name}({params}) : any := {{\n"
            f"{body}\n"
            f"  RETURN {result_var};\n"
            f"}}\n"
        )
        equivalence = self._validate(expr, source, proc_name, inputs)
        self._kernel.run(source)
        fusion_plan = getattr(
            self._kernel.interpreter.procedures.get(proc_name), "fusion_plan", None
        )
        estimated_cost = None
        if self._check != "off":
            from repro.check.costcheck import estimate_moa_cost

            estimated_cost = estimate_moa_cost(expr)
        return MilPlan(
            proc_name,
            source,
            tuple(inputs),
            fusion_plan,
            estimated_cost,
            equivalence,
        )

    def _emit_select(self, tmp: str, src: str, op: str, value: Any) -> str:
        """Emit one ``mselect`` step. Overridable so translation-validation
        tests can deliberately mis-emit and watch EQ002 catch it."""
        return f"VAR {tmp} := mselect({src}, {_quote(op)}, {_literal(value)});"

    def _validate(
        self, expr: Expr, source: str, proc_name: str, inputs: list[str]
    ) -> Any:
        """Translation validation (EQ001/EQ002/EQ003); runs before the plan
        is registered, so a non-equivalent plan never reaches the kernel."""
        if self._check == "off":
            return None
        from repro.check.equivcheck import validate_translation
        from repro.errors import MoaCheckError

        certificate, report = validate_translation(
            expr, source, proc_name, inputs, source="<moa-plan>"
        )
        self.diagnostics.extend(report)
        if self._check in ("error", "sanitize"):
            report.raise_if_errors("Moa plan translation", MoaCheckError)
        return certificate

    def _precheck(self, expr: Expr) -> None:
        if self._check == "off":
            return
        # imported lazily: repro.check.moacheck imports repro.moa.algebra
        from repro.check.costcheck import check_moa_cost
        from repro.check.flowcheck import check_moa_flow
        from repro.check.moacheck import MoaChecker
        from repro.errors import MoaCheckError

        report = MoaChecker(self._extensions, allow_free_vars=True).check(
            expr, source="<moa-plan>"
        )
        report.extend(check_moa_flow(expr, source="<moa-plan>"))
        report.extend(check_moa_cost(expr, source="<moa-plan>"))
        self.diagnostics.extend(report)
        if self._check in ("error", "sanitize"):
            report.raise_if_errors("Moa plan", MoaCheckError)

    def execute(self, plan: MilPlan, **inputs: BAT) -> Any:
        """Run a compiled plan with the named input BATs."""
        missing = [name for name in plan.input_names if name not in inputs]
        if missing:
            raise MoaError(f"plan {plan.proc_name} is missing inputs {missing}")
        args = [inputs[name] for name in plan.input_names]
        return self._kernel.call(plan.proc_name, args)

    def run(self, expr: Expr, **inputs: BAT) -> Any:
        """Compile and execute in one step."""
        return self.execute(self.compile(expr), **inputs)


def _fresh(counter: list[int]) -> str:
    name = f"t{counter[0]}"
    counter[0] += 1
    return name


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def _literal(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return _quote(value)
    return repr(float(value)) if isinstance(value, float) else repr(value)


def builtin_moa_plans() -> dict[str, Expr]:
    """The repository's built-in Moa plans, by name.

    Every plan here must compile to an EQ001-certified MIL procedure —
    ``python -m repro.check`` (pass 8) and the equivcheck test suite
    enforce it. ``excitementGate`` is the Fig. 4 ``parallelHmm`` path: the
    selection over the excitement feature BAT whose survivors are
    quantized into the observation sequence fed to the parallel HMM
    evaluation PROC.
    """
    return {
        # Fig. 4 path: gate the excitement feature before quantize -> hmmP
        "excitementGate": Select(
            "e", Cmp(">", Var("e"), Const(0.6)), Var("excitement")
        ),
        # normalized speed delta used by the overtaking detector
        "speedDelta": Map(
            "s", Arith("-", Var("s"), Const(0.5)), Var("speed")
        ),
        # mean excitement over a segment (highlight ranking)
        "avgExcitement": Aggregate("avg", Var("excitement")),
        # segments interesting on either axis: loud crowd or hard braking
        "interestingSegments": SetOp(
            "union",
            Select("e", Cmp(">=", Var("e"), Const(0.8)), Var("excitement")),
            Select("b", Cmp("<", Var("b"), Const(0.2)), Var("brake")),
        ),
        # stacked gate: two commuting selections then a rescale
        "replayCandidates": Map(
            "x",
            Arith("*", Var("x"), Const(100.0)),
            Select(
                "e",
                Cmp("<=", Var("e"), Const(0.95)),
                Select("e", Cmp(">", Var("e"), Const(0.6)), Var("excitement")),
            ),
        ),
    }
