"""The Moa object algebra: expressions and their evaluator.

Moa [16] is a structural object algebra: operators like ``map``, ``select``,
``join``, ``nest``/``unnest`` and aggregates operate on values built from the
set/tuple/object primitives. The paper enriches this algebra with the Cobra
video model and four extensions (video processing, HMM, DBN, rules) whose
operators appear inside algebra expressions (Fig. 5a shows a DBN extension
operation at the Moa level).

This module gives the algebra a concrete form:

* an expression AST (:class:`Expr` subclasses),
* an environment-based evaluator (:func:`evaluate`),
* an extension operator registry (:class:`ExtensionRegistry` lives in
  :mod:`repro.moa.extension`; ``Apply`` nodes call into it).

Expressions bind iteration variables by name, e.g.::

    Select("c", Cmp(">", Field(Var("c"), "speed"), Const(300.0)), Var("cars"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import MoaError, MoaTypeError
from repro.moa.extension import ExtensionRegistry
from repro.resilience import cancel_checkpoint

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Field",
    "MakeTuple",
    "Cmp",
    "Arith",
    "BoolOp",
    "Not",
    "Map",
    "Select",
    "Join",
    "Semijoin",
    "Nest",
    "Unnest",
    "Aggregate",
    "SetOp",
    "The",
    "Apply",
    "evaluate",
]


class Expr:
    """Base class for Moa expressions (plain AST; evaluation is external)."""


@dataclass(frozen=True)
class Const(Expr):
    """A literal value (atomic, tuple payload, or set payload)."""

    value: Any


@dataclass(frozen=True)
class Var(Expr):
    """Reference to a bound variable or a named input collection."""

    name: str


@dataclass(frozen=True)
class Field(Expr):
    """Tuple field projection: ``Field(Var("t"), "speed")``."""

    source: Expr
    name: str


@dataclass(frozen=True)
class MakeTuple(Expr):
    """Construct a tuple payload from named sub-expressions."""

    fields: tuple[tuple[str, Expr], ...]

    @staticmethod
    def of(**fields: Expr) -> "MakeTuple":
        return MakeTuple(tuple(fields.items()))


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison: op in {=, !=, <, <=, >, >=}."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Arith(Expr):
    """Arithmetic: op in {+, -, *, /}."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    """Short-circuit boolean combination: op in {and, or}."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class Map(Expr):
    """``map(λvar. body, source)`` — transform every element of a set."""

    var: str
    body: Expr
    source: Expr


@dataclass(frozen=True)
class Select(Expr):
    """``select(λvar. pred, source)`` — keep elements satisfying pred."""

    var: str
    pred: Expr
    source: Expr


@dataclass(frozen=True)
class Join(Expr):
    """Theta-join producing ``result`` tuples for matching pairs."""

    left_var: str
    right_var: str
    pred: Expr
    left: Expr
    right: Expr
    result: Expr


@dataclass(frozen=True)
class Semijoin(Expr):
    """Keep left elements that match at least one right element."""

    left_var: str
    right_var: str
    pred: Expr
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Nest(Expr):
    """Group a set of tuples by key fields, nesting the rest.

    Produces tuples with the key fields plus ``group_field`` holding the set
    of residual tuples.
    """

    source: Expr
    keys: tuple[str, ...]
    group_field: str


@dataclass(frozen=True)
class Unnest(Expr):
    """Flatten a nested set field back into the parent tuples."""

    source: Expr
    set_field: str


@dataclass(frozen=True)
class Aggregate(Expr):
    """Aggregate over a set: kind in {count, sum, min, max, avg}."""

    kind: str
    source: Expr


@dataclass(frozen=True)
class SetOp(Expr):
    """Set combination: op in {union, diff, intersect}."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class The(Expr):
    """Extract the single element of a singleton set."""

    source: Expr


@dataclass(frozen=True)
class Apply(Expr):
    """Invoke an extension operator: ``Apply("dbn", "infer", (arg, ...))``."""

    extension: str
    operator: str
    args: tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

_CMP: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def evaluate(
    expr: Expr,
    env: Mapping[str, Any] | None = None,
    extensions: ExtensionRegistry | None = None,
) -> Any:
    """Evaluate a Moa expression.

    Args:
        expr: the expression tree.
        env: named inputs (collections and scalars) visible to ``Var``.
        extensions: registry resolving ``Apply`` nodes; optional when the
            expression uses none.

    Returns:
        Python payloads: scalars, dict tuples, and list sets.
    """
    scope = dict(env or {})
    return _eval(expr, scope, extensions)


def _eval(
    expr: Expr, env: dict[str, Any], extensions: ExtensionRegistry | None
) -> Any:
    match expr:
        case Const(value=value):
            return value
        case Var(name=name):
            if name not in env:
                raise MoaError(f"unbound Moa variable {name!r}")
            return env[name]
        case Field(source=source, name=name):
            record = _eval(source, env, extensions)
            if not isinstance(record, Mapping):
                raise MoaTypeError(f"field access {name!r} on non-tuple {record!r}")
            if name not in record:
                raise MoaTypeError(
                    f"tuple has no field {name!r}; fields: {sorted(record)}"
                )
            return record[name]
        case MakeTuple(fields=fields):
            return {name: _eval(sub, env, extensions) for name, sub in fields}
        case Cmp(op=op, left=left, right=right):
            if op not in _CMP:
                raise MoaError(f"unknown comparison {op!r}")
            return _CMP[op](_eval(left, env, extensions), _eval(right, env, extensions))
        case Arith(op=op, left=left, right=right):
            if op not in _ARITH:
                raise MoaError(f"unknown arithmetic op {op!r}")
            return _ARITH[op](
                _eval(left, env, extensions), _eval(right, env, extensions)
            )
        case BoolOp(op=op, left=left, right=right):
            lhs = bool(_eval(left, env, extensions))
            if op == "and":
                return lhs and bool(_eval(right, env, extensions))
            if op == "or":
                return lhs or bool(_eval(right, env, extensions))
            raise MoaError(f"unknown boolean op {op!r}")
        case Not(operand=operand):
            return not _eval(operand, env, extensions)
        case Map(var=var, body=body, source=source):
            out = []
            for element in _as_set(_eval(source, env, extensions)):
                cancel_checkpoint("moa.map")
                out.append(_eval(body, {**env, var: element}, extensions))
            return out
        case Select(var=var, pred=pred, source=source):
            out = []
            for element in _as_set(_eval(source, env, extensions)):
                cancel_checkpoint("moa.select")
                if _eval(pred, {**env, var: element}, extensions):
                    out.append(element)
            return out
        case Join(
            left_var=lv, right_var=rv, pred=pred, left=left, right=right, result=result
        ):
            left_set = _as_set(_eval(left, env, extensions))
            right_set = _as_set(_eval(right, env, extensions))
            out = []
            for a in left_set:
                cancel_checkpoint("moa.join")
                for b in right_set:
                    bound = {**env, lv: a, rv: b}
                    if _eval(pred, bound, extensions):
                        out.append(_eval(result, bound, extensions))
            return out
        case Semijoin(left_var=lv, right_var=rv, pred=pred, left=left, right=right):
            left_set = _as_set(_eval(left, env, extensions))
            right_set = _as_set(_eval(right, env, extensions))
            return [
                a
                for a in left_set
                if any(
                    _eval(pred, {**env, lv: a, rv: b}, extensions) for b in right_set
                )
            ]
        case Nest(source=source, keys=keys, group_field=group_field):
            return _nest(_as_set(_eval(source, env, extensions)), keys, group_field)
        case Unnest(source=source, set_field=set_field):
            out = []
            for record in _as_set(_eval(source, env, extensions)):
                if set_field not in record:
                    raise MoaTypeError(f"tuple lacks nested field {set_field!r}")
                for inner in _as_set(record[set_field]):
                    merged = {k: v for k, v in record.items() if k != set_field}
                    if isinstance(inner, Mapping):
                        merged.update(inner)
                    else:
                        merged[set_field] = inner
                    out.append(merged)
            return out
        case Aggregate(kind=kind, source=source):
            return _aggregate(kind, _as_set(_eval(source, env, extensions)))
        case SetOp(op=op, left=left, right=right):
            return _set_op(
                op,
                _as_set(_eval(left, env, extensions)),
                _as_set(_eval(right, env, extensions)),
            )
        case The(source=source):
            elements = _as_set(_eval(source, env, extensions))
            if len(elements) != 1:
                raise MoaError(f"THE applied to a set of {len(elements)} elements")
            return elements[0]
        case Apply(extension=extension, operator=operator, args=args):
            if extensions is None:
                raise MoaError(
                    f"expression uses extension {extension!r} but no registry given"
                )
            values = [_eval(a, env, extensions) for a in args]
            return extensions.invoke(extension, operator, values)
        case _:
            raise MoaError(f"cannot evaluate expression node {expr!r}")


def _as_set(value: Any) -> Sequence[Any]:
    if isinstance(value, (list, tuple)):
        return value
    raise MoaTypeError(f"{value!r} is not a set payload")


def _nest(
    records: Sequence[Any], keys: tuple[str, ...], group_field: str
) -> list[dict[str, Any]]:
    groups: dict[tuple[Any, ...], list[Any]] = {}
    order: list[tuple[Any, ...]] = []
    for record in records:
        if not isinstance(record, Mapping):
            raise MoaTypeError("nest needs a set of tuples")
        key = tuple(record[k] for k in keys)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append({k: v for k, v in record.items() if k not in keys})
    return [
        {**dict(zip(keys, key)), group_field: groups[key]} for key in order
    ]


def _aggregate(kind: str, elements: Sequence[Any]) -> Any:
    if kind == "count":
        return len(elements)
    if not elements:
        raise MoaError(f"aggregate {kind!r} over an empty set")
    if kind == "sum":
        return sum(elements)
    if kind == "min":
        return min(elements)
    if kind == "max":
        return max(elements)
    if kind == "avg":
        return sum(elements) / len(elements)
    raise MoaError(f"unknown aggregate {kind!r}")


def _set_op(op: str, left: Sequence[Any], right: Sequence[Any]) -> list[Any]:
    def freeze(x: Any) -> Any:
        if isinstance(x, Mapping):
            return tuple(sorted((k, freeze(v)) for k, v in x.items()))
        if isinstance(x, (list, tuple)):
            return tuple(freeze(v) for v in x)
        return x

    right_keys = {freeze(x) for x in right}
    if op == "union":
        left_keys = {freeze(x) for x in left}
        return list(left) + [x for x in right if freeze(x) not in left_keys]
    if op == "diff":
        return [x for x in left if freeze(x) not in right_keys]
    if op == "intersect":
        return [x for x in left if freeze(x) in right_keys]
    raise MoaError(f"unknown set op {op!r}")
