"""Moa structure types.

The Moa object algebra accepts all base (atom) types of the underlying
physical storage and combines them orthogonally with three structure
primitives: **set**, **tuple**, and **object** — the type system of [16]
(Boncz, Wilschut, Kersten) that the paper uses at the logical level.

Types are immutable value objects; :func:`typecheck` verifies that a Python
payload conforms to a structure, which the algebra evaluator uses to keep the
logical level honest about what it passes down to BATs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import MoaTypeError
from repro.monet.atoms import ATOMS

__all__ = ["MoaType", "Atomic", "SetOf", "TupleOf", "ObjectOf", "typecheck"]


class MoaType:
    """Base class for Moa structure types."""

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Atomic(MoaType):
    """A base type drawn from the kernel atom registry (``int``, ``dbl``...)."""

    atom_name: str

    def __post_init__(self) -> None:
        if self.atom_name not in ATOMS:
            raise MoaTypeError(f"unknown atom type {self.atom_name!r}")

    def describe(self) -> str:
        return self.atom_name


@dataclass(frozen=True)
class SetOf(MoaType):
    """A homogeneous set (realized as a sequence; Moa sets are multisets)."""

    element: MoaType

    def describe(self) -> str:
        return f"SET<{self.element.describe()}>"


class TupleOf(MoaType):
    """A named-field record; field order is significant for display only."""

    def __init__(self, fields: Mapping[str, MoaType]):
        if not fields:
            raise MoaTypeError("TupleOf needs at least one field")
        self._fields = dict(fields)

    @property
    def fields(self) -> dict[str, MoaType]:
        return dict(self._fields)

    def field(self, name: str) -> MoaType:
        try:
            return self._fields[name]
        except KeyError:
            raise MoaTypeError(
                f"tuple has no field {name!r}; fields are {sorted(self._fields)}"
            ) from None

    def describe(self) -> str:
        inner = ", ".join(
            f"{name}: {ftype.describe()}" for name, ftype in self._fields.items()
        )
        return f"TUPLE<{inner}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleOf) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v.describe()) for k, v in self._fields.items())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class ObjectOf(MoaType):
    """An object: a class name plus a tuple-structured state.

    Objects carry identity (an oid at the physical level); in this model the
    identity lives in the payload as the ``"oid"`` entry that
    :func:`typecheck` requires.
    """

    class_name: str
    state: TupleOf

    def describe(self) -> str:
        return f"OBJECT<{self.class_name}: {self.state.describe()}>"


_PY_KINDS: dict[str, tuple[type, ...]] = {
    "oid": (int,),
    "void": (int,),
    "int": (int,),
    "flt": (float, int),
    "dbl": (float, int),
    "str": (str,),
    "bit": (bool,),
    "chr": (str,),
    "any": (object,),
}


def typecheck(value: Any, moa_type: MoaType) -> None:
    """Raise :class:`MoaTypeError` unless ``value`` conforms to ``moa_type``."""
    if isinstance(moa_type, Atomic):
        kinds = _PY_KINDS.get(moa_type.atom_name, (object,))
        if isinstance(value, bool) and moa_type.atom_name not in ("bit", "any"):
            raise MoaTypeError(f"bool {value!r} is not a {moa_type.atom_name} atom")
        if not isinstance(value, kinds):
            raise MoaTypeError(
                f"{value!r} is not a {moa_type.atom_name} atom"
            )
        return
    if isinstance(moa_type, SetOf):
        if not isinstance(value, (list, tuple)):
            raise MoaTypeError(f"{value!r} is not a set payload")
        for element in value:
            typecheck(element, moa_type.element)
        return
    if isinstance(moa_type, TupleOf):
        if not isinstance(value, Mapping):
            raise MoaTypeError(f"{value!r} is not a tuple payload")
        for name, ftype in moa_type.fields.items():
            if name not in value:
                raise MoaTypeError(f"tuple payload is missing field {name!r}")
            typecheck(value[name], ftype)
        return
    if isinstance(moa_type, ObjectOf):
        if not isinstance(value, Mapping) or "oid" not in value:
            raise MoaTypeError("object payloads need an 'oid' identity entry")
        typecheck(value["oid"], Atomic("oid"))
        typecheck({k: v for k, v in value.items() if k != "oid"}, moa_type.state)
        return
    raise MoaTypeError(f"unknown Moa type {moa_type!r}")
