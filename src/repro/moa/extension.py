"""Moa extensions: named operator bundles pluggable into the algebra.

The paper's logical level has four extensions — video processing / feature
extraction, HMM, DBN, and rules. Each defines Moa-level *structures and
operators*; each operator is supported at the physical level by a MIL
procedure or a MEL module command (Fig. 5 traces one DBN operation through
all three levels).

A :class:`MoaExtension` here declares:

* ``name`` — the extension name used by ``Apply`` nodes,
* ``operators()`` — logical-level operators as Python callables,
* ``monet_module()`` — the optional physical-level MEL module, which a
  :class:`repro.cobra.vdbms.CobraVDBMS` loads into its kernel so the same
  functionality is reachable from MIL.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Sequence

from repro.errors import MoaError, MoaNameError
from repro.faults import resolve_injector
from repro.monet.module import MonetModule

__all__ = ["MoaExtension", "ExtensionRegistry"]


class MoaExtension:
    """Base class for logical-level extensions."""

    #: Extension name, used as the namespace in ``Apply`` nodes.
    name: str = "extension"

    def operators(self) -> dict[str, Callable[..., Any]]:
        """Return the operator table (operator name -> callable)."""
        raise NotImplementedError

    def monet_module(self) -> MonetModule | None:
        """Physical-level counterpart module, if the extension has one."""
        return None


class ExtensionRegistry:
    """Holds loaded extensions and dispatches ``Apply`` invocations."""

    def __init__(self, faults: Any = None) -> None:
        self._extensions: dict[str, MoaExtension] = {}
        self.faults = resolve_injector(faults)

    def register(self, extension: MoaExtension) -> None:
        if extension.name in self._extensions:
            raise MoaError(f"extension {extension.name!r} already registered")
        self._extensions[extension.name] = extension

    def get(self, name: str) -> MoaExtension:
        try:
            return self._extensions[name]
        except KeyError:
            raise MoaNameError(
                f"unknown extension {name!r}; available: {self.names()}",
                suggestions=difflib.get_close_matches(name, self.names()),
            ) from None

    def names(self) -> list[str]:
        return sorted(self._extensions)

    def operators(self, extension: str) -> list[str]:
        return sorted(self.get(extension).operators())

    def invoke(self, extension: str, operator: str, args: Sequence[Any]) -> Any:
        table = self.get(extension).operators()
        if operator not in table:
            raise MoaNameError(
                f"extension {extension!r} has no operator {operator!r}; "
                f"available: {sorted(table)}",
                suggestions=difflib.get_close_matches(operator, sorted(table)),
            )
        if self.faults.enabled:
            self.faults.on_call(f"moa.invoke:{extension}.{operator}")
        return table[operator](*args)
