"""Evidence sequences for DBN inference.

The fusion layer produces, per evidence node, either *hard* state sequences
(discretized features) or *soft* likelihood sequences (the paper's
"probabilistic values in range from zero to one" entering the evidence
nodes as virtual evidence). :class:`EvidenceSequence` validates and aligns
them for the engines.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.dbn.template import DbnTemplate
from repro.errors import InferenceError

__all__ = ["EvidenceSequence"]


class EvidenceSequence:
    """Aligned evidence for all observed nodes of a template.

    Args:
        template: the DBN the evidence belongs to.
        hard: {node: int array of shape (T,)} — hard states.
        soft: {node: float array of shape (T, cardinality)} — per-step
            likelihood vectors (need not normalize; all-ones = no evidence).
        masked: names of observed nodes whose evidence is *absent* (their
            modality failed to extract); they must appear in ``soft`` with
            uninformative all-ones likelihoods. Purely an availability
            annotation — inference already treats all-ones as "no
            evidence" — carried so results can report what was missing.

    Every observed node of the template must appear in exactly one of the
    two mappings, and all sequences must share the same length T.
    """

    def __init__(
        self,
        template: DbnTemplate,
        hard: Mapping[str, Sequence[int] | np.ndarray] | None = None,
        soft: Mapping[str, np.ndarray] | None = None,
        masked: Sequence[str] = (),
    ):
        hard = dict(hard or {})
        soft = dict(soft or {})
        self.masked: tuple[str, ...] = tuple(masked)
        if bad := set(self.masked) - set(soft):
            raise InferenceError(
                f"masked nodes must carry all-ones soft evidence: {sorted(bad)}"
            )
        observed = set(template.observed_nodes())
        given = set(hard) | set(soft)
        if set(hard) & set(soft):
            raise InferenceError(
                f"nodes given both hard and soft evidence: {set(hard) & set(soft)}"
            )
        if given != observed:
            missing = observed - given
            extra = given - observed
            raise InferenceError(
                f"evidence mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        lengths = set()
        self._hard: dict[str, np.ndarray] = {}
        for node, values in hard.items():
            arr = np.asarray(values, dtype=np.int64)
            if arr.ndim != 1:
                raise InferenceError(f"hard evidence for {node!r} must be 1-D")
            card = template.cardinality(node)
            if arr.size and (arr.min() < 0 or arr.max() >= card):
                raise InferenceError(
                    f"hard evidence for {node!r} out of range [0, {card - 1}]"
                )
            lengths.add(arr.shape[0])
            self._hard[node] = arr
        self._soft: dict[str, np.ndarray] = {}
        for node, values in soft.items():
            arr = np.asarray(values, dtype=np.float64)
            card = template.cardinality(node)
            if arr.ndim != 2 or arr.shape[1] != card:
                raise InferenceError(
                    f"soft evidence for {node!r} must have shape (T, {card})"
                )
            if np.any(arr < 0):
                raise InferenceError(f"soft evidence for {node!r} is negative")
            lengths.add(arr.shape[0])
            self._soft[node] = arr
        if len(lengths) != 1:
            raise InferenceError(f"evidence sequences disagree on length: {lengths}")
        self._length = lengths.pop()
        if self._length == 0:
            raise InferenceError("evidence sequences are empty")
        self._template = template

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def template(self) -> DbnTemplate:
        return self._template

    def is_hard(self, node: str) -> bool:
        return node in self._hard

    def all_hard(self) -> bool:
        return not self._soft

    def hard_values(self, node: str) -> np.ndarray:
        try:
            return self._hard[node]
        except KeyError:
            raise InferenceError(f"node {node!r} has no hard evidence") from None

    def likelihoods(self, node: str) -> np.ndarray:
        """Per-step likelihood matrix (T, card); hard evidence is one-hot."""
        if node in self._soft:
            return self._soft[node]
        card = self._template.cardinality(node)
        values = self.hard_values(node)
        out = np.zeros((self._length, card))
        out[np.arange(self._length), values] = 1.0
        return out

    def slice(self, start: int, stop: int) -> "EvidenceSequence":
        """Sub-sequence [start, stop) — used to segment training data."""
        if not 0 <= start < stop <= self._length:
            raise InferenceError(
                f"bad slice [{start}, {stop}) for length {self._length}"
            )
        return EvidenceSequence(
            self._template,
            {n: v[start:stop] for n, v in self._hard.items()},
            {n: v[start:stop] for n, v in self._soft.items()},
            masked=self.masked,
        )

    def segments(self, segment_length: int) -> list["EvidenceSequence"]:
        """Chop into consecutive segments (the paper trains DBNs on a 300 s
        sequence divided into 12 segments of 25 s each)."""
        if segment_length < 1:
            raise InferenceError("segment_length must be >= 1")
        out = []
        for start in range(0, self._length - segment_length + 1, segment_length):
            out.append(self.slice(start, start + segment_length))
        return out
