"""Dynamic Bayesian network templates (2-TBN specification).

"A time-slice of a dynamic Bayesian network is used to represent each
snapshot of the evolving temporal process. A DBN satisfies the first order
Markov property: each state at time t may depend on one or more states at
time t-1 and/or some states in the same time instant." (§4)

A :class:`DbnTemplate` captures exactly that: per-slice nodes with *intra*
(same-slice) edges, *inter* (t-1 → t) edges, an initial-slice parameterset
and a transition parameterset. Observed (evidence) nodes are marked so the
inference engines know what arrives from the feature extractors.

Parent ordering convention for CPD tables:

* initial CPD of node X — parents are X's intra-parents, in the order the
  edges were added;
* transition CPD of node X — intra-parents first (edge-add order), then
  inter-parents (edge-add order, referring to the *previous* slice).

:meth:`DbnTemplate.initial_parents` / :meth:`transition_parents` return the
exact lists so callers never have to guess.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bayes.cpd import TabularCpd
from repro.bayes.graph import Dag
from repro.errors import CpdError, GraphStructureError

__all__ = ["DbnTemplate", "prev", "at_slice"]


def prev(name: str) -> str:
    """Label a previous-slice node in parent lists ('EA' -> 'EA[t-1]')."""
    return f"{name}[t-1]"


def at_slice(name: str, t: int) -> str:
    """Concrete unrolled node name ('EA', 3) -> 'EA@3'."""
    return f"{name}@{t}"


class DbnTemplate:
    """Specification of a DBN as a two-slice temporal Bayesian network."""

    def __init__(self) -> None:
        self._cards: dict[str, int] = {}
        self._observed: set[str] = set()
        self._intra = Dag()
        self._inter_edges: list[tuple[str, str]] = []
        self._initial_cpds: dict[str, TabularCpd] = {}
        self._transition_cpds: dict[str, TabularCpd] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def add_node(self, name: str, cardinality: int, observed: bool = False) -> None:
        """Declare a per-slice node; ``observed`` marks evidence nodes."""
        if name in self._cards:
            raise GraphStructureError(f"node {name!r} already declared")
        if cardinality < 2:
            raise GraphStructureError(
                f"node {name!r} needs cardinality >= 2, got {cardinality}"
            )
        self._cards[name] = int(cardinality)
        self._intra.add_node(name)
        if observed:
            self._observed.add(name)

    def add_intra_edge(self, parent: str, child: str) -> None:
        """Edge within one time slice."""
        self._require(parent)
        self._require(child)
        self._intra.add_edge(parent, child)

    def add_inter_edge(self, parent: str, child: str) -> None:
        """Edge from ``parent`` at slice t-1 to ``child`` at slice t."""
        self._require(parent)
        self._require(child)
        if (parent, child) not in self._inter_edges:
            self._inter_edges.append((parent, child))

    def _require(self, name: str) -> None:
        if name not in self._cards:
            raise GraphStructureError(f"unknown node {name!r}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        return list(self._cards)

    def cardinality(self, name: str) -> int:
        self._require(name)
        return self._cards[name]

    def is_observed(self, name: str) -> bool:
        self._require(name)
        return name in self._observed

    def hidden_nodes(self) -> list[str]:
        """Non-evidence nodes, in declaration order (the belief interface)."""
        return [n for n in self._cards if n not in self._observed]

    def observed_nodes(self) -> list[str]:
        return [n for n in self._cards if n in self._observed]

    def intra_parents(self, name: str) -> list[str]:
        return self._intra.parents(name)

    def inter_parents(self, name: str) -> list[str]:
        return [p for p, c in self._inter_edges if c == name]

    def inter_edges(self) -> list[tuple[str, str]]:
        return list(self._inter_edges)

    def initial_parents(self, name: str) -> list[str]:
        """Parent order for the initial CPD table."""
        return self.intra_parents(name)

    def transition_parents(self, name: str) -> list[str]:
        """Parent order for the transition CPD table.

        Previous-slice parents appear with the :func:`prev` marker.
        """
        return self.intra_parents(name) + [prev(p) for p in self.inter_parents(name)]

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def set_initial_cpd(self, name: str, table: np.ndarray | Sequence) -> None:
        """Set P(X_0 | intra-parents at slice 0)."""
        self._require(name)
        parents = self.initial_parents(name)
        cards = [self._cards[p] for p in parents]
        self._initial_cpds[name] = TabularCpd(
            name, self._cards[name], table, parents, cards
        )

    def set_transition_cpd(self, name: str, table: np.ndarray | Sequence) -> None:
        """Set P(X_t | intra-parents at t, inter-parents at t-1)."""
        self._require(name)
        parents = self.transition_parents(name)
        cards = [
            self._cards[p.removesuffix("[t-1]")] for p in parents
        ]
        self._transition_cpds[name] = TabularCpd(
            name, self._cards[name], table, parents, cards
        )

    def set_tied_cpd(self, name: str, table: np.ndarray | Sequence) -> None:
        """Set the same table as initial AND transition CPD.

        Only valid for nodes with no inter-parents (same parent set in both
        slices) — typically the evidence nodes.
        """
        if self.inter_parents(name):
            raise CpdError(
                f"node {name!r} has inter-parents; initial and transition "
                f"tables differ in shape, set them separately"
            )
        self.set_initial_cpd(name, table)
        self.set_transition_cpd(name, table)

    def initial_cpd(self, name: str) -> TabularCpd:
        self._require(name)
        try:
            return self._initial_cpds[name]
        except KeyError:
            raise CpdError(f"node {name!r} has no initial CPD") from None

    def transition_cpd(self, name: str) -> TabularCpd:
        self._require(name)
        try:
            return self._transition_cpds[name]
        except KeyError:
            raise CpdError(f"node {name!r} has no transition CPD") from None

    def randomize(self, rng: np.random.Generator, concentration: float = 1.0) -> None:
        """Random-initialize every CPD (EM starting point)."""
        for name in self._cards:
            init_parents = self.initial_parents(name)
            self.set_initial_cpd(
                name,
                TabularCpd.random(
                    name,
                    self._cards[name],
                    init_parents,
                    [self._cards[p] for p in init_parents],
                    rng=rng,
                    concentration=concentration,
                ).table,
            )
            trans_parents = self.transition_parents(name)
            self.set_transition_cpd(
                name,
                TabularCpd.random(
                    name,
                    self._cards[name],
                    trans_parents,
                    [self._cards[p.removesuffix('[t-1]')] for p in trans_parents],
                    rng=rng,
                    concentration=concentration,
                ).table,
            )

    def validate(self) -> None:
        """Check all CPDs are present and shapes line up."""
        for name in self._cards:
            initial = self.initial_cpd(name)
            transition = self.transition_cpd(name)
            if initial.parents != self.initial_parents(name):
                raise GraphStructureError(
                    f"{name!r}: initial CPD parents drifted from structure"
                )
            if transition.parents != self.transition_parents(name):
                raise GraphStructureError(
                    f"{name!r}: transition CPD parents drifted from structure"
                )
        # the intra-slice graph must already be acyclic (Dag enforces it);
        # also reject hidden nodes that depend on observed nodes *upstream*
        # of other hidden nodes in ways the engines support — everything is
        # allowed structurally, so only topological sanity is checked here.
        self._intra.topological_order()

    def copy(self) -> "DbnTemplate":
        out = DbnTemplate()
        for name, card in self._cards.items():
            out.add_node(name, card, observed=name in self._observed)
        for parent, child in self._intra.edges():
            out.add_intra_edge(parent, child)
        for parent, child in self._inter_edges:
            out.add_inter_edge(parent, child)
        for name, cpd in self._initial_cpds.items():
            out.set_initial_cpd(name, cpd.table.copy())
        for name, cpd in self._transition_cpds.items():
            out.set_transition_cpd(name, cpd.table.copy())
        return out
