"""Dynamic Bayesian networks: 2-TBN templates, compiled inference
(interface filtering/smoothing with optional Boyen-Koller clustering),
EM learning, unrolling, and sampling."""

from repro.dbn.compiled import (
    CompiledDbn,
    FilterResult,
    SmoothResult,
    project_onto_clusters,
)
from repro.dbn.evidence import EvidenceSequence
from repro.dbn.learn import DbnEmResult, dbn_em
from repro.dbn.simulate import sample_sequence
from repro.dbn.template import DbnTemplate, at_slice, prev
from repro.dbn.unroll import unroll

__all__ = [
    "CompiledDbn",
    "FilterResult",
    "SmoothResult",
    "project_onto_clusters",
    "EvidenceSequence",
    "DbnEmResult",
    "dbn_em",
    "sample_sequence",
    "DbnTemplate",
    "at_slice",
    "prev",
    "unroll",
]
