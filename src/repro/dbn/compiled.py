"""Compiled DBN inference: fast filtering and smoothing over the interface.

The paper performs DBN inference with "the modified Boyen-Koller algorithm
for approximate inference" (§4), treating "all nodes from one time slice as
belonging to the same cluster" by default — which makes the belief state the
exact joint over the per-slice hidden nodes (the *interface*). This module
compiles a :class:`~repro.dbn.template.DbnTemplate` into that form:

* the hidden interface is flattened into a single super-state of size S,
* per-step dynamics become an (S, S) matrix — one per configuration of the
  evidence variables that participate as parents of hidden nodes (empty for
  the paper's Fig. 7a/7c; the Fig. 7b structure routes evidence straight
  into the query node and so selects a matrix per step),
* leaf evidence CPDs become (S, card) observation matrices combined into a
  per-step likelihood vector.

Filtering then runs like an HMM over S states, and the Boyen-Koller
approximation is a per-step projection of the belief onto a product of
cluster marginals (:func:`project_onto_clusters`) — with one cluster the
recursion is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools
from typing import Sequence

import numpy as np

from repro.bayes.factor import Factor
from repro.dbn.evidence import EvidenceSequence
from repro.dbn.template import DbnTemplate
from repro.errors import InferenceError
from repro.resilience import cancel_checkpoint

__all__ = ["CompiledDbn", "FilterResult", "SmoothResult", "project_onto_clusters"]

#: Hard cap on (configurations x S x S) table entries per slice model.
_MAX_TABLE_ENTRIES = 32_000_000

_CUR = "cur"
_PREV = "prev"


def _cur(name: str) -> tuple[str, str]:
    return (_CUR, name)


def _prev(name: str) -> tuple[str, str]:
    return (_PREV, name)


@dataclass
class FilterResult:
    """Filtered (forward) beliefs.

    Attributes:
        gamma: filtered posteriors over the interface, shape (T, S).
        log_likelihood: log P(e_{1:T}) under the (possibly projected) model.
    """

    gamma: np.ndarray
    log_likelihood: float


@dataclass
class SmoothResult:
    """Smoothed beliefs plus the sufficient statistics EM needs.

    Attributes:
        gamma: smoothed posteriors over the interface, shape (T, S).
        log_likelihood: log P(e_{1:T}).
        xi_by_config: expected transition counts P(I_{t-1}, I_t | e) summed
            over the steps whose coupling-evidence configuration index was
            ``cfg`` — keyed by cfg (always {0: total} when the model has no
            coupling evidence).
        initial_config: configuration index of the initial slice.
    """

    gamma: np.ndarray
    log_likelihood: float
    xi_by_config: dict[int, np.ndarray]
    initial_config: int


def project_onto_clusters(
    belief: np.ndarray,
    hidden: Sequence[str],
    cards: Sequence[int],
    clusters: Sequence[Sequence[str]],
) -> np.ndarray:
    """Boyen-Koller projection: replace a joint belief by the product of its
    cluster marginals.

    Args:
        belief: flat joint over the interface, shape (S,), need not be
            normalized.
        hidden: interface variable names (axis order of the flattening).
        cards: cardinalities aligned with ``hidden``.
        clusters: a partition of ``hidden``.

    Returns:
        The projected belief, normalized, shape (S,).
    """
    names = list(hidden)
    assigned = [h for cluster in clusters for h in cluster]
    if sorted(assigned) != sorted(names):
        raise InferenceError(
            f"clusters {clusters} are not a partition of the interface {names}"
        )
    shaped = belief.reshape(list(cards))
    total = shaped.sum()
    if total <= 0:
        raise InferenceError("cannot project a zero belief")
    result = np.ones_like(shaped)
    for cluster in clusters:
        positions = [names.index(h) for h in cluster]
        other_axes = tuple(i for i in range(len(names)) if i not in positions)
        marginal = shaped.sum(axis=other_axes) / total
        shape = [1] * len(names)
        for pos in positions:
            shape[pos] = cards[pos]
        # marginal axes are ordered by ascending original position
        result = result * marginal.reshape(shape)
    flat = result.reshape(-1)
    return flat / flat.sum()


class _SliceModel:
    """Compiled factors of one step (the initial slice or a transition)."""

    def __init__(self, template: DbnTemplate, transition: bool):
        self.hidden = template.hidden_nodes()
        self.cards = [template.cardinality(h) for h in self.hidden]
        self.n_states = int(np.prod(self.cards))
        self.transition = transition
        observed = set(template.observed_nodes())

        coupling: list[Factor] = []
        leaves: dict[str, Factor] = {}
        for name in template.nodes():
            cpd = template.transition_cpd(name) if transition else template.initial_cpd(name)
            rename: dict = {cpd.variable: _cur(name)}
            for parent in cpd.parents:
                if parent.endswith("[t-1]"):
                    rename[parent] = _prev(parent.removesuffix("[t-1]"))
                else:
                    rename[parent] = _cur(parent)
            factor = cpd.to_factor(rename)
            scope = factor.variables
            has_prev = any(tag == _PREV for tag, _ in scope)
            observed_vars = [v for v in scope if v[1] in observed]
            if name in observed and not has_prev and len(observed_vars) == 1:
                leaves[name] = factor
            else:
                coupling.append(factor)

        # Coupling-evidence variables, in a fixed (sorted) order.
        coupling_evidence: list[tuple[str, str]] = []
        for factor in coupling:
            for var in factor.variables:
                if var[1] in observed and var not in coupling_evidence:
                    coupling_evidence.append(var)
        coupling_evidence.sort()
        self.coupling_evidence = coupling_evidence
        self.coupling_cards = [
            template.cardinality(name) for _, name in coupling_evidence
        ]
        self.n_configs = int(np.prod(self.coupling_cards)) if coupling_evidence else 1

        per_state = self.n_states * (self.n_states if transition else 1)
        if self.n_configs * per_state > _MAX_TABLE_ENTRIES:
            raise InferenceError(
                f"compiled slice model too large: {self.n_configs} evidence "
                f"configurations x {per_state} state entries"
            )

        base = Factor.unit()
        for factor in coupling:
            base = base * factor
        # Pad with missing hidden variables so every config reduces to the
        # full interface scope.
        wanted: list[tuple[str, str]] = [_cur(h) for h in self.hidden]
        if transition:
            wanted = [_prev(h) for h in self.hidden] + wanted
        missing = [v for v in wanted if v not in base.variables]
        if missing:
            missing_cards = [template.cardinality(name) for _, name in missing]
            base = base * Factor(
                missing, missing_cards, np.ones(missing_cards)
            )

        tables = []
        configs = (
            itertools.product(*[range(c) for c in self.coupling_cards])
            if coupling_evidence
            else [()]
        )
        for config in configs:
            reduced = base.reduce(dict(zip(coupling_evidence, config)))
            aligned = reduced.transpose(wanted)
            if transition:
                tables.append(aligned.values.reshape(self.n_states, self.n_states))
            else:
                tables.append(aligned.values.reshape(self.n_states))
        self.tables = np.stack(tables)  # (n_cfg, S, S) or (n_cfg, S)

        # Leaf observation matrices: (S, card_f) per leaf evidence node.
        self.leaf_obs: dict[str, np.ndarray] = {}
        cur_scope = [_cur(h) for h in self.hidden]
        for name, factor in leaves.items():
            missing = [v for v in cur_scope if v not in factor.variables]
            padded = factor
            if missing:
                missing_cards = [template.cardinality(n) for _, n in missing]
                padded = factor * Factor(missing, missing_cards, np.ones(missing_cards))
            aligned = padded.transpose(cur_scope + [_cur(name)])
            self.leaf_obs[name] = aligned.values.reshape(
                self.n_states, template.cardinality(name)
            )

    # ------------------------------------------------------------------
    def config_weights(self, evidence: EvidenceSequence, steps: np.ndarray) -> np.ndarray:
        """Per-step weights over coupling configurations, shape (len(steps), n_cfg).

        For hard evidence the weights are one-hot (selecting a single
        matrix); soft evidence mixes matrices linearly, which is exactly
        Pearl virtual evidence followed by marginalizing the evidence node.
        """
        n = steps.shape[0]
        if not self.coupling_evidence:
            return np.ones((n, 1))
        weights = np.ones((n, self.n_configs))
        radices = np.ones(len(self.coupling_cards), dtype=np.int64)
        for i in range(len(self.coupling_cards) - 2, -1, -1):
            radices[i] = radices[i + 1] * self.coupling_cards[i + 1]
        for axis, (tag, name) in enumerate(self.coupling_evidence):
            offsets = steps - 1 if tag == _PREV else steps
            lik = evidence.likelihoods(name)[offsets]  # (n, card)
            card = self.coupling_cards[axis]
            # expand likelihood of this variable across configs
            config_states = (np.arange(self.n_configs) // radices[axis]) % card
            weights *= lik[:, config_states]
        return weights

    def step_tables(self, evidence: EvidenceSequence, steps: np.ndarray) -> np.ndarray:
        """Materialized per-step tables: (len(steps), S[, S])."""
        if not self.coupling_evidence:
            reps = [steps.shape[0]] + [1] * (self.tables.ndim - 1)
            return np.tile(self.tables[0][None, ...], reps)
        weights = self.config_weights(evidence, steps)
        return np.tensordot(weights, self.tables, axes=(1, 0))

    def config_indices(self, evidence: EvidenceSequence, steps: np.ndarray) -> np.ndarray:
        """Configuration index per step (requires hard coupling evidence)."""
        if not self.coupling_evidence:
            return np.zeros(steps.shape[0], dtype=np.int64)
        index = np.zeros(steps.shape[0], dtype=np.int64)
        for tag, name in self.coupling_evidence:
            if not evidence.is_hard(name):
                raise InferenceError(
                    f"coupling evidence node {name!r} must be hard evidence "
                    f"for configuration indexing (EM)"
                )
        radix = 1
        for axis in range(len(self.coupling_evidence) - 1, -1, -1):
            tag, name = self.coupling_evidence[axis]
            offsets = steps - 1 if tag == _PREV else steps
            index += evidence.hard_values(name)[offsets] * radix
            radix *= self.coupling_cards[axis]
        return index

    def likelihood_matrix(self, evidence: EvidenceSequence, steps: np.ndarray) -> np.ndarray:
        """Leaf-evidence likelihood per step, shape (len(steps), S)."""
        out = np.ones((steps.shape[0], self.n_states))
        for name, obs in self.leaf_obs.items():
            lik = evidence.likelihoods(name)[steps]  # (n, card)
            out *= lik @ obs.T
        return out


class CompiledDbn:
    """A DBN template compiled for fast filtering, smoothing and queries."""

    def __init__(self, template: DbnTemplate):
        template.validate()
        self.template = template
        self.hidden = template.hidden_nodes()
        self.cards = [template.cardinality(h) for h in self.hidden]
        self.n_states = int(np.prod(self.cards))
        self._initial = _SliceModel(template, transition=False)
        self._transition = _SliceModel(template, transition=True)

    # ------------------------------------------------------------------
    def filter(
        self,
        evidence: EvidenceSequence,
        clusters: Sequence[Sequence[str]] | None = None,
    ) -> FilterResult:
        """Forward (filtering) pass.

        Args:
            evidence: aligned evidence for all observed nodes.
            clusters: optional Boyen-Koller partition of the hidden nodes;
                omitted or a single cluster keeps the recursion exact.
        """
        t_len = len(evidence)
        steps = np.arange(t_len)
        project = clusters is not None and len(list(clusters)) > 1
        priors = self._initial.step_tables(evidence, steps[:1])[0]
        lik0 = self._initial.likelihood_matrix(evidence, steps[:1])[0]
        gamma = np.zeros((t_len, self.n_states))
        log_likelihood = 0.0

        alpha = priors * lik0
        scale = alpha.sum()
        if scale <= 0:
            raise InferenceError("evidence has zero probability at t=0")
        alpha /= scale
        log_likelihood += np.log(scale)
        if project:
            alpha = project_onto_clusters(alpha, self.hidden, self.cards, clusters)
        gamma[0] = alpha

        if t_len > 1:
            rest = steps[1:]
            tables = self._transition.step_tables(evidence, rest)
            liks = self._transition.likelihood_matrix(evidence, rest)
            for i, t in enumerate(rest):
                cancel_checkpoint("dbn.filter")
                alpha = (alpha @ tables[i]) * liks[i]
                scale = alpha.sum()
                if scale <= 0:
                    raise InferenceError(f"evidence has zero probability at t={t}")
                alpha /= scale
                log_likelihood += np.log(scale)
                if project:
                    alpha = project_onto_clusters(
                        alpha, self.hidden, self.cards, clusters
                    )
                gamma[t] = alpha
        return FilterResult(gamma, float(log_likelihood))

    def smooth(self, evidence: EvidenceSequence) -> SmoothResult:
        """Forward-backward pass with transition statistics for EM."""
        t_len = len(evidence)
        steps = np.arange(t_len)
        priors = self._initial.step_tables(evidence, steps[:1])[0]
        lik0 = self._initial.likelihood_matrix(evidence, steps[:1])[0]

        alphas = np.zeros((t_len, self.n_states))
        scales = np.zeros(t_len)
        alpha = priors * lik0
        scales[0] = alpha.sum()
        if scales[0] <= 0:
            raise InferenceError("evidence has zero probability at t=0")
        alphas[0] = alpha / scales[0]

        tables = liks = None
        if t_len > 1:
            rest = steps[1:]
            tables = self._transition.step_tables(evidence, rest)
            liks = self._transition.likelihood_matrix(evidence, rest)
            for i, t in enumerate(rest):
                cancel_checkpoint("dbn.smooth")
                alpha = (alphas[t - 1] @ tables[i]) * liks[i]
                scales[t] = alpha.sum()
                if scales[t] <= 0:
                    raise InferenceError(f"evidence has zero probability at t={t}")
                alphas[t] = alpha / scales[t]

        betas = np.zeros((t_len, self.n_states))
        betas[-1] = 1.0
        for t in range(t_len - 2, -1, -1):
            weighted = liks[t] * betas[t + 1]  # index t == step t+1 data
            betas[t] = (tables[t] @ weighted) / scales[t + 1]

        gamma = alphas * betas
        gamma /= gamma.sum(axis=1, keepdims=True)

        xi_by_config: dict[int, np.ndarray] = {}
        if t_len > 1:
            configs = self._transition.config_indices(evidence, steps[1:])
            for i, t in enumerate(range(1, t_len)):
                xi = (
                    alphas[t - 1][:, None]
                    * tables[i]
                    * (liks[i] * betas[t])[None, :]
                    / scales[t]
                )
                cfg = int(configs[i])
                if cfg not in xi_by_config:
                    xi_by_config[cfg] = np.zeros((self.n_states, self.n_states))
                xi_by_config[cfg] += xi
        initial_config = int(self._initial.config_indices(evidence, steps[:1])[0])
        return SmoothResult(
            gamma, float(np.log(scales).sum()), xi_by_config, initial_config
        )

    # ------------------------------------------------------------------
    def log_likelihood(self, evidence: EvidenceSequence) -> float:
        return self.filter(evidence).log_likelihood

    def marginal(self, gamma: np.ndarray, node: str) -> np.ndarray:
        """Project interface posteriors (T, S) onto one hidden node (T, card)."""
        if node not in self.hidden:
            raise InferenceError(f"{node!r} is not a hidden node")
        axis = self.hidden.index(node)
        shaped = gamma.reshape(gamma.shape[0], *self.cards)
        other = tuple(i + 1 for i in range(len(self.cards)) if i != axis)
        return shaped.sum(axis=other)

    def posterior_series(
        self,
        evidence: EvidenceSequence,
        node: str,
        smoothing: bool = False,
        clusters: Sequence[Sequence[str]] | None = None,
    ) -> np.ndarray:
        """P(node_t = s | evidence) for all t; filtered unless ``smoothing``."""
        if smoothing:
            gamma = self.smooth(evidence).gamma
        else:
            gamma = self.filter(evidence, clusters=clusters).gamma
        return self.marginal(gamma, node)

    def static_posterior_series(self, evidence: EvidenceSequence, node: str) -> np.ndarray:
        """Per-step posterior using ONLY the initial-slice (atemporal) model.

        This is the "plain BN applied independently at every step" baseline
        of the paper's Fig. 9a: no information flows between time steps, so
        the output is spiky where the DBN's is smooth.
        """
        t_len = len(evidence)
        steps = np.arange(t_len)
        priors = self._initial.step_tables(evidence, steps)  # (T, S)
        liks = self._initial.likelihood_matrix(evidence, steps)
        joint = priors * liks
        sums = joint.sum(axis=1, keepdims=True)
        if np.any(sums <= 0):
            raise InferenceError("evidence has zero probability at some step")
        gamma = joint / sums
        return self.marginal(gamma, node)
