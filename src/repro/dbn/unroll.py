"""Unrolling a DBN template into a static Bayesian network.

Unrolling is the reference semantics: a DBN over T slices *is* the static
network with one copy of every node per slice, initial CPDs at slice 0 and
transition CPDs elsewhere. The fast engines in :mod:`repro.dbn.compiled`
are validated against variable elimination on small unrolled networks.
"""

from __future__ import annotations

from repro.bayes.cpd import TabularCpd
from repro.bayes.network import BayesianNetwork
from repro.dbn.template import DbnTemplate, at_slice
from repro.errors import GraphStructureError

__all__ = ["unroll"]


def unroll(template: DbnTemplate, n_slices: int) -> BayesianNetwork:
    """Materialize ``n_slices`` copies of the template as one static BN.

    Node names become ``"X@t"`` (see :func:`repro.dbn.template.at_slice`).
    """
    if n_slices < 1:
        raise GraphStructureError("unroll needs at least one slice")
    template.validate()
    network = BayesianNetwork()
    for t in range(n_slices):
        for name in template.nodes():
            if t == 0:
                cpd = template.initial_cpd(name)
                parents = [at_slice(p, 0) for p in cpd.parents]
            else:
                cpd = template.transition_cpd(name)
                parents = []
                for p in cpd.parents:
                    if p.endswith("[t-1]"):
                        parents.append(at_slice(p.removesuffix("[t-1]"), t - 1))
                    else:
                        parents.append(at_slice(p, t))
            network.add_cpd(
                TabularCpd(
                    at_slice(name, t),
                    cpd.cardinality,
                    cpd.table,
                    parents,
                    cpd.parent_cards,
                )
            )
    network.validate()
    return network
