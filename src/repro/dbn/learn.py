"""EM parameter learning for DBNs.

"The parameters of a DBN can be learned from a training data set. As we work
with DBNs that have hidden states, for this purpose we employ the
Expectation Maximization (EM) learning algorithm" (§4). The paper learns on
short segments (e.g. a 300 s sequence divided into 12 segments of 25 s) and
infers on whole races.

The E-step uses the compiled interface smoother
(:meth:`repro.dbn.compiled.CompiledDbn.smooth`); the M-step re-estimates

* initial CPDs from slice-0 statistics,
* transition CPDs from the per-configuration expected transition counts,
* atemporal (typically evidence) CPDs from pooled statistics over all
  slices when ``tie_atemporal`` is set and the node has no inter-parents.

Hard evidence is required for learning (the fusion layer discretizes
features before training, exactly as thresholding does in the paper); soft
evidence remains available for inference-time queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dbn.compiled import CompiledDbn
from repro.dbn.evidence import EvidenceSequence
from repro.dbn.template import DbnTemplate
from repro.errors import LearningError

__all__ = ["DbnEmResult", "dbn_em"]


@dataclass
class DbnEmResult:
    """Outcome of a DBN EM run."""

    template: DbnTemplate
    log_likelihoods: list[float]
    converged: bool

    @property
    def iterations(self) -> int:
        return len(self.log_likelihoods)

    @property
    def final_log_likelihood(self) -> float:
        return self.log_likelihoods[-1] if self.log_likelihoods else float("-inf")


def dbn_em(
    template: DbnTemplate,
    sequences: Sequence[EvidenceSequence],
    max_iterations: int = 30,
    tolerance: float = 1e-3,
    pseudo_count: float = 0.05,
    tie_atemporal: bool = True,
    prior_strength: float = 0.0,
) -> DbnEmResult:
    """Fit DBN parameters by EM on hard-evidence training segments.

    Args:
        template: starting structure AND starting parameters (randomize
            first for a cold start).
        sequences: training segments; each must carry hard evidence for all
            observed nodes.
        max_iterations: cap on EM sweeps.
        tolerance: stop when total log-likelihood improves by less than
            ``tolerance * total_steps``.
        pseudo_count: uniform Dirichlet smoothing added to every expected
            count.
        tie_atemporal: estimate a single table for nodes whose initial and
            transition parent sets coincide (no inter-parents), pooling
            slice-0 and transition statistics — the natural choice for
            evidence CPDs.
        prior_strength: MAP smoothing toward the *starting* parameters:
            every column additionally receives ``prior_strength`` pseudo
            observations distributed as the initial table. Parent contexts
            never visited in training then keep their prior shape instead
            of collapsing to the uniform 0.5 that ``pseudo_count`` alone
            would give — important for richly connected transition models
            learned from short segments.

    Returns:
        :class:`DbnEmResult`; the log-likelihood trace is evaluated before
        each M-step, so it is non-decreasing.
    """
    if not sequences:
        raise LearningError("dbn_em needs at least one training sequence")
    for sequence in sequences:
        if not sequence.all_hard():
            raise LearningError(
                "dbn_em requires hard evidence; discretize features first"
            )
    if not template.hidden_nodes():
        return _fully_observed_fit(
            template, sequences, pseudo_count, tie_atemporal, prior_strength
        )
    current = template.copy()
    priors: dict[str, tuple[np.ndarray, np.ndarray]] | None = None
    if prior_strength > 0:
        priors = {
            name: (
                prior_strength * template.initial_cpd(name).table,
                prior_strength * template.transition_cpd(name).table,
            )
            for name in template.nodes()
        }
    total_steps = sum(len(s) for s in sequences)
    history: list[float] = []
    converged = False
    for _ in range(max_iterations):
        engine = CompiledDbn(current)
        accumulator = _CountAccumulator(current, engine, pseudo_count, priors)
        log_likelihood = 0.0
        for sequence in sequences:
            result = engine.smooth(sequence)
            log_likelihood += result.log_likelihood
            accumulator.absorb(sequence, result)
        history.append(log_likelihood)
        current = accumulator.m_step(tie_atemporal)
        if (
            len(history) >= 2
            and abs(history[-1] - history[-2]) < tolerance * total_steps
        ):
            converged = True
            break
    return DbnEmResult(current, history, converged)


def _fully_observed_fit(
    template: DbnTemplate,
    sequences: Sequence[EvidenceSequence],
    pseudo_count: float,
    tie_atemporal: bool,
    prior_strength: float,
) -> DbnEmResult:
    """Exact one-shot MLE/MAP when every node is observed.

    With no hidden variables the E-step is the data itself, so EM reduces
    to counting family configurations — no inference engine required (and
    the compiled engine would otherwise have to enumerate every evidence
    configuration).
    """
    fitted = template.copy()
    log_likelihood = _complete_log_likelihood(template, sequences)
    for name in template.nodes():
        icpd = template.initial_cpd(name)
        tcpd = template.transition_cpd(name)
        initial = np.full((icpd.cardinality, *icpd.parent_cards), pseudo_count)
        transition = np.full((tcpd.cardinality, *tcpd.parent_cards), pseudo_count)
        if prior_strength > 0:
            initial += prior_strength * icpd.table
            transition += prior_strength * tcpd.table
        for sequence in sequences:
            values = {
                node: sequence.hard_values(node) for node in template.nodes()
            }
            index0 = (int(values[name][0]),) + tuple(
                int(values[p][0]) for p in icpd.parents
            )
            initial[index0] += 1.0
            t_len = len(sequence)
            if t_len > 1:
                child = values[name][1:]
                parent_columns = []
                for p in tcpd.parents:
                    if p.endswith("[t-1]"):
                        parent_columns.append(values[p.removesuffix("[t-1]")][:-1])
                    else:
                        parent_columns.append(values[p][1:])
                np.add.at(transition, (child, *parent_columns), 1.0)
        tie = (
            tie_atemporal
            and not template.inter_parents(name)
            and initial.shape == transition.shape
        )
        if tie:
            pooled = _normalize(initial + transition - pseudo_count)
            fitted.set_initial_cpd(name, pooled)
            fitted.set_transition_cpd(name, pooled)
        else:
            fitted.set_initial_cpd(name, _normalize(initial))
            fitted.set_transition_cpd(name, _normalize(transition))
    return DbnEmResult(fitted, [log_likelihood], converged=True)


def _complete_log_likelihood(
    template: DbnTemplate, sequences: Sequence[EvidenceSequence]
) -> float:
    total = 0.0
    for sequence in sequences:
        values = {node: sequence.hard_values(node) for node in template.nodes()}
        for name in template.nodes():
            icpd = template.initial_cpd(name)
            p = icpd.table[
                (int(values[name][0]),)
                + tuple(int(values[q][0]) for q in icpd.parents)
            ]
            total += float(np.log(max(p, 1e-300)))
            tcpd = template.transition_cpd(name)
            if len(sequence) > 1:
                child = values[name][1:]
                parent_columns = []
                for q in tcpd.parents:
                    if q.endswith("[t-1]"):
                        parent_columns.append(values[q.removesuffix("[t-1]")][:-1])
                    else:
                        parent_columns.append(values[q][1:])
                probs = tcpd.table[(child, *parent_columns)]
                total += float(np.log(np.maximum(probs, 1e-300)).sum())
    return total


class _CountAccumulator:
    """Expected-count bookkeeping for one EM sweep."""

    def __init__(
        self,
        template: DbnTemplate,
        engine: CompiledDbn,
        pseudo_count: float,
        priors: dict[str, tuple[np.ndarray, np.ndarray]] | None = None,
    ):
        self._template = template
        self._engine = engine
        self._pseudo = pseudo_count
        self._priors = priors
        self._hidden = engine.hidden
        self._cards = engine.cards
        self._gamma_scope = [("cur", h) for h in self._hidden]
        self._xi_scope = [("prev", h) for h in self._hidden] + self._gamma_scope
        self._initial_counts: dict[str, np.ndarray] = {}
        self._transition_counts: dict[str, np.ndarray] = {}
        for name in template.nodes():
            icpd = template.initial_cpd(name)
            tcpd = template.transition_cpd(name)
            self._initial_counts[name] = np.zeros((icpd.cardinality, *icpd.parent_cards))
            self._transition_counts[name] = np.zeros(
                (tcpd.cardinality, *tcpd.parent_cards)
            )
        init_model = engine._initial
        trans_model = engine._transition
        self._init_coupling = init_model.coupling_evidence
        self._init_coupling_cards = init_model.coupling_cards
        self._trans_coupling = trans_model.coupling_evidence
        self._trans_coupling_cards = trans_model.coupling_cards
        self._leaf_nodes = set(trans_model.leaf_obs)

    # ------------------------------------------------------------------
    def absorb(self, evidence: EvidenceSequence, result) -> None:
        observed = set(self._template.observed_nodes())
        gamma = result.gamma  # (T, S)
        t_len = gamma.shape[0]

        # --- slice-0 families -------------------------------------------------
        init_values = _decode_config(
            result.initial_config, self._init_coupling_cards
        )
        init_evidence = dict(zip(self._init_coupling, init_values))
        for name in self._template.nodes():
            cpd = self._template.initial_cpd(name)
            family = [("cur", name)] + [("cur", p) for p in cpd.parents]
            self._add_family_counts(
                self._initial_counts[name],
                family,
                gamma[0],
                self._gamma_scope,
                self._cards,
                {**init_evidence, **_hard_at(evidence, observed, 0)},
            )

        # --- transition families (coupling path) -----------------------------
        for cfg, xi in result.xi_by_config.items():
            values = _decode_config(cfg, self._trans_coupling_cards)
            cfg_evidence = dict(zip(self._trans_coupling, values))
            xi_cards = self._cards + self._cards
            for name in self._template.nodes():
                if name in self._leaf_nodes:
                    continue  # handled vectorized below
                cpd = self._template.transition_cpd(name)
                family = [("cur", name)]
                for p in cpd.parents:
                    if p.endswith("[t-1]"):
                        family.append(("prev", p.removesuffix("[t-1]")))
                    else:
                        family.append(("cur", p))
                self._add_family_counts(
                    self._transition_counts[name],
                    family,
                    xi.reshape(-1),
                    self._xi_scope,
                    xi_cards,
                    cfg_evidence,
                )

        # --- leaf evidence families (vectorized over time) --------------------
        if t_len > 1:
            for name in self._leaf_nodes:
                cpd = self._template.transition_cpd(name)
                parent_positions = [self._hidden.index(p) for p in cpd.parents]
                gamma_pa = _marginalize_time(
                    gamma[1:], self._cards, parent_positions
                )  # (T-1, *pa_cards)
                values = evidence.hard_values(name)[1:]
                counts = self._transition_counts[name]
                for state in range(cpd.cardinality):
                    mask = values == state
                    if mask.any():
                        counts[state] += gamma_pa[mask].sum(axis=0)

    # ------------------------------------------------------------------
    def _add_family_counts(
        self,
        counts: np.ndarray,
        family: list[tuple[str, str]],
        flat: np.ndarray,
        scope: list[tuple[str, str]],
        scope_cards: list[int],
        evidence_values: dict[tuple[str, str], int],
    ) -> None:
        """Distribute a joint posterior into a family count table.

        ``flat`` is a posterior over ``scope``; family members either live
        in the scope (hidden) or have known values (``evidence_values``).
        """
        hidden_members = [v for v in family if v in scope]
        marginal = _marginalize_flat(flat, scope, scope_cards, hidden_members)
        index: list[object] = []
        for member in family:
            if member in hidden_members:
                index.append(slice(None))
            elif member in evidence_values:
                index.append(int(evidence_values[member]))
            else:
                raise LearningError(
                    f"family member {member!r} is neither hidden nor evidenced"
                )
        # marginal axes follow hidden_members order == their order in family
        counts[tuple(index)] += marginal

    def m_step(self, tie_atemporal: bool) -> DbnTemplate:
        out = self._template.copy()
        for name in self._template.nodes():
            initial = self._initial_counts[name] + self._pseudo
            transition = self._transition_counts[name] + self._pseudo
            if self._priors is not None:
                initial = initial + self._priors[name][0]
                transition = transition + self._priors[name][1]
            tie = (
                tie_atemporal
                and not self._template.inter_parents(name)
                and initial.shape == transition.shape
            )
            if tie:
                pooled = _normalize(initial + transition - self._pseudo)
                out.set_initial_cpd(name, pooled)
                out.set_transition_cpd(name, pooled)
            else:
                out.set_initial_cpd(name, _normalize(initial))
                out.set_transition_cpd(name, _normalize(transition))
        return out


def _normalize(counts: np.ndarray) -> np.ndarray:
    sums = counts.sum(axis=0, keepdims=True)
    cardinality = counts.shape[0]
    safe = np.where(sums > 0, sums, 1.0)
    table = counts / safe
    uniform = np.full_like(counts, 1.0 / cardinality)
    return np.where(sums > 0, table, uniform)


def _decode_config(config: int, cards: list[int]) -> list[int]:
    values = [0] * len(cards)
    remainder = config
    for axis in range(len(cards) - 1, -1, -1):
        values[axis] = remainder % cards[axis]
        remainder //= cards[axis]
    return values


def _hard_at(
    evidence: EvidenceSequence, observed: set[str], t: int
) -> dict[tuple[str, str], int]:
    return {("cur", name): int(evidence.hard_values(name)[t]) for name in observed}


def _marginalize_flat(
    flat: np.ndarray,
    scope: list[tuple[str, str]],
    cards: list[int],
    wanted: list[tuple[str, str]],
) -> np.ndarray:
    """Marginalize a flat joint over ``scope`` onto ``wanted`` (in order)."""
    if not wanted:
        return np.asarray(flat.sum())
    shaped = flat.reshape(cards)
    keep = [scope.index(v) for v in wanted]
    drop = tuple(i for i in range(len(scope)) if i not in keep)
    summed = shaped.sum(axis=drop)
    # remaining axes are in ascending scope position; reorder to wanted
    remaining = sorted(keep)
    order = [remaining.index(k) for k in keep]
    return summed.transpose(order)


def _marginalize_time(
    gamma: np.ndarray, cards: list[int], positions: list[int]
) -> np.ndarray:
    """Marginalize (T, S) posteriors onto given hidden positions, per step."""
    t_len = gamma.shape[0]
    shaped = gamma.reshape(t_len, *cards)
    drop = tuple(i + 1 for i in range(len(cards)) if i not in positions)
    summed = shaped.sum(axis=drop)
    remaining = sorted(positions)
    order = [0] + [1 + remaining.index(p) for p in positions]
    return summed.transpose(order)
