"""Ancestral sampling from DBN templates (ground-truth generators)."""

from __future__ import annotations

import numpy as np

from repro.dbn.evidence import EvidenceSequence
from repro.dbn.template import DbnTemplate
from repro.errors import InferenceError

__all__ = ["sample_sequence"]


def sample_sequence(
    template: DbnTemplate,
    length: int,
    rng: np.random.Generator | None = None,
) -> tuple[dict[str, np.ndarray], EvidenceSequence]:
    """Sample one full trajectory from a DBN.

    Returns:
        (states, evidence): ``states`` maps every node (hidden AND observed)
        to its sampled state sequence of shape (length,); ``evidence`` wraps
        the observed part, ready for the inference engines.
    """
    if length < 1:
        raise InferenceError("sample length must be >= 1")
    template.validate()
    rng = rng or np.random.default_rng()
    order = _slice_order(template)
    states: dict[str, np.ndarray] = {
        name: np.zeros(length, dtype=np.int64) for name in template.nodes()
    }
    for t in range(length):
        for name in order:
            cpd = template.initial_cpd(name) if t == 0 else template.transition_cpd(name)
            parent_states: dict[str, int] = {}
            for parent in cpd.parents:
                if parent.endswith("[t-1]"):
                    parent_states[parent] = int(
                        states[parent.removesuffix("[t-1]")][t - 1]
                    )
                else:
                    parent_states[parent] = int(states[parent][t])
            column = [
                cpd.probability(s, parent_states) for s in range(cpd.cardinality)
            ]
            states[name][t] = int(rng.choice(cpd.cardinality, p=column))
    evidence = EvidenceSequence(
        template, hard={n: states[n] for n in template.observed_nodes()}
    )
    return states, evidence


def _slice_order(template: DbnTemplate) -> list[str]:
    """Topological order of the intra-slice graph (inter-parents are always
    available from the previous step)."""
    remaining = {n: set(template.intra_parents(n)) for n in template.nodes()}
    order: list[str] = []
    while remaining:
        ready = [n for n, parents in remaining.items() if not parents]
        if not ready:
            raise InferenceError("intra-slice graph has a cycle")
        for name in ready:
            order.append(name)
            del remaining[name]
        for parents in remaining.values():
            parents.difference_update(ready)
    return order
