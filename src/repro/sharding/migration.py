"""Online shard splitting: crash-safe live migration of documents.

ROADMAP item 2 left shard *splitting* open: the fleet could drain dead
shards but had no way to add capacity to a live one. This module moves a
document between shards while the fleet keeps answering queries and
accepting writes, surviving a crash at any step. The protocol is five
journaled phases, recorded in the same two-phase placement journal as
registration (:class:`repro.sharding.fleet._PlacementJournal`):

``plan``
    a ``migrate-plan`` record names the (video, source, destination)
    triple. Nothing has moved; recovery rolls a bare plan **back**.
``copy``
    the document's rows land on the destination shard inside its own WAL
    transaction, then a ``migrate-copy`` record (carrying the event ids
    present at copy time) seals the bulk copy. From here recovery rolls
    **forward**: rows durable on the destination are the commit point.
``catch-up``
    writes that reached the source after the copy form the migration's
    pending tail — the source's WAL tail for the moving document. Each
    :meth:`MigrationCoordinator.catch_up` round ships tail records to the
    destination (``migrate-ship`` records), shrinking the lag.
``cutover``
    refused with a typed :class:`repro.errors.MigrationLagError` while
    the lag exceeds ``ShardConfig.catchup_lag_floor``. Under the floor, a
    ``migrate-cutover`` record flips the placement map to the destination
    and advances the fleet's **routing epoch**: any
    :class:`PlacementLease` stamped with the old epoch now fences with
    :class:`repro.errors.FencedWriteError` (the same semantics a deposed
    replication primary gets), and the fleet retries the write exactly
    once against the new owner.
``retire``
    the remaining tail drains, the source and destination copies of the
    document are verified row-for-row, and a ``migrate-retire`` record
    closes the migration. The source's rows stay physically behind (BATs
    are append-only) but are suppressed by the ownership-filtered gather
    merge, exactly like rows left behind by a dead-shard rebalance.

Between ``copy`` and ``retire`` the document is **dual-read**: a gather
consults the placement owner first (the source before cutover, the
destination after) and falls back to the other side when the owner is
lost, so the document stays covered through the migration window. The
:class:`repro.sharding.ShardCoverageReport` counts both
(``migrating`` / ``dual_read``) so the degradation stays honest.

Crash points: ``migration:planned|copied|cutover|retired`` fire after
each phase's journal record (the kill sweep in
:mod:`repro.sharding.chaos` crashes at every one), and
``sharding.migrate:<video>`` fires per document inside the copy loop.
The copy and catch-up loops call
:func:`repro.resilience.cancel_checkpoint` at document/record
granularity, so a draining service can abort a long split cooperatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cobra.model import VideoDocument, VideoEvent
from repro.errors import (
    FencedWriteError,
    MigrationError,
    MigrationLagError,
    MonetError,
)
from repro.resilience import cancel_checkpoint
from repro.synth.annotations import Interval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.monet.kernel import MonetKernel
    from repro.sharding.fleet import ShardedKernel

__all__ = [
    "MIGRATION_KILL_POINTS",
    "MigrationCoordinator",
    "MigrationState",
    "PlacementLease",
    "SplitReport",
    "divergence",
    "event_from_payload",
    "event_payload",
    "event_rows",
    "object_rows",
    "pruned_document",
]

#: Phase names, in protocol order.
PLANNED = "planned"
COPIED = "copied"
CUTOVER = "cutover"
RETIRED = "retired"

#: The migration crash points, one after each phase's journal record.
MIGRATION_KILL_POINTS = (
    "migration:planned",
    "migration:copied",
    "migration:cutover",
    "migration:retired",
)


# ---------------------------------------------------------------------------
# event payloads: the journal/ship wire form of one event row
# ---------------------------------------------------------------------------
def event_payload(event: VideoEvent) -> dict[str, Any]:
    """The JSON form of one event row. Roles are a *list* of pairs, not a
    mapping: the journal serializes with sorted keys, and role BAT rows
    must replay in insertion order, which a sorted dict would destroy."""
    return {
        "event_id": event.event_id,
        "kind": event.kind,
        "start": float(event.interval.start),
        "end": float(event.interval.end),
        "confidence": float(event.confidence),
        "source": event.source,
        "roles": [[role, obj] for role, obj in event.roles.items()],
    }


def event_from_payload(payload: dict[str, Any]) -> VideoEvent:
    return VideoEvent(
        event_id=payload["event_id"],
        kind=payload["kind"],
        interval=Interval(payload["start"], payload["end"], payload["kind"]),
        confidence=payload["confidence"],
        roles={role: obj for role, obj in payload["roles"]},
        source=payload["source"],
    )


def event_rows(kernel: "MonetKernel", video_id: str) -> list[dict[str, Any]]:
    """The document's event rows on one shard, as payloads in BAT row
    order — the physical truth recovery heals and retire verifies from."""
    try:
        columns = {
            attr: kernel.bat(f"meta_event_{attr}").tails()
            for attr in (
                "event_id", "video_id", "kind", "start", "end",
                "confidence", "source",
            )
        }
    except MonetError:
        return []
    roles: dict[int, list[list[str]]] = {}
    try:
        for (oid, role), (_, object_id) in zip(
            kernel.bat("meta_role_name"), kernel.bat("meta_role_object")
        ):
            roles.setdefault(oid, []).append([role, object_id])
    except MonetError:
        pass
    out: list[dict[str, Any]] = []
    for oid in range(len(columns["event_id"])):
        if columns["video_id"][oid] != video_id:
            continue
        out.append(
            {
                "event_id": columns["event_id"][oid],
                "kind": columns["kind"][oid],
                "start": float(columns["start"][oid]),
                "end": float(columns["end"][oid]),
                "confidence": float(columns["confidence"][oid]),
                "source": columns["source"][oid],
                "roles": [list(pair) for pair in roles.get(oid, [])],
            }
        )
    return out


def object_rows(kernel: "MonetKernel", video_id: str) -> list[dict[str, Any]]:
    try:
        columns = {
            attr: kernel.bat(f"meta_object_{attr}").tails()
            for attr in ("object_id", "video_id", "category", "label")
        }
    except MonetError:
        return []
    return [
        {attr: tails[oid] for attr, tails in columns.items()}
        for oid in range(len(columns["object_id"]))
        if columns["video_id"][oid] == video_id
    ]


def divergence(
    source: "MonetKernel", destination: "MonetKernel", video_id: str
) -> list[str]:
    """Row-level divergence of one document between two shards.

    Every event row on the source must exist identically on the
    destination (the destination may hold *extra* events that were routed
    to it directly after cutover — the source will never see those by
    design), and the object rows must match exactly.
    """
    problems: list[str] = []
    src_events = {p["event_id"]: p for p in event_rows(source, video_id)}
    dst_events = {p["event_id"]: p for p in event_rows(destination, video_id)}
    for event_id, payload in src_events.items():
        got = dst_events.get(event_id)
        if got is None:
            problems.append(
                f"event {event_id!r} of {video_id!r} is on the source but "
                f"missing on the destination"
            )
        elif got != payload:
            problems.append(
                f"event {event_id!r} of {video_id!r} differs: source "
                f"{payload}, destination {got}"
            )
    src_objects = object_rows(source, video_id)
    dst_objects = object_rows(destination, video_id)
    if src_objects != dst_objects:
        problems.append(
            f"object rows of {video_id!r} differ: source {src_objects}, "
            f"destination {dst_objects}"
        )
    return problems


def pruned_document(
    document: VideoDocument, event_ids: tuple[str, ...] | None
) -> VideoDocument:
    """The document as it looked when it was inserted on a shard: only
    the events present at insertion time. Late events (appended through
    the fleet's online write path) replay as separate ops, so the
    reference rebuild reproduces the shard's exact row order."""
    if event_ids is None:
        return document
    keep = set(event_ids)
    if keep == set(document.events):
        return document
    return VideoDocument(
        raw=document.raw,
        features=dict(document.features),
        objects=dict(document.objects),
        events={
            event_id: event
            for event_id, event in document.events.items()
            if event_id in keep
        },
    )


# ---------------------------------------------------------------------------
# migration state + reports
# ---------------------------------------------------------------------------
@dataclass
class MigrationState:
    """One in-flight migration (mutable; the coordinator owns it)."""

    video: str
    src: str
    dst: str
    seq: int
    phase: str = PLANNED
    #: Source-side WAL tail for the moving document: event payloads
    #: written after the copy, awaiting shipment to the destination.
    pending: list[dict[str, Any]] = field(default_factory=list)
    #: Tail records shipped so far (catch-up progress).
    shipped: int = 0
    #: Event ids present in the document at copy time.
    copied_events: tuple[str, ...] = ()

    @property
    def lag(self) -> int:
        """Records the destination still lags the source by."""
        return len(self.pending)


@dataclass(frozen=True)
class SplitReport:
    """Deterministic outcome of one shard split."""

    shard: str
    added: bool
    moves: tuple[tuple[str, str, str], ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "added": self.added,
            "moves": [list(move) for move in self.moves],
        }


class PlacementLease:
    """An epoch-stamped write intent for one document.

    Mirrors :class:`repro.replication.group.Lease`: the lease remembers
    the routing epoch and owner observed when it was issued. Presenting
    it after a cutover advanced the epoch (and moved the document)
    fences with :class:`repro.errors.FencedWriteError` — a stale source
    shard can never accept a write after the ring advances. With
    ``migration_fencing`` disabled (the SHARD006 hazard) the stale write
    is honored against the old owner, landing rows no gather will read.
    """

    __slots__ = ("_coordinator", "video", "owner", "epoch")

    def __init__(
        self,
        coordinator: "MigrationCoordinator",
        video: str,
        owner: str,
        epoch: int,
    ):
        self._coordinator = coordinator
        self.video = video
        self.owner = owner
        self.epoch = epoch

    def apply(self, event: VideoEvent) -> str:
        """Write one event under this intent; returns the shard written.
        Raises :class:`FencedWriteError` when the intent went stale."""
        return self._coordinator._apply_routed(
            self.video, self.owner, self.epoch, event
        )


# ---------------------------------------------------------------------------
# the coordinator
# ---------------------------------------------------------------------------
class MigrationCoordinator:
    """Drives the journaled migration protocol against one fleet.

    Every public method takes the fleet lock (re-entrant, so the fleet's
    own wrappers may hold it already). The coordinator reaches into the
    fleet's placement internals deliberately: migration *is* placement,
    staged — the journal, the ops log, and the placement map must move
    in one critical section per phase.
    """

    def __init__(self, fleet: "ShardedKernel"):
        self._fleet = fleet
        self._active: dict[str, MigrationState] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def in_flight(self) -> dict[str, str]:
        """video id -> phase for every active migration."""
        return {video: state.phase for video, state in self._active.items()}

    def state(self, video_id: str) -> MigrationState:
        try:
            return self._active[video_id]
        except KeyError:
            raise MigrationError(
                f"no migration in flight for {video_id!r}"
            ) from None

    def lag(self, video_id: str) -> int:
        return self.state(video_id).lag

    def counterpart(self, video_id: str) -> str | None:
        """The dual-read fallback shard for an in-flight document: the
        non-owning side once rows exist on both (phase >= copied)."""
        state = self._active.get(video_id)
        if state is None or state.phase == PLANNED:
            return None
        owner = self._fleet._placements.get(video_id)
        return state.dst if owner == state.src else state.src

    # ------------------------------------------------------------------
    # topology growth
    # ------------------------------------------------------------------
    def add_shard(self, name: str) -> list[str]:
        """Durably add one shard to the live fleet; returns the video ids
        the grown ring remaps onto it (candidates for migration)."""
        fleet = self._fleet
        with fleet._lock:
            if name in fleet._shards:
                raise MigrationError(
                    f"shard {name!r} is already in the fleet"
                )
            fleet._seq += 1
            fleet._journal.append(
                {"op": "add-shard", "seq": fleet._seq, "shard": name}
            )
            fleet._admit_shard(name)
            return self.remapped(name)

    def remapped(self, name: str) -> list[str]:
        """Placed documents the current ring assigns to ``name`` but that
        live elsewhere and are not already migrating."""
        fleet = self._fleet
        with fleet._lock:
            dead = fleet.dead_shards()
            return sorted(
                video_id
                for video_id, owner in fleet._placements.items()
                if owner != name
                and video_id not in self._active
                and fleet.ring.owner(video_id, exclude=dead) == name
            )

    # ------------------------------------------------------------------
    # the five phases
    # ------------------------------------------------------------------
    def plan(
        self, video_id: str, destination: str | None = None
    ) -> MigrationState:
        """Phase 1: journal the intended move. Nothing has copied yet, so
        a crash here rolls back (``migrate-abort`` on recovery)."""
        fleet = self._fleet
        with fleet._lock:
            existing = self._active.get(video_id)
            if existing is not None:
                raise MigrationError(
                    f"{video_id!r} is already migrating "
                    f"({existing.src} -> {existing.dst}, phase "
                    f"{existing.phase})"
                )
            src = fleet._placements.get(video_id)
            if src is None:
                raise MigrationError(
                    f"unknown video {video_id!r}: nothing to migrate"
                )
            dst = destination or fleet.ring.owner(
                video_id, exclude=fleet.dead_shards()
            )
            if dst == src:
                raise MigrationError(
                    f"{video_id!r} already lives on {src!r}"
                )
            if fleet.shard(dst).dead:
                raise MigrationError(
                    f"cannot migrate {video_id!r} to dead shard {dst!r}"
                )
            if fleet.shard(src).dead:
                raise MigrationError(
                    f"cannot migrate {video_id!r} off dead shard {src!r}; "
                    f"rebalance instead"
                )
            fleet._seq += 1
            seq = fleet._seq
            fleet._journal.append(
                {
                    "op": "migrate-plan",
                    "seq": seq,
                    "video": video_id,
                    "src": src,
                    "dst": dst,
                }
            )
            state = MigrationState(video=video_id, src=src, dst=dst, seq=seq)
            self._active[video_id] = state
            fleet.faults.on_call("migration:planned")
            return state

    def copy(self, video_id: str) -> MigrationState:
        """Phase 2: bulk-copy the document's rows to the destination
        inside its WAL transaction, then seal with ``migrate-copy``. Rows
        durable on the destination are the protocol's commit point."""
        fleet = self._fleet
        with fleet._lock:
            state = self.state(video_id)
            self._require(state, PLANNED, "copy")
            cancel_checkpoint(f"sharding.migrate:{video_id}")
            fleet.faults.on_call(f"sharding.migrate:{video_id}")
            handle = fleet._documents.get(video_id)
            if handle is None:
                raise MigrationError(
                    f"cannot copy {video_id!r}: no document handle in "
                    f"this process to re-register from"
                )
            document = handle[0]
            event_ids = tuple(document.events)
            fleet._write_document(fleet.shard(state.dst), document)
            fleet._journal.append(
                {
                    "op": "migrate-copy",
                    "seq": state.seq,
                    "video": video_id,
                    "events": list(event_ids),
                }
            )
            fleet._record_copy(state.dst, video_id, event_ids)
            state.copied_events = event_ids
            state.phase = COPIED
            fleet.faults.on_call("migration:copied")
            return state

    def catch_up(self, video_id: str, budget: int | None = None) -> int:
        """Phase 3: ship the source's pending tail for the document to
        the destination; returns how many records shipped."""
        fleet = self._fleet
        with fleet._lock:
            state = self.state(video_id)
            if state.phase not in (COPIED, CUTOVER):
                raise MigrationError(
                    f"cannot catch up {video_id!r} in phase {state.phase!r}"
                )
            shipped = 0
            while state.pending and (budget is None or shipped < budget):
                cancel_checkpoint(f"sharding.migrate:{video_id}")
                self._ship(state, state.pending[0])
                state.pending.pop(0)
                state.shipped += 1
                shipped += 1
            return shipped

    def cutover(self, video_id: str) -> MigrationState:
        """Phase 4: flip ownership to the destination and advance the
        routing epoch, fencing every stale write intent. Refused with
        :class:`MigrationLagError` while the destination lags the source
        by more than ``catchup_lag_floor`` records."""
        fleet = self._fleet
        with fleet._lock:
            state = self.state(video_id)
            self._require(state, COPIED, "cut over")
            floor = fleet.config.catchup_lag_floor
            if state.lag > floor:
                raise MigrationLagError(
                    f"cutover of {video_id!r} refused: destination "
                    f"{state.dst!r} still lags its source {state.src!r}",
                    lag=state.lag,
                    floor=floor,
                    video=video_id,
                )
            fleet._journal.append(
                {
                    "op": "migrate-cutover",
                    "seq": state.seq,
                    "video": video_id,
                }
            )
            fleet._placements[video_id] = state.dst
            fleet._routing_epoch += 1
            state.phase = CUTOVER
            fleet.faults.on_call("migration:cutover")
            return state

    def retire(self, video_id: str) -> MigrationState:
        """Phase 5: drain any bounded-staleness remainder of the tail,
        verify the two copies row-for-row, and close the migration. The
        source's rows stay physically behind (BATs are append-only) but
        the ownership-filtered gather merge suppresses them."""
        fleet = self._fleet
        with fleet._lock:
            state = self.state(video_id)
            self._require(state, CUTOVER, "retire")
            self.catch_up(video_id)
            problems = divergence(
                fleet.shard(state.src).kernel,
                fleet.shard(state.dst).kernel,
                video_id,
            )
            if problems:
                raise MigrationError(
                    f"retire of {video_id!r} refused: the copies diverge: "
                    + "; ".join(problems)
                )
            fleet._journal.append(
                {
                    "op": "migrate-retire",
                    "seq": state.seq,
                    "video": video_id,
                }
            )
            del self._active[video_id]
            state.phase = RETIRED
            fleet.faults.on_call("migration:retired")
            return state

    def _require(self, state: MigrationState, phase: str, verb: str) -> None:
        if state.phase != phase:
            raise MigrationError(
                f"cannot {verb} {state.video!r} in phase {state.phase!r} "
                f"(needs {phase!r})"
            )

    # ------------------------------------------------------------------
    # convenience drivers
    # ------------------------------------------------------------------
    def migrate(
        self, video_id: str, destination: str | None = None
    ) -> MigrationState:
        """Run all five phases for one document."""
        with self._fleet._lock:
            self.plan(video_id, destination)
            self.copy(video_id)
            self.catch_up(video_id)
            self.cutover(video_id)
            return self.retire(video_id)

    def resume(self, video_id: str) -> MigrationState:
        """Drive an in-flight migration from its current phase to
        retirement (e.g. after a cancelled split)."""
        with self._fleet._lock:
            state = self.state(video_id)
            if state.phase == PLANNED:
                self.copy(video_id)
            if state.phase == COPIED:
                self.catch_up(video_id)
                self.cutover(video_id)
            return self.retire(video_id)

    def split(self, name: str) -> SplitReport:
        """Grow the fleet by one shard and migrate every remapped
        document onto it, one full protocol run per document in sorted
        order (so two fleets replaying the same history move the same
        documents in the same order). Idempotent: re-splitting an
        existing shard resumes in-flight moves and migrates whatever the
        ring still remaps — the crash-sweep's recovery driver."""
        fleet = self._fleet
        with fleet._lock:
            added = name not in fleet._shards
            if added:
                self.add_shard(name)
            moves: list[tuple[str, str, str]] = []
            for video_id in sorted(
                video
                for video, state in self._active.items()
                if state.dst == name
            ):
                cancel_checkpoint(f"sharding.migrate:{video_id}")
                state = self.resume(video_id)
                moves.append((video_id, state.src, state.dst))
            for video_id in self.remapped(name):
                cancel_checkpoint(f"sharding.migrate:{video_id}")
                state = self.migrate(video_id, name)
                moves.append((video_id, state.src, state.dst))
            return SplitReport(shard=name, added=added, moves=tuple(moves))

    # ------------------------------------------------------------------
    # the online write path (fenced)
    # ------------------------------------------------------------------
    def write_intent(self, video_id: str) -> PlacementLease:
        """An epoch-stamped intent to write ``video_id`` on its current
        owner. Goes stale — and fences — when a cutover moves the
        document before the intent is applied."""
        fleet = self._fleet
        with fleet._lock:
            owner = fleet._placements.get(video_id)
            if owner is None:
                raise MigrationError(
                    f"unknown video {video_id!r}: nothing to write to"
                )
            return PlacementLease(
                self, video_id, owner, fleet._routing_epoch
            )

    def store_event(self, video_id: str, event: VideoEvent) -> str:
        """Append one event to the document's owning shard, retrying
        exactly once on the new owner when a concurrent cutover fenced
        the first attempt. Returns the shard that took the write."""
        fleet = self._fleet
        with fleet._lock:
            intent = self.write_intent(video_id)
            try:
                return intent.apply(event)
            except FencedWriteError:
                fleet._migration_fenced_retries += 1
                return self.write_intent(video_id).apply(event)

    def _apply_routed(
        self, video_id: str, owner: str, epoch: int, event: VideoEvent
    ) -> str:
        fleet = self._fleet
        with fleet._lock:
            current = fleet._placements.get(video_id)
            stale = epoch != fleet._routing_epoch and owner != current
            if stale and fleet.config.migration_fencing:
                raise FencedWriteError(
                    f"stale placement intent for {video_id!r}: shard "
                    f"{owner!r} no longer owns it (now {current!r})",
                    lease_epoch=epoch,
                    group_epoch=fleet._routing_epoch,
                )
            # with fencing disabled the stale write is honored against
            # the old owner — the SHARD006 hazard, demonstrated under
            # check="off"/"warn": rows land where no gather will look
            target = owner if stale else current
            payload = event_payload(event)
            self._insert_event(target, video_id, event)
            fleet._seq += 1
            fleet._journal.append(
                {
                    "op": "event",
                    "seq": fleet._seq,
                    "video": video_id,
                    "shard": target,
                    "event": payload,
                }
            )
            fleet._record_event(target, video_id, payload)
            state = self._active.get(video_id)
            if (
                state is not None
                and state.phase == COPIED
                and target == state.src
            ):
                state.pending.append(payload)
            return target

    def _ship(self, state: MigrationState, payload: dict[str, Any]) -> None:
        fleet = self._fleet
        self._insert_event(
            state.dst, state.video, event_from_payload(payload)
        )
        fleet._seq += 1
        fleet._journal.append(
            {
                "op": "migrate-ship",
                "seq": fleet._seq,
                "video": state.video,
                "event": payload,
            }
        )
        fleet._record_event(state.dst, state.video, payload)

    def _insert_event(
        self, shard_name: str, video_id: str, event: VideoEvent
    ) -> None:
        """Insert one event row on a shard inside its WAL transaction,
        through the shard group's epoch-fenced lease when replicated."""
        fleet = self._fleet
        shard = fleet.shard(shard_name)

        def write(kernel: "MonetKernel") -> None:
            view = shard.view()
            with kernel.transaction():
                view._store_event(video_id, event)

        fleet._fenced_apply(shard, write)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def resolve_in_doubt(
        self, video_id: str, entry: dict[str, Any]
    ) -> None:
        """Roll one in-doubt migration forward or back after a crash.

        The copy is the commit point: a bare plan whose rows never
        reached the destination rolls **back** (``migrate-abort``); a
        plan whose rows are durable on the destination — whether or not
        the ``migrate-copy`` record survived — rolls **forward** through
        healing (re-shipping the journaled tail), cutover, and retire,
        ending in the same verified state a crash-free run reaches.
        """
        fleet = self._fleet
        with fleet._lock:
            phase, src, dst = entry["phase"], entry["src"], entry["dst"]
            if phase == PLANNED:
                if not fleet._shard_has_rows(dst, video_id):
                    fleet._journal.append(
                        {
                            "op": "migrate-abort",
                            "seq": entry["seq"],
                            "video": video_id,
                        }
                    )
                    return
                # rows are durable but the copy record is torn off: roll
                # forward with the event ids the destination attests
                event_ids = tuple(
                    payload["event_id"]
                    for payload in event_rows(
                        fleet.shard(dst).kernel, video_id
                    )
                )
                fleet._journal.append(
                    {
                        "op": "migrate-copy",
                        "seq": entry["seq"],
                        "video": video_id,
                        "events": list(event_ids),
                    }
                )
                fleet._record_copy(dst, video_id, event_ids)
                phase = COPIED
            state = MigrationState(
                video=video_id,
                src=src,
                dst=dst,
                seq=entry["seq"],
                phase=phase,
                pending=list(entry["pending"]),
            )
            self._active[video_id] = state
            if state.phase == COPIED:
                self.catch_up(video_id)
                self.cutover(video_id)
            self.retire(video_id)
