"""Consistent-hash placement of documents onto shards.

Documents are placed by hashing their id (the video id — the unit the
paper's metadata decomposes around) onto a ring of virtual nodes. Each
shard contributes ``vnodes`` points; a key is owned by the first live
vnode clockwise from the key's hash. Consistent hashing gives the two
properties the fleet needs:

* **determinism** — placement is a pure function of the shard names and
  the key, so two fleets built from the same journal agree byte-for-byte;
* **minimal movement** — marking a shard dead reassigns only *its* keys
  (each to the next live shard on the ring), never shuffling documents
  between surviving shards.

Hashing uses the first eight bytes of an MD5 digest — stable across
processes and Python versions (unlike ``hash()`` under
``PYTHONHASHSEED``) and, unlike CRC32 on the short, near-identical
labels video ids tend to be, well mixed enough that the vnode arcs come
out balanced.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.errors import ShardingError

__all__ = ["HashRing"]


def _point(label: str) -> int:
    digest = hashlib.md5(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named shards with virtual nodes."""

    def __init__(self, shards: Iterable[str], vnodes: int = 32):
        self._shards = sorted(shards)
        if not self._shards:
            raise ShardingError("a hash ring needs at least one shard")
        if len(set(self._shards)) != len(self._shards):
            raise ShardingError(f"duplicate shard names in {self._shards}")
        if vnodes < 1:
            raise ShardingError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for shard in self._shards:
            for index in range(vnodes):
                points.append((_point(f"{shard}#{index}"), shard))
        # ties (crc collisions across labels) break by shard name so the
        # ring order is a pure function of the configuration
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @property
    def shards(self) -> list[str]:
        return list(self._shards)

    def extended(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` added (same vnodes).

        The complement of death: adding a shard steals only the keys its
        own vnode arcs now cover — every other key keeps its owner, which
        is what makes an online split move the minimum set of documents.
        The result is identical to building a fresh ring from the full
        name set (vnode points are position-independent), so a fleet that
        grew online and a fleet built from the final topology agree.
        """
        if shard in self._shards:
            raise ShardingError(f"shard {shard!r} is already on the ring")
        return HashRing([*self._shards, shard], vnodes=self.vnodes)

    def owner(self, key: str, exclude: Iterable[str] = ()) -> str:
        """The shard owning ``key``: the first ring point clockwise from
        the key's hash whose shard is not in ``exclude``."""
        dead = set(exclude)
        live = [s for s in self._shards if s not in dead]
        if not live:
            raise ShardingError(
                f"no live shard can own {key!r}: all of {self._shards} "
                f"are excluded"
            )
        start = bisect.bisect_right(self._hashes, _point(key))
        n = len(self._points)
        for step in range(n):
            _, shard = self._points[(start + step) % n]
            if shard not in dead:
                return shard
        raise ShardingError(f"ring walk failed for {key!r}")  # pragma: no cover

    def successors(self, key: str, exclude: Iterable[str] = ()) -> list[str]:
        """Distinct live shards in ring order starting at ``key``'s owner
        (the failover/rebalance preference order for the key)."""
        dead = set(exclude)
        start = bisect.bisect_right(self._hashes, _point(key))
        n = len(self._points)
        seen: list[str] = []
        for step in range(n):
            _, shard = self._points[(start + step) % n]
            if shard not in dead and shard not in seen:
                seen.append(shard)
        return seen
