"""Seeded chaos verification of the sharded kernel fleet.

:func:`shard_death_scenario` drives one deterministic disaster across a
three-shard fleet (one replica per shard):

1. six documents are registered (the placement spread over the shards is
   a pure function of the video ids and the ring) and shipped to the
   replicas;
2. a fan-out gather runs while the seeded plan fires on the shard
   transports: ``shard-0`` lags (answered through a **hedged** replica
   read), ``shard-1`` is killed with its replica partitioned (in-shard
   failover finds nobody to promote — the shard is **dead**), and
   ``shard-2`` is killed with its replica reachable (the shard **fails
   over** internally and survives). The gather must return a degraded
   result whose :class:`repro.sharding.ShardCoverageReport` matches the
   expected report *exactly* — never an unhandled exception;
3. the same query under a ``min_coverage=0.9`` floor must fail loudly
   with a typed :class:`repro.errors.InsufficientCoverageError`;
4. a new document owned by the failed-over shard is registered: the
   fleet's cached lease predates the promotion, so the write must fence
   and be retried under a fresh lease (``fenced_retries == 1``);
5. the fleet rebalances: the dead shard's documents move to their ring
   successors in journal order, a follow-up gather covers the full
   corpus again, and every surviving shard's catalog must converge
   byte-for-byte against a reference rebuild.

:func:`placement_kill_sweep` separately crashes document registration at
each two-phase crash point (``sharding.place:prepared`` — journal record
written, rows not yet on the shard; ``sharding.place:registered`` — rows
durable, commit record missing) and verifies recovery rolls the in-doubt
placement back or forward respectively.

Everything is a pure function of the plan seed: the CLI (``python -m
repro.sharding``) runs the scenario twice and the reports must be
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.cobra.model import RawVideo, VideoDocument, VideoObject
from repro.errors import InsufficientCoverageError, SimulatedCrash
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sharding.fleet import (
    ShardConfig,
    ShardCoverageReport,
    ShardedKernel,
)
from repro.synth.annotations import Interval

__all__ = [
    "PLACEMENT_KILL_SITES",
    "PlacementSweepSummary",
    "ShardChaosReport",
    "placement_kill_sweep",
    "shard_death_scenario",
]

#: The two-phase registration crash points the placement sweep kills at.
PLACEMENT_KILL_SITES = (
    "sharding.place:prepared",
    "sharding.place:registered",
)

#: The corpus: placement over three shards is a pure function of these
#: ids (race1/race4 -> shard-0; race0/race3/race5 -> shard-1;
#: race2 -> shard-2 on the default ring).
_VIDEO_IDS = ("race0", "race1", "race2", "race3", "race4", "race5")

#: Registered after shard-2's failover; owned by shard-2, so the write
#: must travel the fenced-retry path.
_LATE_VIDEO = "race7"


def _document(video_id: str) -> VideoDocument:
    doc = VideoDocument(
        raw=RawVideo(video_id, "synthetic://f1", 100.0, 10.0, 192, 144, 16000)
    )
    doc.add_object(VideoObject(f"{video_id}/d1", "driver", "HAKKINEN"))
    doc.new_event(
        "fly_out", Interval(10, 18), 0.9, {"driver": f"{video_id}/d1"}, "dbn"
    )
    return doc


@dataclass
class ShardChaosReport:
    """Deterministic outcome of one shard-death scenario run."""

    seed: int
    degraded_coverage: dict[str, Any] = field(default_factory=dict)
    degraded_records: int = 0
    floor_error: dict[str, float] = field(default_factory=dict)
    fenced_retries: int = 0
    moves: list[list[str]] = field(default_factory=list)
    final_coverage: dict[str, Any] = field(default_factory=dict)
    dead: list[str] = field(default_factory=list)
    epochs: dict[str, int] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    events: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"{status}  shard-death scenario (seed={self.seed}): "
            f"degraded coverage "
            f"{self.degraded_coverage.get('fraction', '?')} with "
            f"{self.degraded_records} record(s), "
            f"{self.fenced_retries} fenced retry(ies), "
            f"{len(self.moves)} rebalance move(s), dead {self.dead}"
        ]
        lines.extend(f"      {failure}" for failure in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable, wall-clock-free form (the determinism and CI
        artifact payload)."""
        return {
            "seed": self.seed,
            "degraded_coverage": dict(self.degraded_coverage),
            "degraded_records": self.degraded_records,
            "floor_error": dict(self.floor_error),
            "fenced_retries": self.fenced_retries,
            "moves": [list(move) for move in self.moves],
            "final_coverage": dict(self.final_coverage),
            "dead": list(self.dead),
            "epochs": dict(sorted(self.epochs.items())),
            "failures": list(self.failures),
            "events": list(self.events),
            "ok": self.ok,
        }


def shard_death_scenario(
    base_dir: str | Path,
    seed: int = 2026,
    fsync: bool = True,
) -> ShardChaosReport:
    """Run the seeded kill-shards-mid-scatter scenario once."""
    plan = FaultPlan(
        seed=seed,
        name="shard-death-chaos",
        specs=(
            # shard-0 straggles once: the gather hedges a replica read
            FaultSpec(
                site="sharding.transport:shard-0",
                kind="lag",
                factor=2,
                max_triggers=1,
            ),
            # shard-1 dies with its replica partitioned: nobody to promote
            FaultSpec(
                site="sharding.transport:shard-1",
                kind="kill",
                max_triggers=1,
            ),
            # shard-2 dies with its replica reachable: in-shard failover
            FaultSpec(
                site="sharding.transport:shard-2",
                kind="kill",
                max_triggers=1,
            ),
        ),
    )
    report = ShardChaosReport(seed=seed)
    events = report.events
    failures = report.failures

    fleet = ShardedKernel(
        base_dir,
        shards=3,
        config=ShardConfig(
            min_coverage=0.25, replication=1, fsync=fsync
        ),
        faults=FaultInjector(plan),
    )
    for video_id in _VIDEO_IDS:
        fleet.register_document(_document(video_id), "formula1")
    fleet.pump()
    events.append(f"registered {len(_VIDEO_IDS)} document(s); replicas caught up")

    # shard-1's replica link is administratively severed: when the kill
    # lands, its in-shard failover must find nobody to promote
    fleet.shard("shard-1").group.partition("shard-1-r0")
    events.append("shard-1's replica partitioned (failover will find nobody)")

    # ---- the degraded gather -----------------------------------------
    result = fleet.query("RETRIEVE fly_out")
    coverage = result.coverage
    report.degraded_coverage = coverage.to_dict()
    report.degraded_records = len(result.records)
    events.append(f"gather under fire: {coverage.describe()}")
    expected = ShardCoverageReport(
        plan="sequential",
        targeted=("shard-0", "shard-1", "shard-2"),
        answered=("shard-0",),
        hedged=("shard-0",),
        shed=(),
        timed_out=("shard-2",),
        dead=("shard-1",),
        documents_total=6,
        documents_covered=2,
    )
    if coverage != expected:
        failures.append(
            f"degraded coverage report mismatch: expected "
            f"{expected.to_dict()}, got {coverage.to_dict()}"
        )
    if not result.degraded:
        failures.append("a 2/6-coverage result did not report degraded")
    if report.degraded_records != 2:
        failures.append(
            f"expected 2 record(s) from the surviving shard, got "
            f"{report.degraded_records}"
        )

    # ---- the coverage floor ------------------------------------------
    try:
        fleet.query("RETRIEVE fly_out", min_coverage=0.9)
        failures.append(
            "a 0.5-coverage gather under a 0.9 floor did not raise "
            "InsufficientCoverageError"
        )
    except InsufficientCoverageError as exc:
        report.floor_error = {
            "coverage": round(exc.coverage, 6),
            "required": exc.required,
        }
        events.append(f"floor held: {exc}")
        if exc.report is None or abs(exc.coverage - 0.5) > 1e-9:
            failures.append(
                f"floor error should carry the 0.5-coverage report, got "
                f"coverage {exc.coverage}"
            )

    # ---- the fenced retry --------------------------------------------
    # race7 is owned by shard-2, which failed over mid-scatter: the
    # fleet's cached lease predates the promotion and must fence once
    fleet.register_document(_document(_LATE_VIDEO), "formula1")
    report.fenced_retries = fleet.fenced_retries
    if fleet.fenced_retries != 1:
        failures.append(
            f"expected exactly 1 fenced write retry after shard-2's "
            f"failover, got {fleet.fenced_retries}"
        )
    events.append(
        f"late registration of {_LATE_VIDEO!r} fenced and retried under a "
        f"fresh lease"
    )

    # ---- rebalance + convergence -------------------------------------
    rebalance = fleet.rebalance()
    report.moves = [list(move) for move in rebalance.moves]
    events.append(f"rebalanced: {report.moves}")
    if {move[1] for move in rebalance.moves} != {"shard-1"}:
        failures.append(
            f"rebalance must move exactly the dead shard's documents, "
            f"moved {report.moves}"
        )
    if sorted(move[0] for move in rebalance.moves) != [
        "race0", "race3", "race5",
    ]:
        failures.append(
            f"expected race0/race3/race5 to leave shard-1, moved "
            f"{report.moves}"
        )

    final = fleet.query("RETRIEVE fly_out")
    report.final_coverage = final.coverage.to_dict()
    if not final.coverage.complete:
        failures.append(
            f"post-rebalance gather is not complete: "
            f"{final.coverage.describe()}"
        )
    if "shard-1" in final.coverage.targeted:
        failures.append("post-rebalance gather still targets the dead shard")
    if len(final.records) != 7:
        failures.append(
            f"expected all 7 record(s) after rebalance, got "
            f"{len(final.records)}"
        )

    fleet.pump()
    failures.extend(fleet.convergence_report())

    status = fleet.status()
    report.dead = fleet.dead_shards()
    for shard_status in status.shards:
        report.epochs[shard_status.name] = shard_status.epoch
    if report.dead != ["shard-1"]:
        failures.append(f"expected exactly shard-1 dead, got {report.dead}")
    if report.epochs.get("shard-2") != 2:
        failures.append(
            f"expected shard-2 at epoch 2 after its in-shard failover, "
            f"got {report.epochs.get('shard-2')}"
        )
    events.append("surviving catalogs converged byte-for-byte")
    fleet.close()
    return report


@dataclass
class PlacementSweepSummary:
    """Two-phase registration crashed at every placement crash point."""

    results: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result["ok"] for result in self.results)

    def describe(self) -> str:
        lines = []
        for result in self.results:
            status = "ok" if result["ok"] else "FAIL"
            lines.append(
                f"{status}  kill@{result['site']}: recovery "
                f"{result['resolution']}, placements "
                f"{result['placements']}"
            )
            lines.extend(f"      {f}" for f in result["failures"])
        good = sum(1 for result in self.results if result["ok"])
        lines.append(
            f"placement kill sweep: {good}/{len(self.results)} crash "
            f"point(s) recovered to a consistent placement"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {"results": list(self.results), "ok": self.ok}


def placement_kill_sweep(
    base_dir: str | Path,
    seed: int = 2026,
    fsync: bool = True,
) -> PlacementSweepSummary:
    """Crash registration at each two-phase crash point; recovery must
    roll the in-doubt placement back (prepared) or forward (registered)."""
    base = Path(base_dir)
    summary = PlacementSweepSummary()
    for site in PLACEMENT_KILL_SITES:
        scratch = base / site.replace(":", "__").replace(".", "_")
        plan = FaultPlan(
            seed=seed,
            name=f"placement-kill@{site}",
            specs=(FaultSpec(site=site, kind="kill", max_triggers=1),),
        )
        failures: list[str] = []
        fleet = ShardedKernel(
            scratch,
            shards=2,
            config=ShardConfig(fsync=fsync),
            faults=FaultInjector(plan),
        )
        crashed = False
        try:
            fleet.register_document(_document("race0"), "formula1")
        except SimulatedCrash:
            crashed = True
        if not crashed:
            failures.append(f"kill at {site} never fired")
        fleet.close()

        # reopen: recovery must resolve the in-doubt placement
        recovered = ShardedKernel(
            scratch, shards=2, config=ShardConfig(fsync=fsync)
        )
        placements = recovered.placements()
        rows_durable = site == "sharding.place:registered"
        resolution = "rolled forward" if rows_durable else "rolled back"
        if rows_durable and "race0" not in placements:
            failures.append(
                "rows reached the owning shard before the crash but "
                "recovery rolled the placement back"
            )
        if not rows_durable and placements:
            failures.append(
                f"no rows reached any shard but recovery committed "
                f"{placements}"
            )
        # re-registration must complete (or idempotently restore) the
        # placement either way, and the catalogs must converge
        recovered.register_document(_document("race0"), "formula1")
        if "race0" not in recovered.placements():
            failures.append("re-registration after recovery did not place")
        failures.extend(recovered.convergence_report())
        recovered.close()
        summary.results.append(
            {
                "site": site,
                "resolution": resolution,
                "placements": placements,
                "failures": failures,
                "ok": not failures,
            }
        )
    return summary
