"""Seeded chaos verification of the sharded kernel fleet.

:func:`shard_death_scenario` drives one deterministic disaster across a
three-shard fleet (one replica per shard):

1. six documents are registered (the placement spread over the shards is
   a pure function of the video ids and the ring) and shipped to the
   replicas;
2. a fan-out gather runs while the seeded plan fires on the shard
   transports: ``shard-0`` lags (answered through a **hedged** replica
   read), ``shard-1`` is killed with its replica partitioned (in-shard
   failover finds nobody to promote — the shard is **dead**), and
   ``shard-2`` is killed with its replica reachable (the shard **fails
   over** internally and survives). The gather must return a degraded
   result whose :class:`repro.sharding.ShardCoverageReport` matches the
   expected report *exactly* — never an unhandled exception;
3. the same query under a ``min_coverage=0.9`` floor must fail loudly
   with a typed :class:`repro.errors.InsufficientCoverageError`;
4. a new document owned by the failed-over shard is registered: the
   fleet's cached lease predates the promotion, so the write must fence
   and be retried under a fresh lease (``fenced_retries == 1``);
5. the fleet rebalances: the dead shard's documents move to their ring
   successors in journal order, a follow-up gather covers the full
   corpus again, and every surviving shard's catalog must converge
   byte-for-byte against a reference rebuild.

:func:`placement_kill_sweep` separately crashes document registration at
each two-phase crash point (``sharding.place:prepared`` — journal record
written, rows not yet on the shard; ``sharding.place:registered`` — rows
durable, commit record missing) and verifies recovery rolls the in-doubt
placement back or forward respectively.

:func:`split_under_load_scenario` exercises the online-split machinery of
:mod:`repro.sharding.migration`: a third shard joins a live two-shard
fleet and the remapped documents migrate while queries and writes keep
arriving. Mid-copy the migrating document's source shard is partitioned
and the gather must answer the document through a **dual read** against
the half-built destination copy (``dual_read > 0`` on the coverage
report, coverage still at or above the floor); a write routed during the
copy leaves the destination lagging, so cutover is refused with a typed
:class:`repro.errors.MigrationLagError` until catch-up drains the tail;
a write intent captured before the cutover must fence
(:class:`repro.errors.FencedWriteError`) and be retried once against the
new owner. :func:`migration_kill_sweep` then crashes the split at every
protocol kill point (:data:`MIGRATION_KILL_SITES`) and verifies recovery
plus an idempotent re-split land on placements, query answers, and
convergence byte-identical to a run that never crashed.

Everything is a pure function of the plan seed: the CLI (``python -m
repro.sharding``) runs the scenarios twice and the reports must be
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import json

from repro.cobra.model import RawVideo, VideoDocument, VideoObject
from repro.errors import (
    FencedWriteError,
    InsufficientCoverageError,
    MigrationLagError,
    SimulatedCrash,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sharding.fleet import (
    ShardConfig,
    ShardCoverageReport,
    ShardedKernel,
)
from repro.synth.annotations import Interval

__all__ = [
    "MIGRATION_KILL_SITES",
    "PLACEMENT_KILL_SITES",
    "MigrationSweepSummary",
    "PlacementSweepSummary",
    "ShardChaosReport",
    "SplitChaosReport",
    "migration_kill_sweep",
    "placement_kill_sweep",
    "shard_death_scenario",
    "split_under_load_scenario",
]

#: The two-phase registration crash points the placement sweep kills at.
PLACEMENT_KILL_SITES = (
    "sharding.place:prepared",
    "sharding.place:registered",
)

#: The migration crash points the split sweep kills at: one after each
#: protocol phase's journal record, plus the per-document copy site of
#: the first document the sweep's split migrates (``sorted`` order over
#: the remapped set, so ``race2`` on this corpus).
MIGRATION_KILL_SITES = (
    "migration:planned",
    "migration:copied",
    "migration:cutover",
    "migration:retired",
    "sharding.migrate:race2",
)

#: The corpus: placement over three shards is a pure function of these
#: ids (race1/race4 -> shard-0; race0/race3/race5 -> shard-1;
#: race2 -> shard-2 on the default ring).
_VIDEO_IDS = ("race0", "race1", "race2", "race3", "race4", "race5")

#: Registered after shard-2's failover; owned by shard-2, so the write
#: must travel the fenced-retry path.
_LATE_VIDEO = "race7"


def _document(video_id: str) -> VideoDocument:
    doc = VideoDocument(
        raw=RawVideo(video_id, "synthetic://f1", 100.0, 10.0, 192, 144, 16000)
    )
    doc.add_object(VideoObject(f"{video_id}/d1", "driver", "HAKKINEN"))
    doc.new_event(
        "fly_out", Interval(10, 18), 0.9, {"driver": f"{video_id}/d1"}, "dbn"
    )
    return doc


@dataclass
class ShardChaosReport:
    """Deterministic outcome of one shard-death scenario run."""

    seed: int
    degraded_coverage: dict[str, Any] = field(default_factory=dict)
    degraded_records: int = 0
    floor_error: dict[str, float] = field(default_factory=dict)
    fenced_retries: int = 0
    moves: list[list[str]] = field(default_factory=list)
    final_coverage: dict[str, Any] = field(default_factory=dict)
    dead: list[str] = field(default_factory=list)
    epochs: dict[str, int] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    events: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"{status}  shard-death scenario (seed={self.seed}): "
            f"degraded coverage "
            f"{self.degraded_coverage.get('fraction', '?')} with "
            f"{self.degraded_records} record(s), "
            f"{self.fenced_retries} fenced retry(ies), "
            f"{len(self.moves)} rebalance move(s), dead {self.dead}"
        ]
        lines.extend(f"      {failure}" for failure in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable, wall-clock-free form (the determinism and CI
        artifact payload)."""
        return {
            "seed": self.seed,
            "degraded_coverage": dict(self.degraded_coverage),
            "degraded_records": self.degraded_records,
            "floor_error": dict(self.floor_error),
            "fenced_retries": self.fenced_retries,
            "moves": [list(move) for move in self.moves],
            "final_coverage": dict(self.final_coverage),
            "dead": list(self.dead),
            "epochs": dict(sorted(self.epochs.items())),
            "failures": list(self.failures),
            "events": list(self.events),
            "ok": self.ok,
        }


def shard_death_scenario(
    base_dir: str | Path,
    seed: int = 2026,
    fsync: bool = True,
) -> ShardChaosReport:
    """Run the seeded kill-shards-mid-scatter scenario once."""
    plan = FaultPlan(
        seed=seed,
        name="shard-death-chaos",
        specs=(
            # shard-0 straggles once: the gather hedges a replica read
            FaultSpec(
                site="sharding.transport:shard-0",
                kind="lag",
                factor=2,
                max_triggers=1,
            ),
            # shard-1 dies with its replica partitioned: nobody to promote
            FaultSpec(
                site="sharding.transport:shard-1",
                kind="kill",
                max_triggers=1,
            ),
            # shard-2 dies with its replica reachable: in-shard failover
            FaultSpec(
                site="sharding.transport:shard-2",
                kind="kill",
                max_triggers=1,
            ),
        ),
    )
    report = ShardChaosReport(seed=seed)
    events = report.events
    failures = report.failures

    fleet = ShardedKernel(
        base_dir,
        shards=3,
        config=ShardConfig(
            min_coverage=0.25, replication=1, fsync=fsync
        ),
        faults=FaultInjector(plan),
    )
    for video_id in _VIDEO_IDS:
        fleet.register_document(_document(video_id), "formula1")
    fleet.pump()
    events.append(f"registered {len(_VIDEO_IDS)} document(s); replicas caught up")

    # shard-1's replica link is administratively severed: when the kill
    # lands, its in-shard failover must find nobody to promote
    fleet.shard("shard-1").group.partition("shard-1-r0")
    events.append("shard-1's replica partitioned (failover will find nobody)")

    # ---- the degraded gather -----------------------------------------
    result = fleet.query("RETRIEVE fly_out")
    coverage = result.coverage
    report.degraded_coverage = coverage.to_dict()
    report.degraded_records = len(result.records)
    events.append(f"gather under fire: {coverage.describe()}")
    expected = ShardCoverageReport(
        plan="sequential",
        targeted=("shard-0", "shard-1", "shard-2"),
        answered=("shard-0",),
        hedged=("shard-0",),
        shed=(),
        timed_out=("shard-2",),
        dead=("shard-1",),
        documents_total=6,
        documents_covered=2,
    )
    if coverage != expected:
        failures.append(
            f"degraded coverage report mismatch: expected "
            f"{expected.to_dict()}, got {coverage.to_dict()}"
        )
    if not result.degraded:
        failures.append("a 2/6-coverage result did not report degraded")
    if report.degraded_records != 2:
        failures.append(
            f"expected 2 record(s) from the surviving shard, got "
            f"{report.degraded_records}"
        )

    # ---- the coverage floor ------------------------------------------
    try:
        fleet.query("RETRIEVE fly_out", min_coverage=0.9)
        failures.append(
            "a 0.5-coverage gather under a 0.9 floor did not raise "
            "InsufficientCoverageError"
        )
    except InsufficientCoverageError as exc:
        report.floor_error = {
            "coverage": round(exc.coverage, 6),
            "required": exc.required,
        }
        events.append(f"floor held: {exc}")
        if exc.report is None or abs(exc.coverage - 0.5) > 1e-9:
            failures.append(
                f"floor error should carry the 0.5-coverage report, got "
                f"coverage {exc.coverage}"
            )

    # ---- the fenced retry --------------------------------------------
    # race7 is owned by shard-2, which failed over mid-scatter: the
    # fleet's cached lease predates the promotion and must fence once
    fleet.register_document(_document(_LATE_VIDEO), "formula1")
    report.fenced_retries = fleet.fenced_retries
    if fleet.fenced_retries != 1:
        failures.append(
            f"expected exactly 1 fenced write retry after shard-2's "
            f"failover, got {fleet.fenced_retries}"
        )
    events.append(
        f"late registration of {_LATE_VIDEO!r} fenced and retried under a "
        f"fresh lease"
    )

    # ---- rebalance + convergence -------------------------------------
    rebalance = fleet.rebalance()
    report.moves = [list(move) for move in rebalance.moves]
    events.append(f"rebalanced: {report.moves}")
    if {move[1] for move in rebalance.moves} != {"shard-1"}:
        failures.append(
            f"rebalance must move exactly the dead shard's documents, "
            f"moved {report.moves}"
        )
    if sorted(move[0] for move in rebalance.moves) != [
        "race0", "race3", "race5",
    ]:
        failures.append(
            f"expected race0/race3/race5 to leave shard-1, moved "
            f"{report.moves}"
        )

    final = fleet.query("RETRIEVE fly_out")
    report.final_coverage = final.coverage.to_dict()
    if not final.coverage.complete:
        failures.append(
            f"post-rebalance gather is not complete: "
            f"{final.coverage.describe()}"
        )
    if "shard-1" in final.coverage.targeted:
        failures.append("post-rebalance gather still targets the dead shard")
    if len(final.records) != 7:
        failures.append(
            f"expected all 7 record(s) after rebalance, got "
            f"{len(final.records)}"
        )

    fleet.pump()
    failures.extend(fleet.convergence_report())

    status = fleet.status()
    report.dead = fleet.dead_shards()
    for shard_status in status.shards:
        report.epochs[shard_status.name] = shard_status.epoch
    if report.dead != ["shard-1"]:
        failures.append(f"expected exactly shard-1 dead, got {report.dead}")
    if report.epochs.get("shard-2") != 2:
        failures.append(
            f"expected shard-2 at epoch 2 after its in-shard failover, "
            f"got {report.epochs.get('shard-2')}"
        )
    events.append("surviving catalogs converged byte-for-byte")
    fleet.close()
    return report


@dataclass
class PlacementSweepSummary:
    """Two-phase registration crashed at every placement crash point."""

    results: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result["ok"] for result in self.results)

    def describe(self) -> str:
        lines = []
        for result in self.results:
            status = "ok" if result["ok"] else "FAIL"
            lines.append(
                f"{status}  kill@{result['site']}: recovery "
                f"{result['resolution']}, placements "
                f"{result['placements']}"
            )
            lines.extend(f"      {f}" for f in result["failures"])
        good = sum(1 for result in self.results if result["ok"])
        lines.append(
            f"placement kill sweep: {good}/{len(self.results)} crash "
            f"point(s) recovered to a consistent placement"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {"results": list(self.results), "ok": self.ok}


def placement_kill_sweep(
    base_dir: str | Path,
    seed: int = 2026,
    fsync: bool = True,
) -> PlacementSweepSummary:
    """Crash registration at each two-phase crash point; recovery must
    roll the in-doubt placement back (prepared) or forward (registered)."""
    base = Path(base_dir)
    summary = PlacementSweepSummary()
    for site in PLACEMENT_KILL_SITES:
        scratch = base / site.replace(":", "__").replace(".", "_")
        plan = FaultPlan(
            seed=seed,
            name=f"placement-kill@{site}",
            specs=(FaultSpec(site=site, kind="kill", max_triggers=1),),
        )
        failures: list[str] = []
        fleet = ShardedKernel(
            scratch,
            shards=2,
            config=ShardConfig(fsync=fsync),
            faults=FaultInjector(plan),
        )
        crashed = False
        try:
            fleet.register_document(_document("race0"), "formula1")
        except SimulatedCrash:
            crashed = True
        if not crashed:
            failures.append(f"kill at {site} never fired")
        fleet.close()

        # reopen: recovery must resolve the in-doubt placement
        recovered = ShardedKernel(
            scratch, shards=2, config=ShardConfig(fsync=fsync)
        )
        placements = recovered.placements()
        rows_durable = site == "sharding.place:registered"
        resolution = "rolled forward" if rows_durable else "rolled back"
        if rows_durable and "race0" not in placements:
            failures.append(
                "rows reached the owning shard before the crash but "
                "recovery rolled the placement back"
            )
        if not rows_durable and placements:
            failures.append(
                f"no rows reached any shard but recovery committed "
                f"{placements}"
            )
        # re-registration must complete (or idempotently restore) the
        # placement either way, and the catalogs must converge
        recovered.register_document(_document("race0"), "formula1")
        if "race0" not in recovered.placements():
            failures.append("re-registration after recovery did not place")
        failures.extend(recovered.convergence_report())
        recovered.close()
        summary.results.append(
            {
                "site": site,
                "resolution": resolution,
                "placements": placements,
                "failures": failures,
                "ok": not failures,
            }
        )
    return summary


# ---------------------------------------------------------------------------
# online split under load
# ---------------------------------------------------------------------------

#: The split corpus: on the two-shard ring shard-0 owns race1/race4/
#: race6/race9 and shard-1 the rest; adding shard-2 remaps race2, race7,
#: race8 (from shard-1) and race9 (from shard-0).
_SPLIT_VIDEO_IDS = tuple(f"race{i}" for i in range(10))

#: The document migrated by hand mid-scenario (the first of the remapped
#: set in sorted order, owned by shard-1).
_SPLIT_PILOT = "race2"


@dataclass
class SplitChaosReport:
    """Deterministic outcome of one split-under-load scenario run."""

    seed: int
    remapped: list[str] = field(default_factory=list)
    mid_copy_coverage: dict[str, Any] = field(default_factory=dict)
    dual_read_coverage: dict[str, Any] = field(default_factory=dict)
    dual_read_records: int = 0
    lag_refusal: dict[str, int] = field(default_factory=dict)
    fenced_retries: int = 0
    moves: list[list[str]] = field(default_factory=list)
    final_coverage: dict[str, Any] = field(default_factory=dict)
    routing_epoch: int = 0
    failures: list[str] = field(default_factory=list)
    events: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"{status}  split-under-load scenario (seed={self.seed}): "
            f"{len(self.remapped)} document(s) remapped, dual-read "
            f"coverage {self.dual_read_coverage.get('fraction', '?')} "
            f"({self.dual_read_coverage.get('dual_read', '?')} dual "
            f"read(s)), cutover refused at lag "
            f"{self.lag_refusal.get('lag', '?')}, "
            f"{self.fenced_retries} fenced retry(ies), "
            f"{len(self.moves)} split move(s)"
        ]
        lines.extend(f"      {failure}" for failure in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "remapped": list(self.remapped),
            "mid_copy_coverage": dict(self.mid_copy_coverage),
            "dual_read_coverage": dict(self.dual_read_coverage),
            "dual_read_records": self.dual_read_records,
            "lag_refusal": dict(self.lag_refusal),
            "fenced_retries": self.fenced_retries,
            "moves": [list(move) for move in self.moves],
            "final_coverage": dict(self.final_coverage),
            "routing_epoch": self.routing_epoch,
            "failures": list(self.failures),
            "events": list(self.events),
            "ok": self.ok,
        }


def split_under_load_scenario(
    base_dir: str | Path,
    seed: int = 2026,
    fsync: bool = True,
) -> SplitChaosReport:
    """Run the seeded online-split scenario once.

    The pilot document migrates by hand so every mid-flight contract is
    observable — dual read while its source is partitioned, cutover
    refused above the lag floor, the stale write intent fenced — then an
    idempotent :meth:`ShardedKernel.split` finishes the remaining moves.
    """
    plan = FaultPlan(
        seed=seed,
        name="split-under-load",
        specs=(
            # the pilot's *source* shard drops off the network for exactly
            # one gather — fired by the first query below, mid-copy, so
            # the pilot must be answered through the destination copy
            FaultSpec(
                site="sharding.transport:shard-1",
                kind="partition",
                max_triggers=1,
            ),
        ),
    )
    report = SplitChaosReport(seed=seed)
    events = report.events
    failures = report.failures

    fleet = ShardedKernel(
        base_dir,
        shards=2,
        config=ShardConfig(min_coverage=0.25, fsync=fsync),
        faults=FaultInjector(plan),
    )
    documents = {}
    for video_id in _SPLIT_VIDEO_IDS:
        documents[video_id] = _document(video_id)
        fleet.register_document(documents[video_id], "formula1")
    events.append(f"registered {len(_SPLIT_VIDEO_IDS)} document(s)")

    # ---- the shard joins; the pilot's copy phase opens ----------------
    remapped = fleet.add_shard("shard-2")
    report.remapped = list(remapped)
    events.append(f"shard-2 joined; remapped {remapped}")
    if remapped != ["race2", "race7", "race8", "race9"]:
        failures.append(
            f"ring remap is not the expected minimal set: {remapped}"
        )
    migrations = fleet.migrations
    state = migrations.plan(_SPLIT_PILOT)
    migrations.copy(_SPLIT_PILOT)
    events.append(
        f"pilot {_SPLIT_PILOT!r} copied {state.src} -> {state.dst}; "
        f"source still owns reads"
    )

    # ---- dual read: the source is partitioned mid-copy ----------------
    result = fleet.query("RETRIEVE fly_out")
    coverage = result.coverage
    report.dual_read_coverage = coverage.to_dict()
    report.dual_read_records = len(result.records)
    events.append(f"gather with the source partitioned: {coverage.describe()}")
    if coverage.dual_read < 1:
        failures.append(
            f"the pilot should have been answered through a dual read, "
            f"coverage reports {coverage.dual_read}"
        )
    if coverage.migrating != 1:
        failures.append(
            f"one migration is in flight but coverage reports "
            f"{coverage.migrating}"
        )
    # shard-0's four documents plus the pilot through its destination copy
    if coverage.documents_covered != 5 or not result.degraded:
        failures.append(
            f"expected a degraded 5/10 answer (source shard lost, pilot "
            f"dual-read), got {coverage.documents_covered}/"
            f"{coverage.documents_total}"
        )
    pilot_rows = [
        row for row in result.records if row["video_id"] == _SPLIT_PILOT
    ]
    if len(pilot_rows) != 1:
        failures.append(
            f"the dual read must contribute the pilot exactly once, got "
            f"{len(pilot_rows)} row(s)"
        )

    # ---- bounded staleness: a write lands, cutover is refused ---------
    late_event = documents[_SPLIT_PILOT].new_event(
        "passing", Interval(30.0, 36.0), 0.8, {}, "dbn"
    )
    target = fleet.store_event(_SPLIT_PILOT, late_event)
    events.append(f"mid-copy write routed to owner {target!r}")
    if target != state.src:
        failures.append(
            f"a pre-cutover write must land on the source, went to "
            f"{target!r}"
        )
    try:
        migrations.cutover(_SPLIT_PILOT)
        failures.append("cutover above the lag floor was not refused")
    except MigrationLagError as exc:
        report.lag_refusal = {"lag": exc.lag, "floor": exc.floor}
        events.append(f"cutover refused: {exc}")

    # ---- fenced cutover: a stale intent must not reach the source -----
    stale_intent = fleet.write_intent(_SPLIT_PILOT)
    migrations.catch_up(_SPLIT_PILOT)
    migrations.cutover(_SPLIT_PILOT)
    events.append("tail drained; ownership cut over; routing epoch bumped")
    fence_event = documents[_SPLIT_PILOT].new_event(
        "pit_stop", Interval(50.0, 58.0), 0.7, {}, "dbn"
    )
    try:
        stale_intent.apply(fence_event)
        failures.append("a pre-cutover write intent was honored afterwards")
    except FencedWriteError:
        events.append("stale pre-cutover intent fenced")
    retry_target = fleet.store_event(_SPLIT_PILOT, fence_event)
    report.fenced_retries = fleet.migration_fenced_retries
    if retry_target != state.dst or report.fenced_retries != 0:
        failures.append(
            f"a fresh post-cutover write should land on {state.dst!r} "
            f"without fencing, went to {retry_target!r} after "
            f"{report.fenced_retries} retry(ies)"
        )
    migrations.retire(_SPLIT_PILOT)
    events.append("pilot retired after byte-for-byte copy verification")

    # ---- the split finishes the remaining moves -----------------------
    split = fleet.split("shard-2")
    report.moves = [list(move) for move in split.moves]
    events.append(f"split completed: {report.moves}")
    if [move[0] for move in split.moves] != ["race7", "race8", "race9"]:
        failures.append(
            f"the idempotent split must migrate exactly the documents "
            f"the pilot left behind, moved {report.moves}"
        )

    final = fleet.query("RETRIEVE fly_out")
    report.final_coverage = final.coverage.to_dict()
    if not final.coverage.complete or final.coverage.migrating:
        failures.append(
            f"post-split gather is not a complete, migration-free "
            f"answer: {final.coverage.describe()}"
        )
    if len(final.records) != len(_SPLIT_VIDEO_IDS):
        failures.append(
            f"expected all {len(_SPLIT_VIDEO_IDS)} record(s) after the "
            f"split, got {len(final.records)}"
        )
    report.routing_epoch = fleet._routing_epoch
    if report.routing_epoch != 5:
        failures.append(
            f"four cutovers should leave the routing epoch at 5, got "
            f"{report.routing_epoch}"
        )

    failures.extend(fleet.convergence_report())
    if not failures:
        events.append("catalogs converged byte-for-byte after the split")
    fleet.close()
    return report


@dataclass
class MigrationSweepSummary:
    """The split crashed at every migration kill point and recovered."""

    results: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result["ok"] for result in self.results)

    def describe(self) -> str:
        lines = []
        for result in self.results:
            status = "ok" if result["ok"] else "FAIL"
            lines.append(
                f"{status}  kill@{result['site']}: {result['resolution']}, "
                f"{len(result['resumed_moves'])} move(s) left for the "
                f"re-split"
            )
            lines.extend(f"      {f}" for f in result["failures"])
        good = sum(1 for result in self.results if result["ok"])
        lines.append(
            f"migration kill sweep: {good}/{len(self.results)} crash "
            f"point(s) recovered to the reference state byte-for-byte"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {"results": list(self.results), "ok": self.ok}


def _split_fleet(
    scratch: Path, fsync: bool, faults: "FaultInjector | None" = None
) -> tuple[ShardedKernel, dict[str, VideoDocument]]:
    fleet = ShardedKernel(
        scratch,
        shards=2,
        config=ShardConfig(fsync=fsync),
        faults=faults,
    )
    documents = {}
    for video_id in _SPLIT_VIDEO_IDS:
        documents[video_id] = _document(video_id)
        fleet.register_document(documents[video_id], "formula1")
    return fleet, documents


def migration_kill_sweep(
    base_dir: str | Path,
    seed: int = 2026,
    fsync: bool = True,
) -> MigrationSweepSummary:
    """Crash the split at each migration kill point; recovery plus an
    idempotent re-split must land byte-for-byte on the reference state.

    The reference run splits the same corpus with no faults; each crash
    run must recover to identical placements, identical query answers
    (every document exactly once — nothing lost, nothing duplicated) and
    an empty convergence report.
    """
    base = Path(base_dir)
    summary = MigrationSweepSummary()

    reference, _ = _split_fleet(base / "reference", fsync)
    reference.split("shard-2")
    ref_placements = reference.placements()
    ref_records = json.dumps(
        reference.query("RETRIEVE fly_out").records,
        sort_keys=True,
        default=repr,  # Interval objects; repr is deterministic
    )
    ref_convergence = reference.convergence_report()
    reference.close()
    if ref_convergence:
        summary.results.append(
            {
                "site": "<reference>",
                "resolution": "reference run failed to converge",
                "resumed_moves": [],
                "failures": list(ref_convergence),
                "ok": False,
            }
        )
        return summary

    for site in MIGRATION_KILL_SITES:
        scratch = base / site.replace(":", "__").replace(".", "_")
        plan = FaultPlan(
            seed=seed,
            name=f"migration-kill@{site}",
            specs=(FaultSpec(site=site, kind="kill", max_triggers=1),),
        )
        failures: list[str] = []
        fleet, documents = _split_fleet(
            scratch, fsync, faults=FaultInjector(plan)
        )
        crashed = False
        try:
            fleet.split("shard-2")
        except SimulatedCrash:
            crashed = True
        if not crashed:
            failures.append(f"kill at {site} never fired")
        fleet.close()

        # reopen: recovery sweeps every in-doubt migration forward or
        # back; the re-split then finishes whatever rolled back
        recovered = ShardedKernel(
            scratch, shards=2, config=ShardConfig(fsync=fsync)
        )
        in_doubt = recovered.migrations.in_flight()
        if in_doubt:
            failures.append(
                f"recovery left migrations in flight: {in_doubt}"
            )
        for video_id, document in documents.items():
            recovered.register_document(document, "formula1")
        resumed = recovered.split("shard-2")
        resolution = (
            f"recovery rolled the in-doubt work to a verified state; "
            f"re-split moved {[m[0] for m in resumed.moves]}"
            if resumed.moves
            else "recovery rolled every move forward; re-split was a no-op"
        )
        if recovered.placements() != ref_placements:
            failures.append(
                f"placements diverged from the reference run: "
                f"{recovered.placements()} != {ref_placements}"
            )
        records = json.dumps(
            recovered.query("RETRIEVE fly_out").records,
            sort_keys=True,
            default=repr,
        )
        if records != ref_records:
            failures.append(
                "query answers diverged from the reference run (lost or "
                "duplicated document rows)"
            )
        failures.extend(recovered.convergence_report())
        recovered.close()
        summary.results.append(
            {
                "site": site,
                "resolution": resolution,
                "resumed_moves": [list(m) for m in resumed.moves],
                "failures": failures,
                "ok": not failures,
            }
        )
    return summary
