"""The sharded kernel fleet: consistent-hash placement + robust gathers.

A :class:`ShardedKernel` fronts N shards. Each shard is one durable
:class:`repro.monet.MonetKernel` — optionally wrapped in a replicated
:class:`repro.replication.KernelGroup` (``replication > 0``) so the shard
itself survives primary loss. Documents are placed by consistent hashing
on the video id (:class:`repro.sharding.HashRing`); metadata rows live
only on the owning shard, and queries scatter to the owning shards and
gather a merged answer.

The gather is robust *by construction*:

* every shard sub-request passes a per-shard :class:`CircuitBreaker` and
  an optional per-shard deadline;
* the shard transport is a fault site (``sharding.transport:<shard>``):
  ``partition`` severs the link (the request is lost), ``lag`` makes the
  shard a straggler — answered through a **hedged** backup request
  (a replica read when the shard is replicated, a second attempt
  otherwise), ``kill`` crashes the shard process mid-scatter;
* a crashed replicated shard fails over internally (its group promotes a
  replica); the fleet's cached write lease then fences, and the write
  path **retries with a fresh lease exactly once**
  (``FencedWriteError`` → re-lease → retry);
* a gather that loses shards never raises on its own: it returns a
  degraded :class:`repro.cobra.vdbms.QueryResult` carrying a
  :class:`ShardCoverageReport` (answered / shed / timed out / dead shards
  and the fraction of the corpus covered). Only when coverage falls below
  the caller's ``min_coverage`` floor does the gather fail loudly with a
  typed :class:`repro.errors.InsufficientCoverageError`.

Document registration is **two-phase** and WAL-journaled: a ``prepare``
record lands in the fleet's placement journal, the rows land on the
owning shard (inside that shard's own WAL transaction), then a ``commit``
record seals the placement. A crash between the phases
(``sharding.place:prepared`` / ``sharding.place:registered`` kill sites)
recovers to a consistent placement: a prepared-but-unregistered document
rolls back, a registered-but-uncommitted one rolls forward. Marking a
shard dead triggers deterministic rebalancing — its documents move to
their ring successors in journal order, so two fleets replaying the same
history agree byte-for-byte (:meth:`ShardedKernel.convergence_report`).

Construction runs the :mod:`repro.check.shardcheck` static pass
(SHARD001-SHARD003) under the configured check mode; MIL registered for
scatter execution (:meth:`ShardedKernel.run`) additionally runs SHARD004.
The transport is simulated in-process — shards are kernels, not sockets —
which is exactly what makes every disaster here a seeded, replayable test.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.check.diagnostics import CheckMode, Diagnostic
from repro.cobra.metadata import MetadataStore
from repro.cobra.model import VideoDocument
from repro.cobra.preprocessor import (
    PreprocessReport,
    ScatterPlan,
    choose_scatter_plan,
)
from repro.cobra.query import CoqlQuery, QueryExecutor, parse_coql
from repro.cobra.vdbms import QueryResult
from repro.durability.chaos import compare_catalogs
from repro.durability.store import DurableStore
from repro.errors import (
    CircuitOpenError,
    CobraError,
    DeadlineExceeded,
    FencedWriteError,
    InsufficientCoverageError,
    MonetError,
    PlacementError,
    ReplicationError,
    ShardingCheckError,
    ShardingError,
    SimulatedCrash,
    TransientError,
    UnknownConceptError,
)
from repro.faults import FaultInjector, FaultPlan, resolve_injector
from repro.monet.kernel import MonetKernel
from repro.replication.group import GroupConfig, KernelGroup, Lease
from repro.resilience import CircuitBreaker, Deadline
from repro.sharding.ring import HashRing

__all__ = [
    "FleetStatus",
    "GatherResult",
    "RebalanceReport",
    "ShardConfig",
    "ShardCoverageReport",
    "ShardStatus",
    "ShardedKernel",
]

#: The placement journal file under the fleet's base directory.
JOURNAL_FILE = "placements.log"


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of one sharded fleet."""

    #: Fleet-wide coverage floor for gathers (callers override per query).
    #: Zero means "no floor" and is flagged SHARD002.
    min_coverage: float = 0.25
    #: Where writes route; anything but "owner" is SHARD001.
    write_routing: str = "owner"
    #: Replicas per shard (0 = bare kernels, no per-shard failover).
    replication: int = 0
    #: Epoch fencing on the per-shard groups (SHARD003 when off).
    fencing: bool = True
    #: Read policy of the per-shard groups (primary | any | bounded(ms)).
    read_policy: str = "primary"
    #: Consecutive failed probes before a shard's breaker opens.
    failure_threshold: int = 2
    #: Breaker open -> half-open delay (seconds).
    recovery_timeout: float = 30.0
    #: Per-shard sub-request budget in seconds; None = no wall-clock bound
    #: (the deterministic default — chaos classifies losses by fault kind).
    shard_deadline: float | None = None
    #: Issue hedged backup requests for stragglers and transient losses.
    hedge: bool = True
    #: Virtual nodes per shard on the placement ring.
    vnodes: int = 32
    #: Strictness of the SHARD static pass: error | warn | off.
    check: str = "error"
    #: fsync discipline for the shard stores and the placement journal.
    fsync: bool = True


@dataclass(frozen=True)
class ShardCoverageReport:
    """What one gather reached — the honest-degradation contract.

    ``answered`` shards contributed rows (``hedged`` is the subset that
    answered through a backup request); ``shed`` were skipped by an open
    circuit breaker; ``timed_out`` lost the sub-request to a partition,
    deadline, or unrecovered transient; ``dead`` were known-dead before
    the scatter or died during it. Coverage is measured in documents, not
    shards: losing an empty shard costs nothing.
    """

    plan: str
    targeted: tuple[str, ...]
    answered: tuple[str, ...]
    hedged: tuple[str, ...]
    shed: tuple[str, ...]
    timed_out: tuple[str, ...]
    dead: tuple[str, ...]
    documents_total: int
    documents_covered: int

    @property
    def fraction(self) -> float:
        """Fraction of the registered corpus the answer covers."""
        if self.documents_total == 0:
            return 1.0
        return self.documents_covered / self.documents_total

    @property
    def complete(self) -> bool:
        return self.documents_covered == self.documents_total

    @property
    def lost(self) -> tuple[str, ...]:
        return tuple(
            sorted(set(self.shed) | set(self.timed_out) | set(self.dead))
        )

    def describe(self) -> str:
        parts = [
            f"coverage {self.fraction:.3f} "
            f"({self.documents_covered}/{self.documents_total} document(s), "
            f"plan {self.plan})",
            f"answered {list(self.answered)}",
        ]
        if self.hedged:
            parts.append(f"hedged {list(self.hedged)}")
        if self.shed:
            parts.append(f"shed {list(self.shed)}")
        if self.timed_out:
            parts.append(f"timed out {list(self.timed_out)}")
        if self.dead:
            parts.append(f"dead {list(self.dead)}")
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan,
            "targeted": list(self.targeted),
            "answered": list(self.answered),
            "hedged": list(self.hedged),
            "shed": list(self.shed),
            "timed_out": list(self.timed_out),
            "dead": list(self.dead),
            "documents_total": self.documents_total,
            "documents_covered": self.documents_covered,
            "fraction": round(self.fraction, 6),
        }


@dataclass
class GatherResult:
    """Per-shard values of one scatter-gather PROC call."""

    values: dict[str, Any]
    coverage: ShardCoverageReport


@dataclass(frozen=True)
class RebalanceReport:
    """Deterministic outcome of one rebalance: (video, from, to) moves."""

    moves: tuple[tuple[str, str, str], ...]
    dead: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "moves": [list(move) for move in self.moves],
            "dead": list(self.dead),
        }


@dataclass(frozen=True)
class ShardStatus:
    """Deterministically comparable snapshot of one shard."""

    name: str
    dead: bool
    documents: int
    replicated: bool
    epoch: int
    failovers: int
    breaker: str


@dataclass(frozen=True)
class FleetStatus:
    """Deterministically comparable snapshot of the whole fleet."""

    shards: tuple[ShardStatus, ...]
    documents: int
    fenced_retries: int

    def describe(self) -> str:
        lines = [
            f"sharded fleet: {len(self.shards)} shard(s), "
            f"{self.documents} document(s), "
            f"{self.fenced_retries} fenced write retry(ies)"
        ]
        for status in self.shards:
            flags = []
            if status.dead:
                flags.append("DEAD")
            if status.replicated:
                flags.append(f"epoch {status.epoch}")
            if status.failovers:
                flags.append(f"{status.failovers} failover(s)")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"  {status.name}: {status.documents} document(s), "
                f"breaker {status.breaker}{suffix}"
            )
        return "\n".join(lines)


class _PlacementJournal:
    """Append-only JSON-lines journal of two-phase placement records."""

    def __init__(self, path: Path, fsync: bool = True):
        self.path = path
        self._fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())

    def records(self) -> list[dict[str, Any]]:
        """Every journaled record in order; a torn tail line (the crash
        landed mid-append) is discarded, exactly like a torn WAL tail."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                break
        return out


class _Shard:
    """One partition: a durable kernel, optionally a replicated group."""

    def __init__(
        self,
        name: str,
        kernel: MonetKernel,
        group: KernelGroup | None,
        breaker: CircuitBreaker,
    ):
        self.name = name
        self._kernel = kernel
        self.group = group
        self.breaker = breaker
        self.dead = False
        self.lease: Lease | None = group.lease() if group is not None else None
        self._view: MetadataStore | None = None
        self._view_kernel: MonetKernel | None = None

    @property
    def kernel(self) -> MonetKernel:
        """The shard's *current* primary (it changes across failovers)."""
        return self.group.primary if self.group is not None else self._kernel

    def view(self) -> MetadataStore:
        """The shard's metadata view, rebuilt when failover swapped the
        primary (the old view's BAT handles point at the dead kernel)."""
        kernel = self.kernel
        if self._view is None or self._view_kernel is not kernel:
            self._view = MetadataStore(kernel)
            self._view_kernel = kernel
        return self._view


class ShardedKernel:
    """Consistent-hash sharding with partial-failure-tolerant gathers.

    Args:
        base_dir: directory holding one subdirectory per shard (each with
            its durable store and, when replicated, its replica stores)
            plus the fleet's placement journal.
        shards: shard names, or a count (``3`` -> ``shard-0``..``shard-2``).
        faults: injector consulted on the shard transports
            (``sharding.transport:<shard>``) and the placement crash
            points (``sharding.place:prepared|registered``); the same
            injector reaches each shard's kernel and replication links.
        clock: injectable monotonic clock (breakers, deadlines).
    """

    def __init__(
        self,
        base_dir: str | Path,
        shards: int | Iterable[str] = 3,
        config: ShardConfig | None = None,
        faults: "FaultInjector | FaultPlan | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or ShardConfig()
        self._clock = clock
        self.faults = resolve_injector(faults)
        self.base_dir = Path(base_dir)
        if isinstance(shards, int):
            names = [f"shard-{i}" for i in range(shards)]
        else:
            names = list(shards)
        if len(set(names)) != len(names):
            raise ShardingError(f"duplicate shard names in {names}")

        # static vetting of the configuration (SHARD001-SHARD003)
        from repro.check.shardcheck import check_fleet_config

        mode = CheckMode.of(self.config.check)
        #: SHARD findings collected at construction (empty with check="off").
        self.diagnostics: list[Diagnostic] = []
        if mode.checks:
            report = check_fleet_config(self.config, names)
            self.diagnostics = report.sorted()
            if mode.raises:
                report.raise_if_errors(
                    "sharded fleet configuration", ShardingCheckError
                )

        self._lock = threading.RLock()
        self.ring = HashRing(names, vnodes=self.config.vnodes)
        self._shards: dict[str, _Shard] = {
            name: self._build_shard(name) for name in names
        }
        # every shard carries the (possibly empty) meta BATs from birth,
        # so an empty shard and a reference rebuild agree byte-for-byte
        for name in names:
            self._shards[name].view()
        self._journal = _PlacementJournal(
            self.base_dir / JOURNAL_FILE, fsync=self.config.fsync
        )
        self._seq = 0
        #: video id -> owning shard (the committed placement map).
        self._placements: dict[str, str] = {}
        #: shard -> video ids in journal (= BAT insertion) order, including
        #: documents later moved away; the byte-exact rebuild recipe.
        self._placement_order: dict[str, list[str]] = {n: [] for n in names}
        #: video id -> (document, domain) handles known to this process.
        self._documents: dict[str, tuple[VideoDocument, str]] = {}
        self._fenced_retries = 0
        self._recover_placements()

    def _build_shard(self, name: str) -> _Shard:
        store = DurableStore(
            self.base_dir / name / "primary",
            faults=self.faults,
            fsync=self.config.fsync,
        )
        primary = MonetKernel(
            threads=1, check="off", faults=self.faults, store=store
        )
        group: KernelGroup | None = None
        if self.config.replication > 0:
            group = KernelGroup(
                primary,
                self.base_dir / name,
                replicas=[
                    f"{name}-r{i}" for i in range(self.config.replication)
                ],
                config=GroupConfig(
                    read_policy=self.config.read_policy,
                    fencing=self.config.fencing,
                    failure_threshold=self.config.failure_threshold,
                    recovery_timeout=self.config.recovery_timeout,
                    fsync=self.config.fsync,
                    check=self.config.check,
                ),
                faults=self.faults,
                clock=self._clock,
                primary_name=name,
            )
        breaker = CircuitBreaker(
            name=f"sharding.shard:{name}",
            failure_threshold=self.config.failure_threshold,
            recovery_timeout=self.config.recovery_timeout,
            clock=self._clock,
        )
        return _Shard(name, primary, group, breaker)

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def live_shards(self) -> list[str]:
        return sorted(n for n, s in self._shards.items() if not s.dead)

    def dead_shards(self) -> list[str]:
        return sorted(n for n, s in self._shards.items() if s.dead)

    def shard(self, name: str) -> _Shard:
        try:
            return self._shards[name]
        except KeyError:
            raise ShardingError(
                f"no shard named {name!r} in the fleet "
                f"(have: {sorted(self._shards)})"
            ) from None

    def owner_of(self, video_id: str) -> str:
        """The shard currently owning ``video_id`` (placement map first,
        ring placement for documents not yet registered)."""
        placed = self._placements.get(video_id)
        if placed is not None:
            return placed
        return self.ring.owner(video_id, exclude=self.dead_shards())

    def placements(self) -> dict[str, str]:
        return dict(sorted(self._placements.items()))

    @property
    def fenced_retries(self) -> int:
        return self._fenced_retries

    # ------------------------------------------------------------------
    # two-phase registration
    # ------------------------------------------------------------------
    def register_document(
        self, document: VideoDocument, domain: str = "default"
    ) -> str:
        """Place and register one document; returns the owning shard.

        Phase 1 journals the intended placement (``prepare``) and lands
        the rows on the owning shard inside that shard's WAL transaction;
        phase 2 seals the placement (``commit``). The two
        ``sharding.place:*`` kill sites sit exactly between the phases, so
        the chaos sweep can crash the fleet in either half and recovery
        must converge (roll back an unregistered prepare, roll forward a
        registered one). Re-registering a recovered document only restores
        the Python-side handle, mirroring
        :meth:`repro.cobra.metadata.MetadataStore.register_document`.
        """
        video_id = document.raw.video_id
        with self._lock:
            if video_id in self._placements:
                # recovered placement: restore the handle, write nothing
                self._documents[video_id] = (document, domain)
                return self._placements[video_id]
            if self.config.write_routing == "owner":
                target = self.ring.owner(video_id, exclude=self.dead_shards())
            else:
                # SHARD001 rejects this routing; honoring it under
                # check="off"/"warn" demonstrates the hazard it names
                if self.config.write_routing not in self._shards:
                    raise PlacementError(
                        f"write_routing {self.config.write_routing!r} names "
                        f"no shard in the fleet"
                    )
                target = self.config.write_routing
            shard = self.shard(target)
            if shard.dead:
                raise ShardingError(
                    f"owning shard {target!r} is dead; rebalance before "
                    f"registering {video_id!r}"
                )
            self._seq += 1
            seq = self._seq
            self._journal.append(
                {
                    "op": "prepare",
                    "seq": seq,
                    "video": video_id,
                    "shard": target,
                    "domain": domain,
                }
            )
            self.faults.on_call("sharding.place:prepared")
            self._write_document(shard, document)
            self.faults.on_call("sharding.place:registered")
            self._journal.append(
                {"op": "commit", "seq": seq, "video": video_id}
            )
            self._place(video_id, target)
            self._documents[video_id] = (document, domain)
            return target

    def _place(self, video_id: str, shard: str) -> None:
        self._placements[video_id] = shard
        self._placement_order[shard].append(video_id)

    def _write_document(self, shard: _Shard, document: VideoDocument) -> None:
        def apply(kernel: MonetKernel) -> None:
            view = shard.view()
            with kernel.transaction():
                view.register_document(document)

        self._fenced_apply(shard, apply)

    def _fenced_apply(
        self, shard: _Shard, fn: Callable[[MonetKernel], Any]
    ) -> Any:
        """Apply a write to the shard — through its group's epoch-fenced
        lease when replicated, retrying exactly once with a fresh lease
        when the cached one was deposed by a shard failover."""
        if shard.group is None:
            return fn(shard.kernel)
        if shard.lease is None:
            shard.lease = shard.group.lease()
        try:
            return shard.lease.write(fn)
        except FencedWriteError:
            # the shard failed over since we leased; re-acquire and retry
            self._fenced_retries += 1
            shard.lease = shard.group.lease()
            return shard.lease.write(fn)

    # ------------------------------------------------------------------
    # scatter-gather reads
    # ------------------------------------------------------------------
    def query(
        self,
        coql: str | CoqlQuery,
        min_coverage: float | None = None,
        token: Any = None,
    ) -> QueryResult:
        """Scatter a COQL query to the owning shards; gather with partial-
        result semantics.

        ``min_coverage`` overrides the fleet's configured floor for this
        call. The result's ``coverage`` report states exactly which shards
        answered and what fraction of the corpus the records cover; below
        the floor the gather raises
        :class:`repro.errors.InsufficientCoverageError` instead.
        """
        parsed = parse_coql(coql) if isinstance(coql, str) else coql
        floor = (
            self.config.min_coverage if min_coverage is None else min_coverage
        )
        with self._lock:
            targets, plan = self._plan_gather(parsed)
            records: list[dict[str, Any]] = []
            buckets = _GatherBuckets()
            for name in targets:
                rows = self._gather_one(name, buckets, self._read_thunk(parsed))
                if rows is not None:
                    records.extend(rows)
            coverage = self._coverage(plan, targets, buckets)
        records.sort(key=lambda r: (r["video_id"], r["start"]))
        self._enforce_floor(coverage, floor)
        report = PreprocessReport(required_kinds=[parsed.kind])
        return QueryResult(parsed, records, report, coverage=coverage)

    def scatter_call(
        self,
        proc: str,
        args: tuple = (),
        min_coverage: float | None = None,
    ) -> GatherResult:
        """Call a MIL PROC on every live shard; gather per-shard values
        under the same partial-failure semantics as :meth:`query`."""
        floor = (
            self.config.min_coverage if min_coverage is None else min_coverage
        )
        with self._lock:
            targets = self.live_shards()
            buckets = _GatherBuckets()
            values: dict[str, Any] = {}

            def thunk(shard: _Shard) -> Any:
                return shard.kernel.call(proc, list(args))

            for name in targets:
                value = self._gather_one(name, buckets, thunk)
                if value is not None or name in buckets.answered:
                    values[name] = value
            coverage = self._coverage("fan-out", tuple(targets), buckets)
        self._enforce_floor(coverage, floor)
        return GatherResult(values=values, coverage=coverage)

    def _plan_gather(self, parsed: CoqlQuery) -> tuple[tuple[str, ...], str]:
        if parsed.video is not None:
            owner = self._placements.get(parsed.video)
            if owner is None:
                raise CobraError(f"unknown video {parsed.video!r}")
            return (owner,), "shard-local"
        owned = sorted({shard for shard in self._placements.values()})
        costs = {name: self._scan_cost(name) for name in owned}
        if not costs:
            return (), "shard-local"
        plan: ScatterPlan = choose_scatter_plan(parsed, costs)
        return plan.shards, plan.mode

    def _scan_cost(self, name: str) -> float:
        """Estimated rows a gather scans on one shard: the feature and
        event rows of the documents placed there (the document-awareness
        :func:`repro.check.costcheck.estimate_extraction_cost` applies to
        extraction plans, applied to gather plans)."""
        total = 0.0
        for video_id in self._placement_order[name]:
            if self._placements.get(video_id) != name:
                continue  # moved away by a rebalance
            handle = self._documents.get(video_id)
            if handle is None:
                total += 100.0  # recovered without a handle: nominal scan
                continue
            document = handle[0]
            total += float(
                sum(len(track.values) for track in document.features.values())
            )
            total += float(len(document.events))
        return total

    def _read_thunk(
        self, parsed: CoqlQuery
    ) -> Callable[[_Shard], list[dict[str, Any]]]:
        def thunk(shard: _Shard) -> list[dict[str, Any]]:
            return self._shard_read(shard, parsed)

        return thunk

    def _gather_one(
        self,
        name: str,
        buckets: "_GatherBuckets",
        thunk: Callable[[_Shard], Any],
    ) -> Any:
        """One shard sub-request: breaker, transport faults, deadline,
        hedging, and crash handling. Returns the shard's value, or None
        when the shard was lost (its name lands in the right bucket)."""
        shard = self._shards[name]
        if shard.dead:
            buckets.dead.append(name)
            return None
        try:
            shard.breaker.allow()
        except CircuitOpenError:
            buckets.shed.append(name)
            return None
        site = f"sharding.transport:{name}"
        deadline = (
            Deadline(self.config.shard_deadline, clock=self._clock)
            if self.config.shard_deadline is not None
            else None
        )
        hedged = False
        try:
            if self.faults.link_partitioned(site):
                # the link is severed: the request and any hedge are lost
                raise _RequestLost(f"transport to {name} partitioned")
            straggler = self.faults.link_lag(site) > 0
            self.faults.on_call(site)
            if straggler and self.config.hedge:
                value = self._backup_attempt(shard, thunk)
                hedged = True
            else:
                value = thunk(shard)
            if deadline is not None and deadline.expired:
                raise _RequestLost(f"shard {name} answered past the deadline")
        except SimulatedCrash:
            # the shard process died mid-scatter; a replicated shard fails
            # over internally, a bare one is dead until rebalanced
            shard.breaker.record_failure()
            if self._crash_shard(shard):
                buckets.timed_out.append(name)  # this gather lost it anyway
            else:
                buckets.dead.append(name)
            return None
        except (_RequestLost, DeadlineExceeded):
            shard.breaker.record_failure()
            buckets.timed_out.append(name)
            return None
        except TransientError:
            # one transient transport fault: hedge a backup request once
            if self.config.hedge and not hedged:
                try:
                    value = self._backup_attempt(shard, thunk)
                    hedged = True
                except (TransientError, ReplicationError, MonetError):
                    shard.breaker.record_failure()
                    buckets.timed_out.append(name)
                    return None
            else:
                shard.breaker.record_failure()
                buckets.timed_out.append(name)
                return None
        shard.breaker.record_success()
        buckets.answered.append(name)
        if hedged:
            buckets.hedged.append(name)
        return value

    def _shard_read(
        self, shard: _Shard, parsed: CoqlQuery
    ) -> list[dict[str, Any]]:
        try:
            return QueryExecutor(shard.view()).execute(parsed)
        except UnknownConceptError:
            # the kind may simply not live on this shard; an empty
            # contribution is a valid answer, not a failure
            return []

    def _backup_attempt(self, shard: _Shard, thunk: Callable[[_Shard], Any]) -> Any:
        """The hedged request: a replica read when the shard is
        replicated, a second primary attempt otherwise."""
        if shard.group is not None:
            routed = shard.group.route_read(policy="any")
            if routed.replica is not None:
                backup = _Shard(
                    shard.name, routed.kernel, None, shard.breaker
                )
                return thunk(backup)
        return thunk(shard)

    def _crash_shard(self, shard: _Shard) -> bool:
        """Handle a shard process death; True when the shard survived by
        failing over to a replica, False when it is dead."""
        if shard.group is None:
            shard.dead = True
            return False
        shard.group.report_primary_failure()
        try:
            for _ in range(self.config.failure_threshold):
                shard.group.probe()
        except ReplicationError:
            # no reachable replica to promote: the shard is gone
            shard.dead = True
            return False
        if not shard.group.status().primary_healthy:
            shard.dead = True
            return False
        return True

    def _coverage(
        self,
        plan: str,
        targets: tuple[str, ...] | tuple,
        buckets: "_GatherBuckets",
    ) -> ShardCoverageReport:
        answered = set(buckets.answered)
        covered = sum(
            1
            for video_id, shard in self._placements.items()
            if shard in answered
        )
        return ShardCoverageReport(
            plan=plan,
            targeted=tuple(targets),
            answered=tuple(sorted(answered)),
            hedged=tuple(sorted(buckets.hedged)),
            shed=tuple(sorted(buckets.shed)),
            timed_out=tuple(sorted(buckets.timed_out)),
            dead=tuple(sorted(buckets.dead)),
            documents_total=len(self._placements),
            documents_covered=covered,
        )

    def _enforce_floor(
        self, coverage: ShardCoverageReport, floor: float
    ) -> None:
        if coverage.fraction < floor:
            raise InsufficientCoverageError(
                f"gather lost shards {list(coverage.lost)}",
                coverage=coverage.fraction,
                required=floor,
                report=coverage,
            )

    # ------------------------------------------------------------------
    # scatter MIL registration
    # ------------------------------------------------------------------
    def run(self, mil_source: str) -> None:
        """Define MIL source on every live shard for scatter execution.

        Runs the SHARD004 pass first: certified fusion regions inside
        ``PARALLEL`` branches are de-certified by scattering, and the
        finding (advisory) lands on :attr:`diagnostics`. The whole-program
        pass follows — ``scatter_call`` targets are cross-proc paths by
        construction, so unresolved targets and uncancellable recursion
        (``CALLnnn``) must be rejected before the source fans out to every
        shard.
        """
        from repro.check.programcheck import ProgramChecker
        from repro.check.shardcheck import check_scatter_source

        with self._lock:
            mode = CheckMode.of(self.config.check)
            if mode.checks:
                report = check_scatter_source(mil_source, name="<scatter>")
                live = self.live_shards()
                if live:
                    interpreter = self._shards[live[0]].kernel.interpreter
                    report.extend(
                        ProgramChecker(
                            commands=interpreter._commands,
                            signatures=interpreter._signatures,
                            globals_names=list(
                                interpreter._globals.variables
                            ),
                            procedures=dict(interpreter._procs),
                        ).check_source(mil_source, name="<scatter>")
                    )
                self.diagnostics.extend(report.sorted())
                if mode.raises:
                    report.raise_if_errors(
                        "scatter MIL registration", ShardingCheckError
                    )
            for name in self.live_shards():
                shard = self._shards[name]
                self._fenced_apply(shard, lambda k: k.run(mil_source))

    # ------------------------------------------------------------------
    # failure handling + rebalance
    # ------------------------------------------------------------------
    def mark_dead(self, name: str) -> None:
        """Administratively declare one shard dead (operator decision or
        a failed in-shard failover); its documents are unreachable until
        :meth:`rebalance` moves them."""
        self.shard(name).dead = True

    def rebalance(self) -> RebalanceReport:
        """Move every document owned by a dead shard to its ring
        successor among the live shards.

        Moves replay the two-phase registration path (journal prepare →
        shard write → journal commit) in original journal order, so the
        destination BAT row order — and therefore the byte-for-byte
        convergence check — is a pure function of the fleet's history.
        Documents whose Python handle is unknown to this process cannot
        be re-registered and raise :class:`PlacementError`.
        """
        with self._lock:
            dead = self.dead_shards()
            moved: list[tuple[str, str, str]] = []
            ordered: list[tuple[str, str]] = []
            for shard_name in dead:
                for video_id in self._placement_order[shard_name]:
                    if self._placements.get(video_id) == shard_name:
                        ordered.append((video_id, shard_name))
            for video_id, src in ordered:
                handle = self._documents.get(video_id)
                if handle is None:
                    raise PlacementError(
                        f"cannot rebalance {video_id!r} off dead shard "
                        f"{src!r}: no document handle in this process to "
                        f"re-register from"
                    )
                document, domain = handle
                dst = self.ring.owner(video_id, exclude=dead)
                target = self.shard(dst)
                self._seq += 1
                seq = self._seq
                self._journal.append(
                    {
                        "op": "prepare",
                        "seq": seq,
                        "video": video_id,
                        "shard": dst,
                        "domain": domain,
                    }
                )
                self._write_document(target, document)
                self._journal.append(
                    {"op": "commit", "seq": seq, "video": video_id}
                )
                self._place(video_id, dst)
                moved.append((video_id, src, dst))
            return RebalanceReport(moves=tuple(moved), dead=tuple(dead))

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover_placements(self) -> None:
        """Rebuild the placement map from the journal, resolving in-doubt
        registrations: a prepare whose rows reached the owning shard rolls
        forward (the commit record is re-appended), one whose rows did not
        rolls back (an abort record keeps the audit trail)."""
        committed: set[str] = set()
        prepared: dict[int, dict[str, Any]] = {}
        records = self._journal.records()
        for record in records:
            self._seq = max(self._seq, int(record.get("seq", 0)))
            if record["op"] == "prepare":
                prepared[record["seq"]] = record
            elif record["op"] == "commit":
                entry = prepared.pop(record["seq"], None)
                if entry is not None:
                    self._place(entry["video"], entry["shard"])
                    committed.add(entry["video"])
            # "abort" records need no replay: the prepare they close was
            # already popped rolled-back state on the crashed run
            elif record["op"] == "abort":
                prepared.pop(record["seq"], None)
        for seq in sorted(prepared):
            entry = prepared[seq]
            video_id, shard_name = entry["video"], entry["shard"]
            if video_id in committed:
                continue  # a later registration superseded this prepare
            if self._shard_has_rows(shard_name, video_id):
                self._journal.append(
                    {"op": "commit", "seq": seq, "video": video_id}
                )
                self._place(video_id, shard_name)
            else:
                self._journal.append(
                    {"op": "abort", "seq": seq, "video": video_id}
                )

    def _shard_has_rows(self, shard_name: str, video_id: str) -> bool:
        kernel = self.shard(shard_name).kernel
        for bat_name in ("meta_event_video_id", "meta_object_video_id"):
            try:
                if video_id in kernel.bat(bat_name).tails():
                    return True
            except MonetError:
                continue
        return False

    # ------------------------------------------------------------------
    # maintenance + verification
    # ------------------------------------------------------------------
    def pump(self, rounds: int = 1) -> None:
        """Ship WAL records on every replicated live shard."""
        with self._lock:
            for name in self.live_shards():
                group = self._shards[name].group
                if group is not None:
                    group.pump(rounds=rounds)

    def checkpoint(self) -> dict[str, int]:
        """WAL checkpoint on every live shard; shard -> seqno."""
        with self._lock:
            return {
                name: self._shards[name].kernel.checkpoint()
                for name in self.live_shards()
            }

    def convergence_report(self) -> list[str]:
        """Byte-for-byte divergence of every live shard's metadata.

        Each live shard's ``meta_*`` BATs are compared against a reference
        rebuild — a fresh in-memory kernel fed the shard's documents in
        journal order, which reproduces the exact insertion sequence — and
        each replicated shard additionally runs its group's own
        convergence check. Empty means the placement map, the shard
        catalogs, and the replicas all agree.
        """
        with self._lock:
            failures: list[str] = []
            for name in self.live_shards():
                shard = self._shards[name]
                reference = MonetKernel(threads=1, check="off")
                view = MetadataStore(reference)
                for video_id in self._placement_order[name]:
                    handle = self._documents.get(video_id)
                    if handle is None:
                        failures.append(
                            f"{name}: no document handle for {video_id!r}; "
                            f"cannot rebuild the reference catalog"
                        )
                        continue
                    view.register_document(handle[0])
                expected = {
                    bat_name: bat
                    for bat_name, bat in reference.snapshot().items()
                    if bat_name.startswith("meta_")
                }
                actual = {
                    bat_name: bat
                    for bat_name, bat in shard.kernel.snapshot().items()
                    if bat_name.startswith("meta_")
                }
                failures.extend(
                    f"{name}: {message}"
                    for message in compare_catalogs(expected, actual)
                )
                if shard.group is not None:
                    failures.extend(
                        f"{name}: {message}"
                        for message in shard.group.convergence_report()
                    )
            for video_id, shard_name in sorted(self._placements.items()):
                if self._shards[shard_name].dead:
                    failures.append(
                        f"placement map routes {video_id!r} to dead shard "
                        f"{shard_name!r}; rebalance has not run"
                    )
            return failures

    def status(self) -> FleetStatus:
        with self._lock:
            shards = tuple(
                ShardStatus(
                    name=name,
                    dead=shard.dead,
                    documents=sum(
                        1
                        for video_id, owner in self._placements.items()
                        if owner == name
                    ),
                    replicated=shard.group is not None,
                    epoch=(
                        shard.group.epoch if shard.group is not None else 1
                    ),
                    failovers=(
                        len(shard.group.failovers)
                        if shard.group is not None
                        else 0
                    ),
                    breaker=shard.breaker.state,
                )
                for name, shard in sorted(self._shards.items())
            )
            return FleetStatus(
                shards=shards,
                documents=len(self._placements),
                fenced_retries=self._fenced_retries,
            )

    def close(self) -> None:
        """Release every shard's WAL handles (groups close their own)."""
        with self._lock:
            for _, shard in sorted(self._shards.items()):
                if shard.group is not None:
                    shard.group.close()
                else:
                    shard.kernel.close()


class _GatherBuckets:
    """Mutable per-gather shard outcome buckets."""

    def __init__(self) -> None:
        self.answered: list[str] = []
        self.hedged: list[str] = []
        self.shed: list[str] = []
        self.timed_out: list[str] = []
        self.dead: list[str] = []


class _RequestLost(TransientError):
    """Internal: a shard sub-request was lost to the transport."""
