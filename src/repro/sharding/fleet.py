"""The sharded kernel fleet: consistent-hash placement + robust gathers.

A :class:`ShardedKernel` fronts N shards. Each shard is one durable
:class:`repro.monet.MonetKernel` — optionally wrapped in a replicated
:class:`repro.replication.KernelGroup` (``replication > 0``) so the shard
itself survives primary loss. Documents are placed by consistent hashing
on the video id (:class:`repro.sharding.HashRing`); metadata rows live
only on the owning shard, and queries scatter to the owning shards and
gather a merged answer.

The gather is robust *by construction*:

* every shard sub-request passes a per-shard :class:`CircuitBreaker` and
  an optional per-shard deadline;
* the shard transport is a fault site (``sharding.transport:<shard>``):
  ``partition`` severs the link (the request is lost), ``lag`` makes the
  shard a straggler — answered through a **hedged** backup request
  (a replica read when the shard is replicated, a second attempt
  otherwise), ``kill`` crashes the shard process mid-scatter;
* a crashed replicated shard fails over internally (its group promotes a
  replica); the fleet's cached write lease then fences, and the write
  path **retries with a fresh lease exactly once**
  (``FencedWriteError`` → re-lease → retry);
* a gather that loses shards never raises on its own: it returns a
  degraded :class:`repro.cobra.vdbms.QueryResult` carrying a
  :class:`ShardCoverageReport` (answered / shed / timed out / dead shards
  and the fraction of the corpus covered). Only when coverage falls below
  the caller's ``min_coverage`` floor does the gather fail loudly with a
  typed :class:`repro.errors.InsufficientCoverageError`.

Document registration is **two-phase** and WAL-journaled: a ``prepare``
record lands in the fleet's placement journal, the rows land on the
owning shard (inside that shard's own WAL transaction), then a ``commit``
record seals the placement. A crash between the phases
(``sharding.place:prepared`` / ``sharding.place:registered`` kill sites)
recovers to a consistent placement: a prepared-but-unregistered document
rolls back, a registered-but-uncommitted one rolls forward. Marking a
shard dead triggers deterministic rebalancing — its documents move to
their ring successors in journal order, so two fleets replaying the same
history agree byte-for-byte (:meth:`ShardedKernel.convergence_report`).

Construction runs the :mod:`repro.check.shardcheck` static pass
(SHARD001-SHARD003) under the configured check mode; MIL registered for
scatter execution (:meth:`ShardedKernel.run`) additionally runs SHARD004.
The transport is simulated in-process — shards are kernels, not sockets —
which is exactly what makes every disaster here a seeded, replayable test.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.check.diagnostics import CheckMode, Diagnostic
from repro.cobra.metadata import MetadataStore
from repro.cobra.model import VideoDocument, VideoEvent
from repro.cobra.preprocessor import (
    PreprocessReport,
    ScatterPlan,
    choose_scatter_plan,
)
from repro.cobra.query import CoqlQuery, QueryExecutor, parse_coql
from repro.cobra.vdbms import QueryResult
from repro.durability.chaos import compare_catalogs
from repro.durability.store import DurableStore
from repro.errors import (
    CircuitOpenError,
    CobraError,
    DeadlineExceeded,
    FencedWriteError,
    InsufficientCoverageError,
    MonetError,
    PlacementError,
    ReplicationError,
    ShardConfigError,
    ShardingCheckError,
    ShardingError,
    SimulatedCrash,
    TransientError,
    UnknownConceptError,
)
from repro.faults import FaultInjector, FaultPlan, resolve_injector
from repro.monet.kernel import MonetKernel
from repro.replication.group import GroupConfig, KernelGroup, Lease
from repro.resilience import CircuitBreaker, Deadline, cancel_checkpoint
from repro.sharding.migration import (
    MigrationCoordinator,
    PlacementLease,
    SplitReport,
    event_from_payload,
    pruned_document,
)
from repro.sharding.ring import HashRing

__all__ = [
    "FleetStatus",
    "GatherResult",
    "RebalanceReport",
    "ShardConfig",
    "ShardCoverageReport",
    "ShardStatus",
    "ShardedKernel",
]

#: The placement journal file under the fleet's base directory.
JOURNAL_FILE = "placements.log"


def _validate_floor(value: float, name: str) -> None:
    """Coverage floors are fractions of the corpus; anything outside
    [0, 1] is a typo that would silently reject (or wave through) every
    gather, so it fails loudly and typed at configuration time."""
    if not 0.0 <= value <= 1.0:
        raise ShardConfigError(
            f"{name} must be a coverage fraction in [0, 1], got {value!r}"
        )


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of one sharded fleet."""

    #: Fleet-wide coverage floor for gathers (callers override per query).
    #: Zero means "no floor" and is flagged SHARD002.
    min_coverage: float = 0.25
    #: Where writes route; anything but "owner" is SHARD001.
    write_routing: str = "owner"
    #: Replicas per shard (0 = bare kernels, no per-shard failover).
    replication: int = 0
    #: Epoch fencing on the per-shard groups (SHARD003 when off).
    fencing: bool = True
    #: Read policy of the per-shard groups (primary | any | bounded(ms)).
    read_policy: str = "primary"
    #: Consecutive failed probes before a shard's breaker opens.
    failure_threshold: int = 2
    #: Breaker open -> half-open delay (seconds).
    recovery_timeout: float = 30.0
    #: Per-shard sub-request budget in seconds; None = no wall-clock bound
    #: (the deterministic default — chaos classifies losses by fault kind).
    shard_deadline: float | None = None
    #: Issue hedged backup requests for stragglers and transient losses.
    hedge: bool = True
    #: Virtual nodes per shard on the placement ring.
    vnodes: int = 32
    #: Strictness of the SHARD static pass: error | warn | off.
    check: str = "error"
    #: fsync discipline for the shard stores and the placement journal.
    fsync: bool = True
    #: Max pending tail records a migration may carry into cutover
    #: (bounded staleness); above it cutover raises MigrationLagError.
    catchup_lag_floor: int = 0
    #: Count in-flight migrations and dual reads on coverage reports
    #: (SHARD005 when off: mid-migration degradation turns invisible).
    migration_accounting: bool = True
    #: Epoch-fence stale write intents after a cutover (SHARD006 when
    #: off: a stale source shard accepts writes no gather will read).
    migration_fencing: bool = True


@dataclass(frozen=True)
class ShardCoverageReport:
    """What one gather reached — the honest-degradation contract.

    ``answered`` shards contributed rows (``hedged`` is the subset that
    answered through a backup request); ``shed`` were skipped by an open
    circuit breaker; ``timed_out`` lost the sub-request to a partition,
    deadline, or unrecovered transient; ``dead`` were known-dead before
    the scatter or died during it. Coverage is measured in documents, not
    shards: losing an empty shard costs nothing.
    """

    plan: str
    targeted: tuple[str, ...]
    answered: tuple[str, ...]
    hedged: tuple[str, ...]
    shed: tuple[str, ...]
    timed_out: tuple[str, ...]
    dead: tuple[str, ...]
    documents_total: int
    documents_covered: int
    #: Documents with a migration in flight at gather time; a split in
    #: progress is a visible, accounted condition, not a silent one.
    migrating: int = 0
    #: Migrating documents answered through their migration counterpart
    #: (destination before cutover, source after) because the owner was
    #: lost — the dual-read window made these covered.
    dual_read: int = 0

    @property
    def fraction(self) -> float:
        """Fraction of the registered corpus the answer covers."""
        if self.documents_total == 0:
            return 1.0
        return self.documents_covered / self.documents_total

    @property
    def complete(self) -> bool:
        return self.documents_covered == self.documents_total

    @property
    def lost(self) -> tuple[str, ...]:
        return tuple(
            sorted(set(self.shed) | set(self.timed_out) | set(self.dead))
        )

    def describe(self) -> str:
        parts = [
            f"coverage {self.fraction:.3f} "
            f"({self.documents_covered}/{self.documents_total} document(s), "
            f"plan {self.plan})",
            f"answered {list(self.answered)}",
        ]
        if self.hedged:
            parts.append(f"hedged {list(self.hedged)}")
        if self.shed:
            parts.append(f"shed {list(self.shed)}")
        if self.timed_out:
            parts.append(f"timed out {list(self.timed_out)}")
        if self.dead:
            parts.append(f"dead {list(self.dead)}")
        if self.migrating:
            parts.append(
                f"migrating {self.migrating} "
                f"(dual-read {self.dual_read})"
            )
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan,
            "targeted": list(self.targeted),
            "answered": list(self.answered),
            "hedged": list(self.hedged),
            "shed": list(self.shed),
            "timed_out": list(self.timed_out),
            "dead": list(self.dead),
            "documents_total": self.documents_total,
            "documents_covered": self.documents_covered,
            "fraction": round(self.fraction, 6),
            "migrating": self.migrating,
            "dual_read": self.dual_read,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShardCoverageReport":
        """Rebuild a report from its :meth:`to_dict` form (the JSON
        round-trip a :class:`repro.service.ServiceReport` carries)."""
        return cls(
            plan=payload["plan"],
            targeted=tuple(payload["targeted"]),
            answered=tuple(payload["answered"]),
            hedged=tuple(payload["hedged"]),
            shed=tuple(payload["shed"]),
            timed_out=tuple(payload["timed_out"]),
            dead=tuple(payload["dead"]),
            documents_total=payload["documents_total"],
            documents_covered=payload["documents_covered"],
            migrating=payload.get("migrating", 0),
            dual_read=payload.get("dual_read", 0),
        )


@dataclass
class GatherResult:
    """Per-shard values of one scatter-gather PROC call."""

    values: dict[str, Any]
    coverage: ShardCoverageReport


@dataclass(frozen=True)
class RebalanceReport:
    """Deterministic outcome of one rebalance: (video, from, to) moves."""

    moves: tuple[tuple[str, str, str], ...]
    dead: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "moves": [list(move) for move in self.moves],
            "dead": list(self.dead),
        }


@dataclass(frozen=True)
class ShardStatus:
    """Deterministically comparable snapshot of one shard."""

    name: str
    dead: bool
    documents: int
    replicated: bool
    epoch: int
    failovers: int
    breaker: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dead": self.dead,
            "documents": self.documents,
            "replicated": self.replicated,
            "epoch": self.epoch,
            "failovers": self.failovers,
            "breaker": self.breaker,
        }


@dataclass(frozen=True)
class FleetStatus:
    """Deterministically comparable snapshot of the whole fleet."""

    shards: tuple[ShardStatus, ...]
    documents: int
    fenced_retries: int
    #: Documents with a migration in flight (a split in progress).
    migrating: int = 0
    #: Writes fenced by a cutover and retried on the new owner.
    migration_fenced_retries: int = 0

    def describe(self) -> str:
        lines = [
            f"sharded fleet: {len(self.shards)} shard(s), "
            f"{self.documents} document(s), "
            f"{self.fenced_retries} fenced write retry(ies)"
        ]
        if self.migrating or self.migration_fenced_retries:
            lines.append(
                f"  migrating: {self.migrating} document(s), "
                f"{self.migration_fenced_retries} cutover-fenced "
                f"retry(ies)"
            )
        for status in self.shards:
            flags = []
            if status.dead:
                flags.append("DEAD")
            if status.replicated:
                flags.append(f"epoch {status.epoch}")
            if status.failovers:
                flags.append(f"{status.failovers} failover(s)")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"  {status.name}: {status.documents} document(s), "
                f"breaker {status.breaker}{suffix}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": [status.to_dict() for status in self.shards],
            "documents": self.documents,
            "fenced_retries": self.fenced_retries,
            "migrating": self.migrating,
            "migration_fenced_retries": self.migration_fenced_retries,
        }


class _PlacementJournal:
    """Append-only JSON-lines journal of two-phase placement records."""

    def __init__(self, path: Path, fsync: bool = True):
        self.path = path
        self._fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())

    def records(self) -> list[dict[str, Any]]:
        """Every journaled record in order; a torn tail line (the crash
        landed mid-append) is discarded, exactly like a torn WAL tail."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                break
        return out


class _Shard:
    """One partition: a durable kernel, optionally a replicated group."""

    def __init__(
        self,
        name: str,
        kernel: MonetKernel,
        group: KernelGroup | None,
        breaker: CircuitBreaker,
    ):
        self.name = name
        self._kernel = kernel
        self.group = group
        self.breaker = breaker
        self.dead = False
        self.lease: Lease | None = group.lease() if group is not None else None
        self._view: MetadataStore | None = None
        self._view_kernel: MonetKernel | None = None

    @property
    def kernel(self) -> MonetKernel:
        """The shard's *current* primary (it changes across failovers)."""
        return self.group.primary if self.group is not None else self._kernel

    def view(self) -> MetadataStore:
        """The shard's metadata view, rebuilt when failover swapped the
        primary (the old view's BAT handles point at the dead kernel)."""
        kernel = self.kernel
        if self._view is None or self._view_kernel is not kernel:
            self._view = MetadataStore(kernel)
            self._view_kernel = kernel
        return self._view


class ShardedKernel:
    """Consistent-hash sharding with partial-failure-tolerant gathers.

    Args:
        base_dir: directory holding one subdirectory per shard (each with
            its durable store and, when replicated, its replica stores)
            plus the fleet's placement journal.
        shards: shard names, or a count (``3`` -> ``shard-0``..``shard-2``).
        faults: injector consulted on the shard transports
            (``sharding.transport:<shard>``) and the placement crash
            points (``sharding.place:prepared|registered``); the same
            injector reaches each shard's kernel and replication links.
        clock: injectable monotonic clock (breakers, deadlines).
    """

    def __init__(
        self,
        base_dir: str | Path,
        shards: int | Iterable[str] = 3,
        config: ShardConfig | None = None,
        faults: "FaultInjector | FaultPlan | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or ShardConfig()
        self._clock = clock
        self.faults = resolve_injector(faults)
        self.base_dir = Path(base_dir)
        if isinstance(shards, int):
            names = [f"shard-{i}" for i in range(shards)]
        else:
            names = list(shards)
        if len(set(names)) != len(names):
            raise ShardingError(f"duplicate shard names in {names}")
        _validate_floor(self.config.min_coverage, "min_coverage")
        if self.config.catchup_lag_floor < 0:
            raise ShardConfigError(
                f"catchup_lag_floor must be >= 0 pending record(s), got "
                f"{self.config.catchup_lag_floor} — a negative lag floor "
                f"would refuse every cutover"
            )

        # static vetting of the configuration (SHARD001-SHARD003)
        from repro.check.shardcheck import check_fleet_config

        mode = CheckMode.of(self.config.check)
        #: SHARD findings collected at construction (empty with check="off").
        self.diagnostics: list[Diagnostic] = []
        if mode.checks:
            report = check_fleet_config(self.config, names)
            self.diagnostics = report.sorted()
            if mode.raises:
                report.raise_if_errors(
                    "sharded fleet configuration", ShardingCheckError
                )

        self._lock = threading.RLock()
        self.ring = HashRing(names, vnodes=self.config.vnodes)
        self._shards: dict[str, _Shard] = {
            name: self._build_shard(name) for name in names
        }
        # every shard carries the (possibly empty) meta BATs from birth,
        # so an empty shard and a reference rebuild agree byte-for-byte
        for name in names:
            self._shards[name].view()
        self._journal = _PlacementJournal(
            self.base_dir / JOURNAL_FILE, fsync=self.config.fsync
        )
        self._seq = 0
        #: video id -> owning shard (the committed placement map).
        self._placements: dict[str, str] = {}
        #: shard -> video ids in journal (= BAT insertion) order, including
        #: documents later moved away; feeds the gather cost model.
        self._placement_order: dict[str, list[str]] = {n: [] for n in names}
        #: shard -> insertion ops in journal (= BAT row) order: ``("doc",
        #: video, event_ids_at_insert)`` for a document landing, ``("event",
        #: video, payload)`` for a late event append. The byte-exact rebuild
        #: recipe for :meth:`convergence_report`.
        self._ops: dict[str, list[tuple[str, str, Any]]] = {
            n: [] for n in names
        }
        #: video id -> (document, domain) handles known to this process.
        self._documents: dict[str, tuple[VideoDocument, str]] = {}
        self._fenced_retries = 0
        #: Advanced by every migration cutover; write intents stamped with
        #: an older epoch fence instead of landing on a stale owner.
        self._routing_epoch = 1
        self._migration_fenced_retries = 0
        #: MIL sources registered for scatter execution; replayed onto
        #: shards added later so a grown fleet still answers scatter calls.
        self._mil_sources: list[str] = []
        #: The online split/migration subsystem (phases, fencing, recovery).
        self.migrations = MigrationCoordinator(self)
        self._recover_placements()

    def _build_shard(self, name: str) -> _Shard:
        store = DurableStore(
            self.base_dir / name / "primary",
            faults=self.faults,
            fsync=self.config.fsync,
        )
        primary = MonetKernel(
            threads=1, check="off", faults=self.faults, store=store
        )
        group: KernelGroup | None = None
        if self.config.replication > 0:
            group = KernelGroup(
                primary,
                self.base_dir / name,
                replicas=[
                    f"{name}-r{i}" for i in range(self.config.replication)
                ],
                config=GroupConfig(
                    read_policy=self.config.read_policy,
                    fencing=self.config.fencing,
                    failure_threshold=self.config.failure_threshold,
                    recovery_timeout=self.config.recovery_timeout,
                    fsync=self.config.fsync,
                    check=self.config.check,
                ),
                faults=self.faults,
                clock=self._clock,
                primary_name=name,
            )
        breaker = CircuitBreaker(
            name=f"sharding.shard:{name}",
            failure_threshold=self.config.failure_threshold,
            recovery_timeout=self.config.recovery_timeout,
            clock=self._clock,
        )
        return _Shard(name, primary, group, breaker)

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def live_shards(self) -> list[str]:
        return sorted(n for n, s in self._shards.items() if not s.dead)

    def dead_shards(self) -> list[str]:
        return sorted(n for n, s in self._shards.items() if s.dead)

    def shard(self, name: str) -> _Shard:
        try:
            return self._shards[name]
        except KeyError:
            raise ShardingError(
                f"no shard named {name!r} in the fleet "
                f"(have: {sorted(self._shards)})"
            ) from None

    def owner_of(self, video_id: str) -> str:
        """The shard currently owning ``video_id`` (placement map first,
        ring placement for documents not yet registered)."""
        placed = self._placements.get(video_id)
        if placed is not None:
            return placed
        return self.ring.owner(video_id, exclude=self.dead_shards())

    def placements(self) -> dict[str, str]:
        return dict(sorted(self._placements.items()))

    @property
    def fenced_retries(self) -> int:
        return self._fenced_retries

    @property
    def migration_fenced_retries(self) -> int:
        """Writes fenced by a cutover and retried on the new owner."""
        return self._migration_fenced_retries

    def _admit_shard(self, name: str) -> None:
        """Materialize one new shard into the live topology: build its
        kernel (and group), extend the ring, and replay registered
        scatter MIL so the grown fleet still answers scatter calls."""
        self._shards[name] = self._build_shard(name)
        self._shards[name].view()
        self.ring = self.ring.extended(name)
        self._placement_order.setdefault(name, [])
        self._ops.setdefault(name, [])
        for source in self._mil_sources:
            self._fenced_apply(
                self._shards[name], lambda k, s=source: k.run(s)
            )

    # ------------------------------------------------------------------
    # online split / migration (see repro.sharding.migration)
    # ------------------------------------------------------------------
    def add_shard(self, name: str) -> list[str]:
        """Durably add one shard to the live fleet; returns the video
        ids the grown ring remaps onto it."""
        return self.migrations.add_shard(name)

    def split(self, name: str) -> SplitReport:
        """Add shard ``name`` (if absent) and live-migrate every
        remapped document onto it without stopping reads or writes."""
        return self.migrations.split(name)

    def migrate_document(
        self, video_id: str, destination: str | None = None
    ) -> None:
        """Run the full five-phase migration protocol for one document."""
        self.migrations.migrate(video_id, destination)

    def store_event(self, video_id: str, event: VideoEvent) -> str:
        """Append one event to the document's owning shard (the fleet's
        online write path): fenced against concurrent cutovers, retried
        exactly once on the new owner, and — for a document mid-migration
        — appended to the migration's pending tail for catch-up."""
        return self.migrations.store_event(video_id, event)

    def write_intent(self, video_id: str) -> PlacementLease:
        """An epoch-stamped intent to write ``video_id`` later; fences
        when a cutover moves the document first."""
        return self.migrations.write_intent(video_id)

    # ------------------------------------------------------------------
    # two-phase registration
    # ------------------------------------------------------------------
    def register_document(
        self, document: VideoDocument, domain: str = "default"
    ) -> str:
        """Place and register one document; returns the owning shard.

        Phase 1 journals the intended placement (``prepare``) and lands
        the rows on the owning shard inside that shard's WAL transaction;
        phase 2 seals the placement (``commit``). The two
        ``sharding.place:*`` kill sites sit exactly between the phases, so
        the chaos sweep can crash the fleet in either half and recovery
        must converge (roll back an unregistered prepare, roll forward a
        registered one). Re-registering a recovered document only restores
        the Python-side handle, mirroring
        :meth:`repro.cobra.metadata.MetadataStore.register_document`.
        """
        video_id = document.raw.video_id
        with self._lock:
            if video_id in self._placements:
                # recovered placement: restore the handle, write nothing
                self._documents[video_id] = (document, domain)
                return self._placements[video_id]
            if self.config.write_routing == "owner":
                target = self.ring.owner(video_id, exclude=self.dead_shards())
            else:
                # SHARD001 rejects this routing; honoring it under
                # check="off"/"warn" demonstrates the hazard it names
                if self.config.write_routing not in self._shards:
                    raise PlacementError(
                        f"write_routing {self.config.write_routing!r} names "
                        f"no shard in the fleet"
                    )
                target = self.config.write_routing
            shard = self.shard(target)
            if shard.dead:
                raise ShardingError(
                    f"owning shard {target!r} is dead; rebalance before "
                    f"registering {video_id!r}"
                )
            self._seq += 1
            seq = self._seq
            event_ids = tuple(document.events)
            self._journal.append(
                {
                    "op": "prepare",
                    "seq": seq,
                    "video": video_id,
                    "shard": target,
                    "domain": domain,
                    "events": list(event_ids),
                }
            )
            self.faults.on_call("sharding.place:prepared")
            self._write_document(shard, document)
            self.faults.on_call("sharding.place:registered")
            self._journal.append(
                {"op": "commit", "seq": seq, "video": video_id}
            )
            self._place(video_id, target, event_ids)
            self._documents[video_id] = (document, domain)
            return target

    def _place(
        self,
        video_id: str,
        shard: str,
        events: tuple[str, ...] | None = None,
    ) -> None:
        """Commit a placement: ownership flips *and* the document's rows
        land on ``shard`` now. ``events`` is the event-id set present at
        insertion (None for legacy journal records: all handle events)."""
        self._placements[video_id] = shard
        self._placement_order[shard].append(video_id)
        self._ops[shard].append(("doc", video_id, events))

    def _record_copy(
        self, shard: str, video_id: str, events: tuple[str, ...]
    ) -> None:
        """A migration copy landed the document's rows on ``shard`` —
        insertion order advances, but ownership does *not* flip until
        cutover (the placement map still names the source)."""
        self._placement_order[shard].append(video_id)
        self._ops[shard].append(("doc", video_id, events))

    def _record_event(
        self, shard: str, video_id: str, payload: Mapping[str, Any]
    ) -> None:
        """A late event row landed on ``shard`` (online write or
        catch-up shipment)."""
        self._ops[shard].append(("event", video_id, dict(payload)))

    def _write_document(self, shard: _Shard, document: VideoDocument) -> None:
        def apply(kernel: MonetKernel) -> None:
            view = shard.view()
            with kernel.transaction():
                view.register_document(document)

        self._fenced_apply(shard, apply)

    def _fenced_apply(
        self, shard: _Shard, fn: Callable[[MonetKernel], Any]
    ) -> Any:
        """Apply a write to the shard — through its group's epoch-fenced
        lease when replicated, retrying exactly once with a fresh lease
        when the cached one was deposed by a shard failover."""
        if shard.group is None:
            return fn(shard.kernel)
        if shard.lease is None:
            shard.lease = shard.group.lease()
        try:
            return shard.lease.write(fn)
        except FencedWriteError:
            # the shard failed over since we leased; re-acquire and retry
            self._fenced_retries += 1
            shard.lease = shard.group.lease()
            return shard.lease.write(fn)

    # ------------------------------------------------------------------
    # scatter-gather reads
    # ------------------------------------------------------------------
    def query(
        self,
        coql: str | CoqlQuery,
        min_coverage: float | None = None,
        token: Any = None,
    ) -> QueryResult:
        """Scatter a COQL query to the owning shards; gather with partial-
        result semantics.

        ``min_coverage`` overrides the fleet's configured floor for this
        call. The result's ``coverage`` report states exactly which shards
        answered and what fraction of the corpus the records cover; below
        the floor the gather raises
        :class:`repro.errors.InsufficientCoverageError` instead.
        """
        parsed = parse_coql(coql) if isinstance(coql, str) else coql
        floor = self._resolve_floor(min_coverage)
        with self._lock:
            targets, plan = self._plan_gather(parsed)
            buckets = _GatherBuckets()
            shard_rows: dict[str, list[dict[str, Any]]] = {}
            for name in targets:
                rows = self._gather_one(name, buckets, self._read_thunk(parsed))
                if rows is not None:
                    shard_rows[name] = rows
            records, served, dual_read = self._merge_gather(
                parsed, shard_rows, buckets
            )
            coverage = self._coverage(
                plan, targets, buckets, served=served, dual_read=dual_read
            )
        records.sort(key=lambda r: (r["video_id"], r["start"]))
        self._enforce_floor(coverage, floor)
        report = PreprocessReport(required_kinds=[parsed.kind])
        return QueryResult(parsed, records, report, coverage=coverage)

    def _resolve_floor(self, min_coverage: float | None) -> float:
        if min_coverage is None:
            return self.config.min_coverage
        _validate_floor(min_coverage, "min_coverage")
        return min_coverage

    def _merge_gather(
        self,
        parsed: CoqlQuery,
        shard_rows: dict[str, list[dict[str, Any]]],
        buckets: "_GatherBuckets",
    ) -> tuple[list[dict[str, Any]], set[str], int]:
        """Merge per-shard answers by *ownership*, with dual reads for
        in-flight migrations.

        During a migration a document's rows exist on two shards (and the
        source's stale rows stay behind after retirement — BATs have no
        deletion), so the merge takes each document's rows from exactly
        one side: its placement owner when that shard answered, else —
        for a migrating document — its migration counterpart, issuing the
        fallback sub-request on demand when the counterpart was not in
        the original fan-out. Source is consulted first by construction:
        before cutover the placement owner *is* the source. Returns the
        merged rows, the set of covered documents, and how many were
        served through a dual read.
        """
        migrating = self.migrations.in_flight()
        for video_id in sorted(migrating):
            owner = self._placements.get(video_id)
            counterpart = self.migrations.counterpart(video_id)
            if owner is None or counterpart is None:
                continue
            if owner in shard_rows or counterpart in shard_rows:
                continue
            if counterpart in buckets.attempted():
                continue  # the fallback side was already lost this gather
            rows = self._gather_one(
                counterpart, buckets, self._read_thunk(parsed)
            )
            if rows is not None:
                shard_rows[counterpart] = rows
        served_via: dict[str, str] = {}
        dual_read = 0
        for video_id, owner in self._placements.items():
            if owner in shard_rows:
                served_via[video_id] = owner
            elif video_id in migrating:
                counterpart = self.migrations.counterpart(video_id)
                if counterpart in shard_rows:
                    served_via[video_id] = counterpart
                    dual_read += 1
        records = [
            row
            for shard_name, rows in shard_rows.items()
            for row in rows
            if served_via.get(row["video_id"]) == shard_name
        ]
        return records, set(served_via), dual_read

    def scatter_call(
        self,
        proc: str,
        args: tuple = (),
        min_coverage: float | None = None,
    ) -> GatherResult:
        """Call a MIL PROC on every live shard; gather per-shard values
        under the same partial-failure semantics as :meth:`query`."""
        floor = self._resolve_floor(min_coverage)
        with self._lock:
            targets = self.live_shards()
            buckets = _GatherBuckets()
            values: dict[str, Any] = {}

            def thunk(shard: _Shard) -> Any:
                return shard.kernel.call(proc, list(args))

            for name in targets:
                value = self._gather_one(name, buckets, thunk)
                if value is not None or name in buckets.answered:
                    values[name] = value
            coverage = self._coverage("fan-out", tuple(targets), buckets)
        self._enforce_floor(coverage, floor)
        return GatherResult(values=values, coverage=coverage)

    def _plan_gather(self, parsed: CoqlQuery) -> tuple[tuple[str, ...], str]:
        if parsed.video is not None:
            owner = self._placements.get(parsed.video)
            if owner is None:
                raise CobraError(f"unknown video {parsed.video!r}")
            return (owner,), "shard-local"
        owned = sorted({shard for shard in self._placements.values()})
        costs = {name: self._scan_cost(name) for name in owned}
        if not costs:
            return (), "shard-local"
        plan: ScatterPlan = choose_scatter_plan(parsed, costs)
        return plan.shards, plan.mode

    def _scan_cost(self, name: str) -> float:
        """Estimated rows a gather scans on one shard: the feature and
        event rows of the documents placed there (the document-awareness
        :func:`repro.check.costcheck.estimate_extraction_cost` applies to
        extraction plans, applied to gather plans)."""
        total = 0.0
        for video_id in self._placement_order[name]:
            if self._placements.get(video_id) != name:
                continue  # moved away by a rebalance
            handle = self._documents.get(video_id)
            if handle is None:
                total += 100.0  # recovered without a handle: nominal scan
                continue
            document = handle[0]
            total += float(
                sum(len(track.values) for track in document.features.values())
            )
            total += float(len(document.events))
        return total

    def _read_thunk(
        self, parsed: CoqlQuery
    ) -> Callable[[_Shard], list[dict[str, Any]]]:
        def thunk(shard: _Shard) -> list[dict[str, Any]]:
            return self._shard_read(shard, parsed)

        return thunk

    def _gather_one(
        self,
        name: str,
        buckets: "_GatherBuckets",
        thunk: Callable[[_Shard], Any],
    ) -> Any:
        """One shard sub-request: breaker, transport faults, deadline,
        hedging, and crash handling. Returns the shard's value, or None
        when the shard was lost (its name lands in the right bucket)."""
        shard = self._shards[name]
        if shard.dead:
            buckets.dead.append(name)
            return None
        try:
            shard.breaker.allow()
        except CircuitOpenError:
            buckets.shed.append(name)
            return None
        site = f"sharding.transport:{name}"
        deadline = (
            Deadline(self.config.shard_deadline, clock=self._clock)
            if self.config.shard_deadline is not None
            else None
        )
        hedged = False
        try:
            if self.faults.link_partitioned(site):
                # the link is severed: the request and any hedge are lost
                raise _RequestLost(f"transport to {name} partitioned")
            straggler = self.faults.link_lag(site) > 0
            self.faults.on_call(site)
            if straggler and self.config.hedge:
                value = self._backup_attempt(shard, thunk)
                hedged = True
            else:
                value = thunk(shard)
            if deadline is not None and deadline.expired:
                raise _RequestLost(f"shard {name} answered past the deadline")
        except SimulatedCrash:
            # the shard process died mid-scatter; a replicated shard fails
            # over internally, a bare one is dead until rebalanced
            shard.breaker.record_failure()
            if self._crash_shard(shard):
                buckets.timed_out.append(name)  # this gather lost it anyway
            else:
                buckets.dead.append(name)
            return None
        except (_RequestLost, DeadlineExceeded):
            shard.breaker.record_failure()
            buckets.timed_out.append(name)
            return None
        except TransientError:
            # one transient transport fault: hedge a backup request once
            if self.config.hedge and not hedged:
                try:
                    value = self._backup_attempt(shard, thunk)
                    hedged = True
                except (TransientError, ReplicationError, MonetError):
                    shard.breaker.record_failure()
                    buckets.timed_out.append(name)
                    return None
            else:
                shard.breaker.record_failure()
                buckets.timed_out.append(name)
                return None
        shard.breaker.record_success()
        buckets.answered.append(name)
        if hedged:
            buckets.hedged.append(name)
        return value

    def _shard_read(
        self, shard: _Shard, parsed: CoqlQuery
    ) -> list[dict[str, Any]]:
        try:
            return QueryExecutor(shard.view()).execute(parsed)
        except UnknownConceptError:
            # the kind may simply not live on this shard; an empty
            # contribution is a valid answer, not a failure
            return []

    def _backup_attempt(self, shard: _Shard, thunk: Callable[[_Shard], Any]) -> Any:
        """The hedged request: a replica read when the shard is
        replicated, a second primary attempt otherwise."""
        if shard.group is not None:
            routed = shard.group.route_read(policy="any")
            if routed.replica is not None:
                backup = _Shard(
                    shard.name, routed.kernel, None, shard.breaker
                )
                return thunk(backup)
        return thunk(shard)

    def _crash_shard(self, shard: _Shard) -> bool:
        """Handle a shard process death; True when the shard survived by
        failing over to a replica, False when it is dead."""
        if shard.group is None:
            shard.dead = True
            return False
        shard.group.report_primary_failure()
        try:
            for _ in range(self.config.failure_threshold):
                shard.group.probe()
        except ReplicationError:
            # no reachable replica to promote: the shard is gone
            shard.dead = True
            return False
        if not shard.group.status().primary_healthy:
            shard.dead = True
            return False
        return True

    def _coverage(
        self,
        plan: str,
        targets: tuple[str, ...] | tuple,
        buckets: "_GatherBuckets",
        served: set[str] | None = None,
        dual_read: int = 0,
    ) -> ShardCoverageReport:
        answered = set(buckets.answered)
        if served is not None:
            covered = len(served)
        else:
            covered = sum(
                1
                for video_id, shard in self._placements.items()
                if shard in answered
            )
        accounting = self.config.migration_accounting
        return ShardCoverageReport(
            plan=plan,
            targeted=tuple(targets),
            answered=tuple(sorted(answered)),
            hedged=tuple(sorted(buckets.hedged)),
            shed=tuple(sorted(buckets.shed)),
            timed_out=tuple(sorted(buckets.timed_out)),
            dead=tuple(sorted(buckets.dead)),
            documents_total=len(self._placements),
            documents_covered=covered,
            migrating=len(self.migrations.in_flight()) if accounting else 0,
            dual_read=dual_read if accounting else 0,
        )

    def _enforce_floor(
        self, coverage: ShardCoverageReport, floor: float
    ) -> None:
        if coverage.fraction < floor:
            raise InsufficientCoverageError(
                f"gather lost shards {list(coverage.lost)}",
                coverage=coverage.fraction,
                required=floor,
                report=coverage,
            )

    # ------------------------------------------------------------------
    # scatter MIL registration
    # ------------------------------------------------------------------
    def run(self, mil_source: str) -> None:
        """Define MIL source on every live shard for scatter execution.

        Runs the SHARD004 pass first: certified fusion regions inside
        ``PARALLEL`` branches are de-certified by scattering, and the
        finding (advisory) lands on :attr:`diagnostics`. The whole-program
        pass follows — ``scatter_call`` targets are cross-proc paths by
        construction, so unresolved targets and uncancellable recursion
        (``CALLnnn``) must be rejected before the source fans out to every
        shard.
        """
        from repro.check.programcheck import ProgramChecker
        from repro.check.shardcheck import check_scatter_source

        with self._lock:
            mode = CheckMode.of(self.config.check)
            if mode.checks:
                report = check_scatter_source(mil_source, name="<scatter>")
                live = self.live_shards()
                if live:
                    interpreter = self._shards[live[0]].kernel.interpreter
                    report.extend(
                        ProgramChecker(
                            commands=interpreter._commands,
                            signatures=interpreter._signatures,
                            globals_names=list(
                                interpreter._globals.variables
                            ),
                            procedures=dict(interpreter._procs),
                        ).check_source(mil_source, name="<scatter>")
                    )
                self.diagnostics.extend(report.sorted())
                if mode.raises:
                    report.raise_if_errors(
                        "scatter MIL registration", ShardingCheckError
                    )
            for name in self.live_shards():
                shard = self._shards[name]
                self._fenced_apply(shard, lambda k: k.run(mil_source))
            # shards added later replay the same sources (_admit_shard)
            self._mil_sources.append(mil_source)

    # ------------------------------------------------------------------
    # failure handling + rebalance
    # ------------------------------------------------------------------
    def mark_dead(self, name: str) -> None:
        """Administratively declare one shard dead (operator decision or
        a failed in-shard failover); its documents are unreachable until
        :meth:`rebalance` moves them."""
        self.shard(name).dead = True

    def rebalance(self) -> RebalanceReport:
        """Move every document owned by a dead shard to its ring
        successor among the live shards.

        Moves replay the two-phase registration path (journal prepare →
        shard write → journal commit) in original journal order, so the
        destination BAT row order — and therefore the byte-for-byte
        convergence check — is a pure function of the fleet's history.
        Documents whose Python handle is unknown to this process cannot
        be re-registered and raise :class:`PlacementError`.
        """
        with self._lock:
            dead = self.dead_shards()
            moved: list[tuple[str, str, str]] = []
            ordered: list[tuple[str, str]] = []
            for shard_name in dead:
                for video_id in self._placement_order[shard_name]:
                    if self._placements.get(video_id) == shard_name:
                        ordered.append((video_id, shard_name))
            for video_id, src in ordered:
                # a draining service can abort between documents — each
                # move is journaled, so a cancelled rebalance resumes
                cancel_checkpoint(f"sharding.rebalance:{video_id}")
                handle = self._documents.get(video_id)
                if handle is None:
                    raise PlacementError(
                        f"cannot rebalance {video_id!r} off dead shard "
                        f"{src!r}: no document handle in this process to "
                        f"re-register from"
                    )
                document, domain = handle
                dst = self.ring.owner(video_id, exclude=dead)
                target = self.shard(dst)
                self._seq += 1
                seq = self._seq
                event_ids = tuple(document.events)
                self._journal.append(
                    {
                        "op": "prepare",
                        "seq": seq,
                        "video": video_id,
                        "shard": dst,
                        "domain": domain,
                        "events": list(event_ids),
                    }
                )
                self._write_document(target, document)
                self._journal.append(
                    {"op": "commit", "seq": seq, "video": video_id}
                )
                self._place(video_id, dst, event_ids)
                moved.append((video_id, src, dst))
            return RebalanceReport(moves=tuple(moved), dead=tuple(dead))

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover_placements(self) -> None:
        """Rebuild the placement map from the journal, resolving in-doubt
        registrations *and* migrations.

        Registrations: a prepare whose rows reached the owning shard
        rolls forward (the commit record is re-appended), one whose rows
        did not rolls back (an abort record keeps the audit trail).

        Migrations: every record of the protocol replays in order —
        topology growth (``add-shard``), copies (ops + insertion order on
        the destination), shipped tail records, cutovers (ownership flip
        + routing epoch). A migration left in doubt by a crash is then
        handed to :meth:`MigrationCoordinator.resolve_in_doubt`: rolled
        back before the copy point, rolled forward — healed, cut over,
        verified, retired — after it.
        """
        committed: set[str] = set()
        prepared: dict[int, dict[str, Any]] = {}
        migrations: dict[str, dict[str, Any]] = {}
        records = self._journal.records()
        for record in records:
            self._seq = max(self._seq, int(record.get("seq", 0)))
            op = record["op"]
            if op == "prepare":
                prepared[record["seq"]] = record
            elif op == "commit":
                entry = prepared.pop(record["seq"], None)
                if entry is not None:
                    events = entry.get("events")
                    self._place(
                        entry["video"],
                        entry["shard"],
                        tuple(events) if events is not None else None,
                    )
                    committed.add(entry["video"])
            # "abort" records need no replay: the prepare they close was
            # already popped rolled-back state on the crashed run
            elif op == "abort":
                prepared.pop(record["seq"], None)
            elif op == "add-shard":
                if record["shard"] not in self._shards:
                    self._admit_shard(record["shard"])
            elif op == "event":
                self._record_event(
                    record["shard"], record["video"], record["event"]
                )
                entry = migrations.get(record["video"])
                if (
                    entry is not None
                    and entry["phase"] == "copied"
                    and record["shard"] == entry["src"]
                ):
                    entry["pending"].append(record["event"])
            elif op == "migrate-plan":
                migrations[record["video"]] = {
                    "seq": record["seq"],
                    "src": record["src"],
                    "dst": record["dst"],
                    "phase": "planned",
                    "pending": [],
                }
            elif op == "migrate-copy":
                entry = migrations[record["video"]]
                entry["phase"] = "copied"
                self._record_copy(
                    entry["dst"],
                    record["video"],
                    tuple(record.get("events") or ()),
                )
            elif op == "migrate-ship":
                entry = migrations[record["video"]]
                self._record_event(
                    entry["dst"], record["video"], record["event"]
                )
                if entry["pending"]:
                    entry["pending"].pop(0)
            elif op == "migrate-cutover":
                entry = migrations[record["video"]]
                entry["phase"] = "cutover"
                self._placements[record["video"]] = entry["dst"]
                self._routing_epoch += 1
            elif op in ("migrate-retire", "migrate-abort"):
                migrations.pop(record["video"], None)
        for seq in sorted(prepared):
            entry = prepared[seq]
            video_id, shard_name = entry["video"], entry["shard"]
            if video_id in committed:
                continue  # a later registration superseded this prepare
            events = entry.get("events")
            if self._shard_has_rows(shard_name, video_id):
                self._journal.append(
                    {"op": "commit", "seq": seq, "video": video_id}
                )
                self._place(
                    video_id,
                    shard_name,
                    tuple(events) if events is not None else None,
                )
            else:
                self._journal.append(
                    {"op": "abort", "seq": seq, "video": video_id}
                )
        for video_id in sorted(migrations):
            self.migrations.resolve_in_doubt(video_id, migrations[video_id])

    def _shard_has_rows(self, shard_name: str, video_id: str) -> bool:
        kernel = self.shard(shard_name).kernel
        for bat_name in ("meta_event_video_id", "meta_object_video_id"):
            try:
                if video_id in kernel.bat(bat_name).tails():
                    return True
            except MonetError:
                continue
        return False

    # ------------------------------------------------------------------
    # maintenance + verification
    # ------------------------------------------------------------------
    def pump(self, rounds: int = 1) -> None:
        """Ship WAL records on every replicated live shard."""
        with self._lock:
            for name in self.live_shards():
                group = self._shards[name].group
                if group is not None:
                    group.pump(rounds=rounds)

    def checkpoint(self) -> dict[str, int]:
        """WAL checkpoint on every live shard; shard -> seqno."""
        with self._lock:
            return {
                name: self._shards[name].kernel.checkpoint()
                for name in self.live_shards()
            }

    def convergence_report(self) -> list[str]:
        """Byte-for-byte divergence of every live shard's metadata.

        Each live shard's ``meta_*`` BATs are compared against a reference
        rebuild — a fresh in-memory kernel fed the shard's insertion ops
        in journal order: each document op registers the document *as it
        looked at insertion time* (late events pruned), each event op
        replays the journaled payload — which reproduces the exact
        insertion sequence through registrations, rebalances, migrations
        and online writes. Each replicated shard additionally runs its
        group's own convergence check. Empty means the placement map, the
        shard catalogs, and the replicas all agree.
        """
        with self._lock:
            failures: list[str] = []
            for name in self.live_shards():
                shard = self._shards[name]
                reference = MonetKernel(threads=1, check="off")
                view = MetadataStore(reference)
                for op, video_id, detail in self._ops[name]:
                    if op == "doc":
                        handle = self._documents.get(video_id)
                        if handle is None:
                            failures.append(
                                f"{name}: no document handle for "
                                f"{video_id!r}; cannot rebuild the "
                                f"reference catalog"
                            )
                            continue
                        view.register_document(
                            pruned_document(handle[0], detail)
                        )
                    else:
                        view._store_event(
                            video_id, event_from_payload(detail)
                        )
                expected = {
                    bat_name: bat
                    for bat_name, bat in reference.snapshot().items()
                    if bat_name.startswith("meta_")
                }
                actual = {
                    bat_name: bat
                    for bat_name, bat in shard.kernel.snapshot().items()
                    if bat_name.startswith("meta_")
                }
                failures.extend(
                    f"{name}: {message}"
                    for message in compare_catalogs(expected, actual)
                )
                if shard.group is not None:
                    failures.extend(
                        f"{name}: {message}"
                        for message in shard.group.convergence_report()
                    )
            for video_id, shard_name in sorted(self._placements.items()):
                if self._shards[shard_name].dead:
                    failures.append(
                        f"placement map routes {video_id!r} to dead shard "
                        f"{shard_name!r}; rebalance has not run"
                    )
            return failures

    def status(self) -> FleetStatus:
        with self._lock:
            shards = tuple(
                ShardStatus(
                    name=name,
                    dead=shard.dead,
                    documents=sum(
                        1
                        for video_id, owner in self._placements.items()
                        if owner == name
                    ),
                    replicated=shard.group is not None,
                    epoch=(
                        shard.group.epoch if shard.group is not None else 1
                    ),
                    failovers=(
                        len(shard.group.failovers)
                        if shard.group is not None
                        else 0
                    ),
                    breaker=shard.breaker.state,
                )
                for name, shard in sorted(self._shards.items())
            )
            return FleetStatus(
                shards=shards,
                documents=len(self._placements),
                fenced_retries=self._fenced_retries,
                migrating=len(self.migrations.in_flight()),
                migration_fenced_retries=self._migration_fenced_retries,
            )

    def close(self) -> None:
        """Release every shard's WAL handles (groups close their own)."""
        with self._lock:
            for _, shard in sorted(self._shards.items()):
                if shard.group is not None:
                    shard.group.close()
                else:
                    shard.kernel.close()


class _GatherBuckets:
    """Mutable per-gather shard outcome buckets."""

    def __init__(self) -> None:
        self.answered: list[str] = []
        self.hedged: list[str] = []
        self.shed: list[str] = []
        self.timed_out: list[str] = []
        self.dead: list[str] = []

    def attempted(self) -> set[str]:
        """Shards this gather already tried (any outcome) — a dual read
        must not re-request a shard that was just lost."""
        return set(self.answered) | set(self.shed) | set(
            self.timed_out
        ) | set(self.dead)


class _RequestLost(TransientError):
    """Internal: a shard sub-request was lost to the transport."""
