"""Sharded kernel fleet with partial-failure-tolerant scatter-gather.

The Cobra stack so far scales *down* gracefully — one kernel, one
replicated group — but the paper's ambition (a broadcast archive of
Formula 1 races) needs to scale *out*: more video than one kernel's BAT
catalog should hold, served by a fleet that keeps answering when part of
it is on fire. This package partitions the metadata by document
(consistent hashing on the video id, :mod:`repro.sharding.ring`) across
shards — each shard a durable :class:`repro.monet.MonetKernel`, optionally
its own replicated :class:`repro.replication.KernelGroup` — behind a
:class:`ShardedKernel` front (:mod:`repro.sharding.fleet`) that plans
scatter-gather execution and degrades honestly: lost shards produce a
:class:`ShardCoverageReport` on the result, not a stack trace, until
coverage falls below the caller's floor and the gather fails loudly with
:class:`repro.errors.InsufficientCoverageError`.

``python -m repro.sharding`` runs the seeded shard-death chaos scenario
(:mod:`repro.sharding.chaos`): shards are killed mid-scatter, the
degraded answers are checked against exact coverage reports, the fleet
rebalances, and the surviving catalogs must converge byte-for-byte —
twice, with identical reports, or the run fails.
"""

from repro.sharding.fleet import (
    FleetStatus,
    GatherResult,
    RebalanceReport,
    ShardConfig,
    ShardCoverageReport,
    ShardStatus,
    ShardedKernel,
)
from repro.sharding.ring import HashRing

__all__ = [
    "FleetStatus",
    "GatherResult",
    "HashRing",
    "RebalanceReport",
    "ShardConfig",
    "ShardCoverageReport",
    "ShardStatus",
    "ShardedKernel",
]
