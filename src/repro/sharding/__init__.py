"""Sharded kernel fleet with partial-failure-tolerant scatter-gather.

The Cobra stack so far scales *down* gracefully — one kernel, one
replicated group — but the paper's ambition (a broadcast archive of
Formula 1 races) needs to scale *out*: more video than one kernel's BAT
catalog should hold, served by a fleet that keeps answering when part of
it is on fire. This package partitions the metadata by document
(consistent hashing on the video id, :mod:`repro.sharding.ring`) across
shards — each shard a durable :class:`repro.monet.MonetKernel`, optionally
its own replicated :class:`repro.replication.KernelGroup` — behind a
:class:`ShardedKernel` front (:mod:`repro.sharding.fleet`) that plans
scatter-gather execution and degrades honestly: lost shards produce a
:class:`ShardCoverageReport` on the result, not a stack trace, until
coverage falls below the caller's floor and the gather fails loudly with
:class:`repro.errors.InsufficientCoverageError`.

The fleet also grows online: :mod:`repro.sharding.migration` adds a
shard to a live fleet and moves exactly the documents the extended ring
remaps through a journaled five-phase protocol (plan → copy → catch-up →
cutover → retire) that survives a crash at any kill point, keeps reads
answering through dual routing (the ``migrating``/``dual_read`` counters
on the coverage report), and fences stale pre-cutover writes with
:class:`repro.errors.FencedWriteError`.

``python -m repro.sharding`` runs the seeded chaos scenarios
(:mod:`repro.sharding.chaos`): shards are killed mid-scatter and a split
runs under load, the degraded answers are checked against exact coverage
reports, registration and migration are crashed at every kill point, and
the surviving catalogs must converge byte-for-byte — twice, with
identical reports, or the run fails.
"""

from repro.sharding.fleet import (
    FleetStatus,
    GatherResult,
    RebalanceReport,
    ShardConfig,
    ShardCoverageReport,
    ShardStatus,
    ShardedKernel,
)
from repro.sharding.migration import (
    MIGRATION_KILL_POINTS,
    MigrationCoordinator,
    MigrationState,
    PlacementLease,
    SplitReport,
)
from repro.sharding.ring import HashRing

__all__ = [
    "FleetStatus",
    "GatherResult",
    "HashRing",
    "MIGRATION_KILL_POINTS",
    "MigrationCoordinator",
    "MigrationState",
    "PlacementLease",
    "RebalanceReport",
    "ShardConfig",
    "ShardCoverageReport",
    "ShardStatus",
    "ShardedKernel",
    "SplitReport",
]
