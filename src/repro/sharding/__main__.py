"""Run the sharding chaos suite and emit its convergence report.

Usage::

    python -m repro.sharding [--dir DIR] [--out FILE] [--seed N]
                             [--no-fsync]

Runs the seeded shard-death scenario twice (the two runs must produce
byte-identical reports — chaos as a reproducible test, not flakiness),
then the placement kill sweep (registration crashed at each two-phase
crash point). Exits non-zero if a gather raises instead of degrading,
a coverage report is inexact, the catalogs fail to converge
byte-for-byte after rebalance, or the two seeded runs diverge. ``--out``
writes the JSON report the CI ``shard-chaos`` job uploads and diffs.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.sharding.chaos import placement_kill_sweep, shard_death_scenario

REPORT_FORMAT = "repro-shard-chaos/1"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sharding",
        description="Seeded shard-death chaos for the sharded kernel fleet.",
    )
    parser.add_argument(
        "--dir", default=None, help="scratch directory (default: a temp dir)"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON convergence report here"
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--no-fsync", action="store_true", help="skip fsync calls (faster)"
    )
    args = parser.parse_args(argv)
    base = Path(args.dir or tempfile.mkdtemp(prefix="repro-sharding-"))
    if args.dir and base.exists() and any(base.iterdir()):
        # a reused scratch dir replays recovered placements instead of
        # fresh registrations, which is a different (and wrong) scenario
        parser.error(f"scratch directory {base} is not empty")
    fsync = not args.no_fsync

    print(f"seeded shard-death scenario (seed={args.seed}) under {base}")
    first = shard_death_scenario(base / "run-1", seed=args.seed, fsync=fsync)
    second = shard_death_scenario(base / "run-2", seed=args.seed, fsync=fsync)
    print(first.describe())
    deterministic = first.to_dict() == second.to_dict()
    if not deterministic:
        print("NON-DETERMINISTIC: two runs of the same seed diverged")

    print("placement kill sweep (registration crashed between the phases):")
    sweep = placement_kill_sweep(base / "sweep", seed=args.seed, fsync=fsync)
    print(sweep.describe())

    ok = first.ok and second.ok and deterministic and sweep.ok
    report = {
        "format": REPORT_FORMAT,
        "seed": args.seed,
        "deterministic": deterministic,
        "scenario": first.to_dict(),
        "sweep": sweep.to_dict(),
        "ok": ok,
    }
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"convergence report written to {args.out}")
    print("shard chaos: " + ("CONVERGED" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
