"""Run the sharding chaos suite and emit its convergence report.

Usage::

    python -m repro.sharding [--dir DIR] [--out FILE] [--seed N]
                             [--no-fsync] [--only {all,death,migration}]

Runs the seeded shard-death and split-under-load scenarios twice each
(the paired runs must produce byte-identical reports — chaos as a
reproducible test, not flakiness), then the placement and migration kill
sweeps (registration crashed at each two-phase crash point; the online
split crashed at every migration protocol kill point). Exits non-zero if
a gather raises instead of degrading, a coverage report is inexact, the
catalogs fail to converge byte-for-byte after rebalance or split, a
crashed migration fails to recover to the reference state, or any seeded
run pair diverges. ``--only`` narrows the suite to one scenario family
(the CI ``shard-chaos`` and ``migration-chaos`` jobs split along that
line); ``--out`` writes the JSON report those jobs upload and diff.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.sharding.chaos import (
    migration_kill_sweep,
    placement_kill_sweep,
    shard_death_scenario,
    split_under_load_scenario,
)

REPORT_FORMAT = "repro-shard-chaos/2"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sharding",
        description="Seeded shard-death and online-split chaos for the "
        "sharded kernel fleet.",
    )
    parser.add_argument(
        "--dir", default=None, help="scratch directory (default: a temp dir)"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON convergence report here"
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--no-fsync", action="store_true", help="skip fsync calls (faster)"
    )
    parser.add_argument(
        "--only",
        choices=("all", "death", "migration"),
        default="all",
        help="run only one scenario family (default: all)",
    )
    args = parser.parse_args(argv)
    base = Path(args.dir or tempfile.mkdtemp(prefix="repro-sharding-"))
    if args.dir and base.exists() and any(base.iterdir()):
        # a reused scratch dir replays recovered placements instead of
        # fresh registrations, which is a different (and wrong) scenario
        parser.error(f"scratch directory {base} is not empty")
    fsync = not args.no_fsync

    ok = True
    deterministic = True
    report: dict[str, object] = {
        "format": REPORT_FORMAT,
        "seed": args.seed,
        "only": args.only,
    }

    if args.only in ("all", "death"):
        print(f"seeded shard-death scenario (seed={args.seed}) under {base}")
        first = shard_death_scenario(
            base / "run-1", seed=args.seed, fsync=fsync
        )
        second = shard_death_scenario(
            base / "run-2", seed=args.seed, fsync=fsync
        )
        print(first.describe())
        same = first.to_dict() == second.to_dict()
        if not same:
            print("NON-DETERMINISTIC: two shard-death runs diverged")
        print("placement kill sweep (registration crashed between the phases):")
        sweep = placement_kill_sweep(base / "sweep", seed=args.seed, fsync=fsync)
        print(sweep.describe())
        report["scenario"] = first.to_dict()
        report["sweep"] = sweep.to_dict()
        ok = ok and first.ok and second.ok and same and sweep.ok
        deterministic = deterministic and same

    if args.only in ("all", "migration"):
        print(f"seeded split-under-load scenario (seed={args.seed})")
        split_first = split_under_load_scenario(
            base / "split-1", seed=args.seed, fsync=fsync
        )
        split_second = split_under_load_scenario(
            base / "split-2", seed=args.seed, fsync=fsync
        )
        print(split_first.describe())
        same = split_first.to_dict() == split_second.to_dict()
        if not same:
            print("NON-DETERMINISTIC: two split-under-load runs diverged")
        print("migration kill sweep (split crashed at every protocol point):")
        migration_sweep = migration_kill_sweep(
            base / "migration-sweep", seed=args.seed, fsync=fsync
        )
        print(migration_sweep.describe())
        report["split"] = split_first.to_dict()
        report["migration_sweep"] = migration_sweep.to_dict()
        ok = (
            ok
            and split_first.ok
            and split_second.ok
            and same
            and migration_sweep.ok
        )
        deterministic = deterministic and same

    report["deterministic"] = deterministic
    report["ok"] = ok
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"convergence report written to {args.out}")
    print("shard chaos: " + ("CONVERGED" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
