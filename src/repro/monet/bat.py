"""Binary Association Tables (BATs).

Monet's storage model is fully decomposed: every persistent structure is a
*Binary Association Table*, a two-column table of (head, tail) associations.
Wider relations are modelled as groups of BATs that share head oids. This
module implements the BAT together with the classic kernel operators used by
the paper's MIL snippets (``insert``, ``reverse``, ``find``, ``select``,
``join``, ``max`` ...).

The implementation favours clarity over raw speed but keeps tails of numeric
BATs convertible to numpy arrays in one call (:meth:`BAT.tail_array`), which
is what the feature-extraction extensions use for bulk processing.
"""

from __future__ import annotations

import copy as _copy
import threading
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.errors import BatError
from repro.monet.atoms import ATOMS, Atom

__all__ = ["BAT", "new_bat"]

_NUMERIC_ATOMS = {"oid", "void", "int", "flt", "dbl"}

#: Object-dtype atoms whose values are nevertheless immutable: sharing the
#: value between a live BAT and a snapshot copy cannot leak mutations.
_IMMUTABLE_OBJECT_ATOMS = {"str", "chr"}


def _copy_column(values: list[Any], atom: Atom) -> list[Any]:
    """Snapshot one column so later mutation of the source cannot leak.

    Numeric/bool/string atoms hold immutable values, so a new list is
    enough; object-dtype atoms (``any`` and extension types) may hold
    mutable Python values, which must be deep-copied for the snapshot to
    be genuinely independent.
    """
    if atom.dtype == np.dtype(object) and atom.name not in _IMMUTABLE_OBJECT_ATOMS:
        return [_copy.deepcopy(v) for v in values]
    return list(values)

#: Sentinel distinguishing ``select(v)`` from ``select(lo, hi)``.
_MISSING = object()


class BAT:
    """A two-column (head, tail) association table.

    Args:
        head_type: atom-type name of the head column. ``"void"`` declares a
            dense oid sequence: single-argument inserts auto-assign heads.
        tail_type: atom-type name of the tail column.
        name: optional catalog name, set when the BAT is persisted.

    BATs are safe for concurrent *inserts* from the MIL parallel block (a
    single mutex guards mutation); reads during concurrent mutation are not
    synchronized, matching Monet's bulk-processing usage.
    """

    def __init__(self, head_type: str, tail_type: str, name: str | None = None):
        self._head_atom: Atom = ATOMS.get(head_type)
        self._tail_atom: Atom = ATOMS.get(tail_type)
        self._head: list[Any] = []
        self._tail: list[Any] = []
        self._lock = threading.Lock()
        self.name = name
        self._next_oid = 0

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def head_type(self) -> str:
        return self._head_atom.name

    @property
    def tail_type(self) -> str:
        return self._tail_atom.name

    def count(self) -> int:
        """Number of associations (MIL ``b.count``)."""
        return len(self._head)

    def __len__(self) -> int:
        return len(self._head)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return iter(zip(self._head, self._tail))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "<transient>"
        return (
            f"BAT[{self.head_type},{self.tail_type}] {label} "
            f"({len(self)} associations)"
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, *args: Any) -> "BAT":
        """Insert one association.

        ``b.insert(tail)`` is valid only for void-headed BATs and assigns the
        next dense oid; ``b.insert(head, tail)`` inserts an explicit pair.
        Returns ``self`` so MIL call-chains work.
        """
        if len(args) == 1:
            if self.head_type != "void":
                raise BatError(
                    f"single-argument insert needs a void head, not {self.head_type}"
                )
            with self._lock:
                self._head.append(self._next_oid)
                self._next_oid += 1
                self._tail.append(self._tail_atom.coerce(args[0]))
            return self
        if len(args) != 2:
            raise BatError(f"insert takes 1 or 2 arguments, got {len(args)}")
        head, tail = args
        with self._lock:
            self._head.append(self._head_atom.coerce(head))
            self._tail.append(self._tail_atom.coerce(tail))
        return self

    def insert_bulk(self, heads: Iterable[Any] | None, tails: Iterable[Any]) -> "BAT":
        """Bulk insert; ``heads=None`` auto-assigns dense oids (void head)."""
        tails = list(tails)
        if heads is None:
            if self.head_type != "void":
                raise BatError("bulk insert without heads needs a void head")
            with self._lock:
                start = self._next_oid
                self._head.extend(range(start, start + len(tails)))
                self._next_oid = start + len(tails)
                self._tail.extend(self._tail_atom.coerce(t) for t in tails)
            return self
        heads = list(heads)
        if len(heads) != len(tails):
            raise BatError(
                f"bulk insert arity mismatch: {len(heads)} heads, {len(tails)} tails"
            )
        with self._lock:
            self._head.extend(self._head_atom.coerce(h) for h in heads)
            self._tail.extend(self._tail_atom.coerce(t) for t in tails)
        return self

    def delete(self, head: Any) -> "BAT":
        """Delete all associations whose head equals ``head``."""
        key = self._head_atom.coerce(head)
        with self._lock:
            keep = [i for i, h in enumerate(self._head) if h != key]
            self._head = [self._head[i] for i in keep]
            self._tail = [self._tail[i] for i in keep]
        return self

    def replace(self, head: Any, tail: Any) -> "BAT":
        """Replace the tail of the first association with the given head."""
        key = self._head_atom.coerce(head)
        value = self._tail_atom.coerce(tail)
        with self._lock:
            for i, h in enumerate(self._head):
                if h == key:
                    self._tail[i] = value
                    return self
        raise BatError(f"replace: head {head!r} not present")

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def find(self, head: Any) -> Any:
        """Return the tail of the first association with the given head.

        This is the MIL ``b.find(v)`` used in Fig. 4 of the paper to map the
        best HMM score back to its model name via ``b.reverse.find``.
        """
        key = self._head_atom.coerce(head)
        for h, t in zip(self._head, self._tail):
            if _eq(h, key):
                return t
        raise BatError(f"find: head {head!r} not present")

    def exist(self, head: Any) -> bool:
        key = self._head_atom.coerce(head)
        return any(_eq(h, key) for h in self._head)

    def fetch(self, position: int) -> tuple[Any, Any]:
        """Positional access (MIL ``b.fetch(i)``)."""
        try:
            return self._head[position], self._tail[position]
        except IndexError:
            raise BatError(
                f"fetch: position {position} out of range 0..{len(self) - 1}"
            ) from None

    # ------------------------------------------------------------------
    # unary operators
    # ------------------------------------------------------------------
    def reverse(self) -> "BAT":
        """Return the BAT with head and tail columns swapped."""
        head_type = "oid" if self.head_type == "void" else self.head_type
        out = BAT(self.tail_type if self.tail_type != "void" else "oid", head_type)
        out._head = list(self._tail)
        out._tail = list(self._head)
        return out

    def mirror(self) -> "BAT":
        """Return a [head, head] BAT (Monet ``mirror``)."""
        head_type = "oid" if self.head_type == "void" else self.head_type
        out = BAT(head_type, head_type)
        out._head = list(self._head)
        out._tail = list(self._head)
        return out

    def mark(self, base: int = 0) -> "BAT":
        """Replace tails with a dense oid sequence starting at ``base``."""
        out = BAT(self.head_type if self.head_type != "void" else "oid", "oid")
        out._head = list(self._head)
        out._tail = list(range(base, base + len(self)))
        return out

    def copy(self, name: str | None = None) -> "BAT":
        """An independent copy: mutations through either BAT never leak
        into the other, even for mutable object-atom values."""
        out = BAT(self.head_type, self.tail_type, name=name)
        with self._lock:
            out._head = _copy_column(self._head, self._head_atom)
            out._tail = _copy_column(self._tail, self._tail_atom)
            out._next_oid = self._next_oid
        return out

    def restore(self, snapshot: "BAT") -> "BAT":
        """Roll this BAT back to a snapshot copy, in place.

        In-place so that holders of a reference (the metadata store, MIL
        globals) see the rollback; the kernel's catalog rollback relies on
        this. The snapshot must have the same atom types.
        """
        if (snapshot.head_type, snapshot.tail_type) != (
            self.head_type,
            self.tail_type,
        ):
            raise BatError(
                f"cannot restore BAT[{self.head_type},{self.tail_type}] from "
                f"snapshot BAT[{snapshot.head_type},{snapshot.tail_type}]"
            )
        with self._lock:
            self._head = _copy_column(snapshot._head, snapshot._head_atom)
            self._tail = _copy_column(snapshot._tail, snapshot._tail_atom)
            self._next_oid = snapshot._next_oid
        return self

    def equals(self, other: "BAT") -> bool:
        """Structural equality: same atom types, columns, and oid counter.

        NaN tails compare equal to NaN (null semantics), matching
        :meth:`find`. Used by the durability layer to compute transaction
        deltas and by the chaos harness to compare recovered catalogs.
        """
        if (self.head_type, self.tail_type) != (other.head_type, other.tail_type):
            return False
        if len(self) != len(other) or self._next_oid != other._next_oid:
            return False
        return all(
            _eq(a, b) for a, b in zip(self._head, other._head)
        ) and all(_eq(a, b) for a, b in zip(self._tail, other._tail))

    def columns(self) -> tuple[list[Any], list[Any], int]:
        """Copies of (head column, tail column, next-oid counter).

        The serialization view used by the WAL/checkpoint writers.
        """
        with self._lock:
            return list(self._head), list(self._tail), self._next_oid

    @classmethod
    def from_columns(
        cls,
        head_type: str,
        tail_type: str,
        head: Iterable[Any],
        tail: Iterable[Any],
        next_oid: int = 0,
        name: str | None = None,
    ) -> "BAT":
        """Rebuild a BAT from serialized columns (the recovery path).

        Values are re-coerced through the atom types, so a damaged log
        record that decodes to ill-typed values raises
        :class:`repro.errors.AtomTypeError` here instead of corrupting the
        catalog silently.
        """
        out = cls(head_type, tail_type, name=name)
        out._head = [out._head_atom.coerce(h) for h in head]
        out._tail = [out._tail_atom.coerce(t) for t in tail]
        if len(out._head) != len(out._tail):
            raise BatError(
                f"column length mismatch rebuilding {name or '<transient>'}: "
                f"{len(out._head)} heads, {len(out._tail)} tails"
            )
        out._next_oid = int(next_oid)
        return out

    def slice(self, lo: int, hi: int) -> "BAT":
        """Positional slice [lo, hi) preserving types."""
        out = BAT(self.head_type, self.tail_type)
        out._head = self._head[lo:hi]
        out._tail = self._tail[lo:hi]
        return out

    def unique(self) -> "BAT":
        """Drop duplicate (head, tail) pairs, keeping first occurrences."""
        out = BAT(self.head_type, self.tail_type)
        seen: set[tuple[Any, Any]] = set()
        for h, t in zip(self._head, self._tail):
            if (h, t) not in seen:
                seen.add((h, t))
                out._head.append(h)
                out._tail.append(t)
        return out

    def sort(self, reverse: bool = False) -> "BAT":
        """Return a copy ordered by tail value."""
        order = sorted(range(len(self)), key=lambda i: self._tail[i], reverse=reverse)
        out = BAT(self.head_type, self.tail_type)
        out._head = [self._head[i] for i in order]
        out._tail = [self._tail[i] for i in order]
        return out

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, lo: Any, hi: Any = _MISSING) -> "BAT":
        """Select associations by tail value.

        ``b.select(v)`` keeps tails equal to ``v``; ``b.select(lo, hi)`` keeps
        tails in the closed interval [lo, hi] (Monet range-select semantics).
        """
        out = BAT(self.head_type if self.head_type != "void" else "oid", self.tail_type)
        if hi is _MISSING:
            key = self._tail_atom.coerce(lo)
            pairs = [(h, t) for h, t in zip(self._head, self._tail) if _eq(t, key)]
        else:
            lo_v = self._tail_atom.coerce(lo)
            hi_v = self._tail_atom.coerce(hi)
            pairs = [
                (h, t)
                for h, t in zip(self._head, self._tail)
                if lo_v <= t <= hi_v
            ]
        for h, t in pairs:
            out._head.append(h)
            out._tail.append(t)
        return out

    def filter_tail(self, predicate: Callable[[Any], bool]) -> "BAT":
        """Keep associations whose tail satisfies an arbitrary predicate."""
        out = BAT(self.head_type if self.head_type != "void" else "oid", self.tail_type)
        for h, t in zip(self._head, self._tail):
            if predicate(t):
                out._head.append(h)
                out._tail.append(t)
        return out

    # ------------------------------------------------------------------
    # binary operators
    # ------------------------------------------------------------------
    def join(self, other: "BAT") -> "BAT":
        """Equi-join self's tail with other's head: [A,B] ⋈ [B,C] → [A,C]."""
        index: dict[Any, list[Any]] = {}
        for h, t in zip(other._head, other._tail):
            index.setdefault(h, []).append(t)
        out = BAT(
            self.head_type if self.head_type != "void" else "oid",
            other.tail_type if other.tail_type != "void" else "oid",
        )
        for h, t in zip(self._head, self._tail):
            for c in index.get(t, ()):
                out._head.append(h)
                out._tail.append(c)
        return out

    def semijoin(self, other: "BAT") -> "BAT":
        """Keep self's associations whose head occurs in other's head."""
        keys = set(other._head)
        out = BAT(self.head_type if self.head_type != "void" else "oid", self.tail_type)
        for h, t in zip(self._head, self._tail):
            if h in keys:
                out._head.append(h)
                out._tail.append(t)
        return out

    def kdiff(self, other: "BAT") -> "BAT":
        """Keep self's associations whose head does NOT occur in other."""
        keys = set(other._head)
        out = BAT(self.head_type if self.head_type != "void" else "oid", self.tail_type)
        for h, t in zip(self._head, self._tail):
            if h not in keys:
                out._head.append(h)
                out._tail.append(t)
        return out

    def kunion(self, other: "BAT") -> "BAT":
        """Union on heads: self's pairs plus other's pairs with new heads."""
        out = self.copy()
        keys = set(self._head)
        for h, t in zip(other._head, other._tail):
            if h not in keys:
                out._head.append(out._head_atom.coerce(h))
                out._tail.append(out._tail_atom.coerce(t))
        return out

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def _require_nonempty(self, op: str) -> None:
        if not self._tail:
            raise BatError(f"{op} on empty BAT")

    def max(self) -> Any:
        """Maximum tail value (MIL ``b.max``)."""
        self._require_nonempty("max")
        return max(self._tail)

    def min(self) -> Any:
        self._require_nonempty("min")
        return min(self._tail)

    def sum(self) -> Any:
        self._require_nonempty("sum")
        return sum(self._tail)

    def avg(self) -> float:
        self._require_nonempty("avg")
        return float(sum(self._tail)) / len(self._tail)

    def histogram(self) -> "BAT":
        """Return a [tail-value, count] BAT (Monet ``histogram``)."""
        counts: dict[Any, int] = {}
        for t in self._tail:
            counts[t] = counts.get(t, 0) + 1
        out = BAT(self.tail_type if self.tail_type != "void" else "oid", "int")
        for value, n in counts.items():
            out._head.append(value)
            out._tail.append(n)
        return out

    # ------------------------------------------------------------------
    # bulk views
    # ------------------------------------------------------------------
    def heads(self) -> list[Any]:
        return list(self._head)

    def tails(self) -> list[Any]:
        return list(self._tail)

    def tail_array(self) -> np.ndarray:
        """Tail column as a numpy array (dtype follows the atom type)."""
        if self.tail_type in _NUMERIC_ATOMS:
            return np.asarray(self._tail, dtype=self._tail_atom.dtype)
        return np.asarray(self._tail, dtype=object)

    def head_array(self) -> np.ndarray:
        if self.head_type in _NUMERIC_ATOMS:
            return np.asarray(self._head, dtype=self._head_atom.dtype)
        return np.asarray(self._head, dtype=object)


def _eq(a: Any, b: Any) -> bool:
    """Equality that treats NaN as equal to NaN (null semantics)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (np.isnan(a) and np.isnan(b))
    return a == b


def new_bat(head_type: str, tail_type: str) -> BAT:
    """MIL ``new(head, tail)`` constructor."""
    return BAT(head_type, tail_type)
