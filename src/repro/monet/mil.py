"""A MIL (Monet Interface Language) interpreter.

The paper's physical level is programmed in MIL: Moa operations are rewritten
into MIL procedures which the Monet kernel executes (Figs. 4 and 5b show the
parallel-HMM and DBN procedures). This module implements the MIL subset those
procedures need:

* ``PROC name(BAT[oid,dbl] f1, ...) : type := { ... }`` definitions,
* ``VAR x := expr;`` declarations and ``x := expr;`` assignments,
* method chains on BATs (``parEval.reverse.find(best)``, ``b.max``),
* ``new(void, int)`` BAT construction,
* ``IF``/``ELSE``, ``WHILE`` and ``RETURN`` control flow,
* a ``PARALLEL { ... }`` block that runs its statements concurrently on the
  kernel thread pool sized by ``threadcnt(n)`` — the mechanism behind the
  paper's parallel evaluation of six HMMs,
* ``#`` comments, numeric/string/bool literals, arithmetic and comparisons.

The interpreter is deliberately small and tree-walking; the heavy lifting is
in the kernel commands (Python callables registered by MEL-style modules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import re
import threading
from typing import Any, Callable, Sequence

from repro.errors import MilNameError, MilRecursionError, MilSyntaxError, MilTypeError
from repro.monet.bat import BAT

__all__ = [
    "MIL_RECURSION_LIMIT",
    "MilInterpreter",
    "MilProcedure",
    "parse",
    "tokenize",
]

#: Maximum PROC call nesting depth. Deep enough for any legitimate plan
#: (the shipped procedures nest two levels at most), shallow enough that a
#: runaway recursion raises a typed :class:`repro.errors.MilRecursionError`
#: long before the Python stack would overflow. The whole-program CALL002
#: diagnostic (:mod:`repro.check.programcheck`) cites this same bound when
#: it flags statically-unbounded recursion at registration time.
MIL_RECURSION_LIMIT = 64


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\.\d+(?:[eE][+-]?\d+)?)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<assign>:=)
  | (?P<le><=)|(?P<ge>>=)|(?P<ne>!=)
  | (?P<sym>[()\[\]{},;.<>=+\-*/:])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "PROC", "VAR", "RETURN", "IF", "ELSE", "WHILE", "PARALLEL",
    "AND", "OR", "NOT", "TRUE", "FALSE",
}


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Split MIL source into tokens, raising on unrecognized characters."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise MilSyntaxError(f"unexpected character {source[pos]!r}", line)
        text = match.group(0)
        kind = match.lastgroup or "sym"
        if kind == "ws":
            line += text.count("\n")
        elif kind == "comment":
            pass
        elif kind == "name" and text.upper() in _KEYWORDS:
            tokens.append(Token(text.upper(), text, line))
        elif kind in ("assign", "le", "ge", "ne", "sym"):
            tokens.append(Token(text, text, line))
        else:
            tokens.append(Token(kind, text, line))
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass
class Literal:
    value: Any
    line: int | None = None


@dataclass
class Name:
    ident: str
    line: int | None = None


@dataclass
class Call:
    func: str
    args: list[Any]
    line: int | None = None


@dataclass
class MethodCall:
    target: Any
    method: str
    args: list[Any]
    line: int | None = None


@dataclass
class BinOp:
    op: str
    left: Any
    right: Any
    line: int | None = None


@dataclass
class UnaryOp:
    op: str
    operand: Any
    line: int | None = None


@dataclass
class VarDecl:
    ident: str
    value: Any | None
    line: int | None = None


@dataclass
class Assign:
    ident: str
    value: Any
    line: int | None = None


@dataclass
class ExprStmt:
    expr: Any
    line: int | None = None


@dataclass
class Return:
    expr: Any | None
    line: int | None = None


@dataclass
class If:
    cond: Any
    then: list[Any]
    orelse: list[Any]
    line: int | None = None


@dataclass
class While:
    cond: Any
    body: list[Any]
    line: int | None = None


@dataclass
class Parallel:
    body: list[Any]
    line: int | None = None


@dataclass
class Param:
    type_name: str
    ident: str


@dataclass
class ProcDef:
    name: str
    params: list[Param]
    return_type: str | None
    body: list[Any]
    line: int | None = None


@dataclass
class MilProcedure:
    """A parsed MIL procedure, callable through the interpreter."""

    definition: ProcDef
    #: :class:`repro.check.fusecheck.FusionPlan` attached at define time
    #: (``None`` when the procedure was registered with ``check="off"``).
    fusion_plan: Any = None

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def arity(self) -> int:
        return len(self.definition.params)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise MilSyntaxError(
                f"expected {kind!r}, found {token.text!r}", token.line
            )
        return token

    def _accept(self, kind: str) -> Token | None:
        if self._peek().kind == kind:
            return self._next()
        return None

    # -- grammar ---------------------------------------------------------
    def parse_program(self) -> list[Any]:
        statements: list[Any] = []
        while self._peek().kind != "eof":
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Any:
        token = self._peek()
        if token.kind == "PROC":
            return self._parse_proc()
        if token.kind == "VAR":
            return self._parse_var()
        if token.kind == "RETURN":
            self._next()
            if self._peek().kind == ";":
                self._next()
                return Return(None, line=token.line)
            expr = self.parse_expression()
            self._expect(";")
            return Return(expr, line=token.line)
        if token.kind == "IF":
            return self._parse_if()
        if token.kind == "WHILE":
            return self._parse_while()
        if token.kind == "PARALLEL":
            self._next()
            return Parallel(self._parse_block(), line=token.line)
        # assignment vs expression statement: lookahead for `name :=`
        if token.kind == "name" and self._tokens[self._pos + 1].kind == ":=":
            ident = self._next().text
            self._next()  # :=
            expr = self.parse_expression()
            self._expect(";")
            return Assign(ident, expr, line=token.line)
        expr = self.parse_expression()
        self._expect(";")
        return ExprStmt(expr, line=token.line)

    def _parse_proc(self) -> ProcDef:
        keyword = self._expect("PROC")
        name = self._expect("name").text
        self._expect("(")
        params: list[Param] = []
        if self._peek().kind != ")":
            while True:
                params.append(self._parse_param())
                if not self._accept(","):
                    break
        self._expect(")")
        return_type = None
        if self._accept(":"):
            return_type = self._parse_type_name()
        self._expect(":=")
        body = self._parse_block()
        return ProcDef(name, params, return_type, body, line=keyword.line)

    def _parse_param(self) -> Param:
        type_name = self._parse_type_name()
        ident = self._expect("name").text
        return Param(type_name, ident)

    def _parse_type_name(self) -> str:
        token = self._expect("name")
        type_name = token.text
        if type_name == "BAT" and self._accept("["):
            head = self._expect("name").text
            self._expect(",")
            tail = self._expect("name").text
            self._expect("]")
            return f"BAT[{head},{tail}]"
        return type_name

    def _parse_var(self) -> VarDecl:
        keyword = self._expect("VAR")
        ident = self._expect("name").text
        # Optional type annotation: VAR x : str := ...
        if self._accept(":"):
            self._parse_type_name()
        value = None
        if self._accept(":="):
            value = self.parse_expression()
        self._expect(";")
        return VarDecl(ident, value, line=keyword.line)

    def _parse_if(self) -> If:
        keyword = self._expect("IF")
        self._expect("(")
        cond = self.parse_expression()
        self._expect(")")
        then = self._parse_block()
        orelse: list[Any] = []
        if self._accept("ELSE"):
            if self._peek().kind == "IF":
                orelse = [self._parse_if()]
            else:
                orelse = self._parse_block()
        return If(cond, then, orelse, line=keyword.line)

    def _parse_while(self) -> While:
        keyword = self._expect("WHILE")
        self._expect("(")
        cond = self.parse_expression()
        self._expect(")")
        return While(cond, self._parse_block(), line=keyword.line)

    def _parse_block(self) -> list[Any]:
        self._expect("{")
        statements: list[Any] = []
        while self._peek().kind != "}":
            statements.append(self.parse_statement())
        self._expect("}")
        return statements

    # -- expressions ------------------------------------------------------
    def parse_expression(self) -> Any:
        return self._parse_or()

    def _parse_or(self) -> Any:
        left = self._parse_and()
        while self._accept("OR"):
            left = BinOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Any:
        left = self._parse_not()
        while self._accept("AND"):
            left = BinOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Any:
        if self._accept("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Any:
        left = self._parse_additive()
        while self._peek().kind in ("=", "<", ">", "<=", ">=", "!="):
            op = self._next().kind
            left = BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Any:
        left = self._parse_multiplicative()
        while self._peek().kind in ("+", "-"):
            op = self._next().kind
            left = BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Any:
        left = self._parse_unary()
        while self._peek().kind in ("*", "/"):
            op = self._next().kind
            left = BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Any:
        if self._accept("-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Any:
        expr = self._parse_primary()
        while True:
            if self._accept("."):
                method_token = self._expect("name")
                method = method_token.text
                if self._accept("("):
                    args = self._parse_args()
                    expr = MethodCall(expr, method, args, line=method_token.line)
                else:
                    expr = MethodCall(expr, method, [], line=method_token.line)
            else:
                return expr

    def _parse_args(self) -> list[Any]:
        args: list[Any] = []
        if self._peek().kind != ")":
            while True:
                args.append(self.parse_expression())
                if not self._accept(","):
                    break
        self._expect(")")
        return args

    def _parse_primary(self) -> Any:
        token = self._next()
        if token.kind == "int":
            return Literal(int(token.text))
        if token.kind == "float":
            return Literal(float(token.text))
        if token.kind == "string":
            return Literal(_unescape(token.text[1:-1]))
        if token.kind == "TRUE":
            return Literal(True)
        if token.kind == "FALSE":
            return Literal(False)
        if token.kind == "name":
            if self._accept("("):
                args = self._parse_args()
                return Call(token.text, args, line=token.line)
            return Name(token.text, line=token.line)
        if token.kind == "(":
            expr = self.parse_expression()
            self._expect(")")
            return expr
        raise MilSyntaxError(f"unexpected token {token.text!r}", token.line)


def _unescape(text: str) -> str:
    return text.encode("utf-8").decode("unicode_escape")


def parse(source: str) -> list[Any]:
    """Parse MIL source into a statement list."""
    return _Parser(tokenize(source)).parse_program()


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


@dataclass
class _Scope:
    variables: dict[str, Any] = field(default_factory=dict)
    parent: "_Scope | None" = None

    def lookup(self, ident: str) -> Any:
        scope: _Scope | None = self
        while scope is not None:
            if ident in scope.variables:
                return scope.variables[ident]
            scope = scope.parent
        raise MilNameError(f"unknown MIL name {ident!r}")

    def assign(self, ident: str, value: Any) -> None:
        scope: _Scope | None = self
        while scope is not None:
            if ident in scope.variables:
                scope.variables[ident] = value
                return
            scope = scope.parent
        raise MilNameError(f"assignment to undeclared MIL variable {ident!r}")

    def declare(self, ident: str, value: Any) -> None:
        self.variables[ident] = value


class MilInterpreter:
    """Tree-walking evaluator for parsed MIL.

    The interpreter is owned by a :class:`repro.monet.kernel.MonetKernel`,
    which supplies the command registry (kernel builtins plus MEL module
    commands), the named-BAT catalog, and the thread pool for ``PARALLEL``
    blocks.
    """

    def __init__(
        self,
        commands: dict[str, Callable[..., Any]],
        globals_scope: dict[str, Any],
        run_parallel: Callable[..., list[Any]],
        signatures: dict[str, Any] | None = None,
        check: str = "error",
        call_guard: Callable[[str, Callable[..., Any], list[Any]], Any] | None = None,
        on_statement: Callable[[], None] | None = None,
        on_define: Callable[["MilProcedure"], None] | None = None,
    ):
        self._commands = commands
        self._globals = _Scope(globals_scope)
        self._procs: dict[str, MilProcedure] = {}
        self._run_parallel = run_parallel
        self._signatures = signatures if signatures is not None else {}
        self._check = check
        #: Wraps kernel-command invocations (fault injection, retry,
        #: deadlines); default is a plain call.
        self._call_guard = call_guard or (lambda name, fn, args: fn(*args))
        #: Per-statement hook (the kernel's deadline tick).
        self._on_statement = on_statement
        #: Post-registration hook (the kernel's WAL logging of PROC defs).
        self._on_define = on_define
        #: Name of the PROC currently executing (for PARALLEL context).
        self._current_proc: str | None = None
        #: Procs of the program currently being run (forward references are
        #: visible to the static checker before their ProcDef executes).
        self._pending_procs: dict[str, ProcDef] = {}
        #: Every diagnostic collected by define_proc, in order.
        self.diagnostics: list[Any] = []
        #: Per-thread PROC call depth (PARALLEL branches recurse on pool
        #: threads, so one shared counter would overcount).
        self._depth = threading.local()
        #: Whole-program summary cache shared across define_proc calls:
        #: per-PROC effect/cost/cancellation summaries keyed by source
        #: fingerprint, so redefining one proc re-analyzes only it and its
        #: callers (see :class:`repro.check.programcheck.SummaryCache`).
        self.program_cache: Any = None

    @property
    def procedures(self) -> dict[str, MilProcedure]:
        return dict(self._procs)

    # -- public API --------------------------------------------------------
    def run(self, source: str) -> Any:
        """Execute MIL source at global scope; returns the last RETURN or
        expression-statement value."""
        statements = parse(source)
        outer_pending = self._pending_procs
        self._pending_procs = {
            **outer_pending,
            **{s.name: s for s in statements if isinstance(s, ProcDef)},
        }
        try:
            return self._exec_block(statements, self._globals, toplevel=True)
        finally:
            self._pending_procs = outer_pending

    def define_proc(
        self,
        definition: "ProcDef | MilProcedure",
        source: str | None = None,
        check: str | None = None,
    ) -> MilProcedure:
        """Register a PROC, statically checking it first.

        Five passes run on every definition: the per-statement checker
        (:mod:`repro.check.milcheck`), the dataflow/range analysis
        (:mod:`repro.check.flowcheck`), the PARALLEL race analysis
        (:mod:`repro.check.racecheck`), the plan-cost analysis
        (:mod:`repro.check.costcheck`, advisory ``PERF`` hints), and the
        purity/fusibility analysis (:mod:`repro.check.fusecheck`), whose
        :class:`repro.check.fusecheck.FusionPlan` is attached to the
        registered procedure. With ``check="error"`` (the default) or
        ``check="sanitize"`` error-severity findings raise
        :class:`repro.errors.MilCheckError` and the procedure is NOT
        registered; ``check="warn"`` collects diagnostics without raising;
        ``check="off"`` skips analysis. All findings land in
        ``self.diagnostics``. ``check`` overrides the interpreter's mode
        for this one definition (crash recovery replays WAL-logged PROCs
        with ``check="off"`` because their modules may not be reloaded yet).
        """
        mode = self._check if check is None else check
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        fusion_plan = None
        if mode != "off":
            # imported lazily: repro.check.milcheck imports this module
            from repro.check.costcheck import CostChecker
            from repro.check.flowcheck import FlowChecker
            from repro.check.fusecheck import FuseChecker
            from repro.check.milcheck import MilChecker
            from repro.check.programcheck import ProgramChecker, SummaryCache
            from repro.check.racecheck import RaceChecker
            from repro.errors import MilCheckError

            environment = dict(
                commands=self._commands,
                signatures=self._signatures,
                globals_names=list(self._globals.variables),
                procedures={**self._procs, **self._pending_procs},
            )
            report = MilChecker(**environment).check_proc(
                definition, source=source
            )
            report.extend(
                FlowChecker(**environment).check_proc(definition, source=source)
            )
            report.extend(
                RaceChecker(**environment).check_proc(definition, source=source)
            )
            report.extend(
                CostChecker(**environment).check_proc(definition, source=source)
            )
            fusion_plan, fuse_report = FuseChecker(
                **environment
            ).analyze_with_report(definition, source=source)
            report.extend(fuse_report)
            # pass 6: whole-program call-graph analysis. Summaries are
            # memoized on the interpreter's cache keyed by source
            # fingerprint, so unchanged procs are not re-analyzed on
            # every registration.
            if self.program_cache is None:
                self.program_cache = SummaryCache()
            report.extend(
                ProgramChecker(
                    **environment, cache=self.program_cache
                ).on_define(definition, source=source)
            )
            self.diagnostics.extend(report)
            if mode in ("error", "sanitize"):
                report.raise_if_errors(
                    f"PROC {definition.name}", MilCheckError
                )
        proc = MilProcedure(definition, fusion_plan=fusion_plan)
        self._procs[definition.name] = proc
        if self._on_define is not None:
            self._on_define(proc)
        return proc

    def call(self, proc_name: str, args: Sequence[Any]) -> Any:
        """Invoke a previously defined PROC with Python-value arguments."""
        try:
            proc = self._procs[proc_name]
        except KeyError:
            raise MilNameError(f"unknown MIL procedure {proc_name!r}") from None
        return self._call_proc(proc, list(args))

    # -- execution ----------------------------------------------------------
    def _exec_block(
        self, statements: list[Any], scope: _Scope, toplevel: bool = False
    ) -> Any:
        last: Any = None
        for statement in statements:
            if self._on_statement is not None:
                self._on_statement()
            match statement:
                case ProcDef():
                    self.define_proc(statement)
                case VarDecl(ident=ident, value=value):
                    scope.declare(
                        ident, None if value is None else self._eval(value, scope)
                    )
                case Assign(ident=ident, value=value):
                    scope.assign(ident, self._eval(value, scope))
                case ExprStmt(expr=expr):
                    last = self._eval(expr, scope)
                case Return(expr=expr):
                    value = None if expr is None else self._eval(expr, scope)
                    if toplevel:
                        return value
                    raise _ReturnSignal(value)
                case If(cond=cond, then=then, orelse=orelse):
                    branch = then if self._truthy(cond, scope) else orelse
                    last = self._exec_block(branch, _Scope(parent=scope), toplevel)
                case While(cond=cond, body=body):
                    while self._truthy(cond, scope):
                        self._exec_block(body, _Scope(parent=scope), toplevel)
                case Parallel(body=body):
                    self._exec_parallel(body, scope)
                case _:
                    raise MilTypeError(f"cannot execute node {statement!r}")
        return last

    def _truthy(self, cond: Any, scope: _Scope) -> bool:
        return bool(self._eval(cond, scope))

    def _exec_parallel(self, statements: list[Any], scope: _Scope) -> None:
        """Run each top-level statement of a PARALLEL block concurrently.

        Each statement sees the enclosing scope; assignments made inside run
        under the GIL plus BAT locks, matching the Fig. 4 pattern of parallel
        inserts into one result BAT. Branch labels (index, MIL line, owning
        PROC) ride along so a failing branch propagates with its origin
        instead of a bare exception from an anonymous thread.
        """
        def make_thunk(statement: Any) -> Callable[[], Any]:
            def thunk() -> Any:
                return self._exec_block([statement], _Scope(parent=scope))
            return thunk

        labels = [
            self._branch_label(index, statement)
            for index, statement in enumerate(statements)
        ]
        self._run_parallel([make_thunk(s) for s in statements], labels)

    def _branch_label(self, index: int, statement: Any) -> str:
        label = f"PARALLEL branch {index + 1}"
        line = getattr(statement, "line", None)
        if line is not None:
            label += f" (line {line})"
        if self._current_proc is not None:
            label += f" of PROC {self._current_proc}"
        return label

    def _call_proc(self, proc: MilProcedure, args: list[Any]) -> Any:
        definition = proc.definition
        if len(args) != len(definition.params):
            raise MilTypeError(
                f"PROC {definition.name} expects {len(definition.params)} "
                f"arguments, got {len(args)}"
            )
        scope = _Scope(parent=self._globals)
        for param, value in zip(definition.params, args):
            if param.type_name.startswith("BAT[") and not isinstance(value, BAT):
                raise MilTypeError(
                    f"PROC {definition.name}: parameter {param.ident} "
                    f"expects a BAT, got {type(value).__name__}"
                )
            scope.declare(param.ident, value)
        depth = getattr(self._depth, "value", 0) + 1
        if depth > MIL_RECURSION_LIMIT:
            raise MilRecursionError(
                f"PROC call depth exceeded MIL_RECURSION_LIMIT "
                f"({MIL_RECURSION_LIMIT}) entering {definition.name!r} — "
                f"unbounded recursion (see CALL002)",
                proc=definition.name,
                depth=depth,
            )
        self._depth.value = depth
        enclosing_proc = self._current_proc
        self._current_proc = definition.name
        try:
            self._exec_block(definition.body, scope)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._current_proc = enclosing_proc
            self._depth.value = depth - 1
        return None

    # -- expression evaluation ----------------------------------------------
    def _eval(self, node: Any, scope: _Scope) -> Any:
        match node:
            case Literal(value=value):
                return value
            case Name(ident=ident):
                return self._resolve(ident, scope)
            case Call(func=func, args=args):
                return self._eval_call(func, args, scope)
            case MethodCall(target=target, method=method, args=args):
                receiver = self._eval(target, scope)
                values = [self._eval(a, scope) for a in args]
                return self._dispatch_method(receiver, method, values)
            case BinOp(op=op, left=left, right=right):
                return self._eval_binop(op, left, right, scope)
            case UnaryOp(op=op, operand=operand):
                value = self._eval(operand, scope)
                if op == "-":
                    return -value
                if op == "NOT":
                    return not value
                raise MilTypeError(f"unknown unary operator {op!r}")
            case _:
                raise MilTypeError(f"cannot evaluate node {node!r}")

    def _resolve(self, ident: str, scope: _Scope) -> Any:
        try:
            return scope.lookup(ident)
        except MilNameError:
            pass
        if ident in self._commands:
            return self._commands[ident]
        raise MilNameError(f"unknown MIL name {ident!r}")

    def _eval_call(self, func: str, args: list[Any], scope: _Scope) -> Any:
        # `new(void, int)` takes type *names*, which arrive as Name nodes.
        if func == "new":
            type_names = [a.ident for a in args if isinstance(a, Name)]
            if len(type_names) != 2:
                raise MilTypeError("new(head_type, tail_type) needs two type names")
            return BAT(type_names[0], type_names[1])
        if func in self._procs:
            values = [self._eval(a, scope) for a in args]
            return self._call_proc(self._procs[func], values)
        try:
            target = scope.lookup(func)
            guarded = False
        except MilNameError:
            if func not in self._commands:
                raise MilNameError(f"unknown MIL name {func!r}") from None
            target = self._commands[func]
            guarded = True
        if not callable(target):
            raise MilTypeError(f"{func!r} is not callable")
        values = [self._eval(a, scope) for a in args]
        if guarded:
            # Kernel commands go through the guard (fault injection, retry
            # policies, deadlines); plain callables bound to MIL variables
            # stay direct.
            return self._call_guard(func, target, values)
        return target(*values)

    def _dispatch_method(self, receiver: Any, method: str, args: list[Any]) -> Any:
        if method.startswith("_"):
            raise MilNameError(f"MIL cannot access private attribute {method!r}")
        attr = getattr(receiver, method, None)
        if attr is None:
            raise MilNameError(
                f"{type(receiver).__name__} has no MIL method {method!r}"
            )
        if callable(attr):
            return attr(*args)
        if args:
            raise MilTypeError(f"property {method!r} takes no arguments")
        return attr

    def _eval_binop(self, op: str, left_node: Any, right_node: Any, scope: _Scope) -> Any:
        if op == "AND":
            return bool(self._eval(left_node, scope)) and bool(
                self._eval(right_node, scope)
            )
        if op == "OR":
            return bool(self._eval(left_node, scope)) or bool(
                self._eval(right_node, scope)
            )
        left = self._eval(left_node, scope)
        right = self._eval(right_node, scope)
        match op:
            case "+":
                return left + right
            case "-":
                return left - right
            case "*":
                return left * right
            case "/":
                return left / right
            case "=":
                return left == right
            case "!=":
                return left != right
            case "<":
                return left < right
            case ">":
                return left > right
            case "<=":
                return left <= right
            case ">=":
                return left >= right
        raise MilTypeError(f"unknown operator {op!r}")
