"""Monet-style binary-relational kernel (the paper's physical level).

Public surface:

* :class:`~repro.monet.bat.BAT` — the binary association table.
* :class:`~repro.monet.kernel.MonetKernel` — catalog + MIL + modules + pool.
* :class:`~repro.monet.module.MonetModule` / :func:`~repro.monet.module.command`
  — MEL-style extension modules.
* :mod:`~repro.monet.mil` — the MIL interpreter (also usable standalone).
"""

from repro.monet.atoms import ATOMS, Atom, atom
from repro.monet.bat import BAT, new_bat
from repro.monet.kernel import MonetKernel
from repro.monet.mil import MilInterpreter, parse, tokenize
from repro.monet.module import MonetModule, command
from repro.monet.operators import decompose, group_count, project, reconstruct
from repro.monet.parallel import ParallelExecutor

__all__ = [
    "ATOMS",
    "Atom",
    "atom",
    "BAT",
    "new_bat",
    "MonetKernel",
    "MilInterpreter",
    "parse",
    "tokenize",
    "MonetModule",
    "command",
    "decompose",
    "group_count",
    "project",
    "reconstruct",
    "ParallelExecutor",
]
