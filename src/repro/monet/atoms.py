"""Atom types of the Monet-style kernel.

Monet stores all data in Binary Association Tables (BATs) whose two columns
each carry values of a single *atom* type. This module defines the built-in
atom types from the paper's MIL snippets (``oid``, ``void``, ``int``, ``flt``,
``dbl``, ``str``, ``bit``, ``chr``) and a registry that MEL-style extension
modules can extend with new abstract data types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import AtomTypeError

__all__ = ["Atom", "AtomRegistry", "ATOMS", "atom"]


@dataclass(frozen=True)
class Atom:
    """Description of one atom type.

    Attributes:
        name: MIL-level type name (``"int"``, ``"dbl"``, ...).
        dtype: numpy dtype used for columnar storage; ``object`` for
            variable-size atoms such as strings.
        coerce: converts an arbitrary Python value to the stored form,
            raising :class:`AtomTypeError` on failure.
        null: the sentinel used for missing values in this type.
    """

    name: str
    dtype: np.dtype
    coerce: Callable[[Any], Any]
    null: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Atom({self.name})"


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        raise AtomTypeError(f"cannot store bool {value!r} as int atom")
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise AtomTypeError(f"cannot store {value!r} as int atom") from exc


def _coerce_oid(value: Any) -> int:
    converted = _coerce_int(value)
    if converted < 0:
        raise AtomTypeError(f"oid atoms must be non-negative, got {converted}")
    return converted


def _coerce_float(value: Any) -> float:
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise AtomTypeError(f"cannot store {value!r} as float atom") from exc


def _coerce_str(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (bytes, bytearray)):
        return value.decode("utf-8")
    raise AtomTypeError(f"cannot store {value!r} as str atom")


def _coerce_bit(value: Any) -> bool:
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if value in (0, 1):
        return bool(value)
    raise AtomTypeError(f"cannot store {value!r} as bit atom")


def _coerce_chr(value: Any) -> str:
    text = _coerce_str(value)
    if len(text) != 1:
        raise AtomTypeError(f"chr atoms hold one character, got {text!r}")
    return text


def _coerce_any(value: Any) -> Any:
    return value


class AtomRegistry:
    """Registry mapping atom-type names to :class:`Atom` descriptors."""

    def __init__(self) -> None:
        self._atoms: dict[str, Atom] = {}

    def register(self, atom_type: Atom) -> None:
        """Register an atom type; re-registration of a name is an error."""
        if atom_type.name in self._atoms:
            raise AtomTypeError(f"atom type {atom_type.name!r} already registered")
        self._atoms[atom_type.name] = atom_type

    def get(self, name: str) -> Atom:
        try:
            return self._atoms[name]
        except KeyError:
            raise AtomTypeError(f"unknown atom type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._atoms

    def names(self) -> list[str]:
        return sorted(self._atoms)


#: Global registry holding the built-in atom types. MEL modules may add to it
#: through :meth:`repro.monet.kernel.MonetKernel.register_atom`.
ATOMS = AtomRegistry()

for _atom in (
    Atom("oid", np.dtype(np.int64), _coerce_oid, -1),
    # ``void`` marks a dense, materialization-free oid sequence; stored the
    # same way when materialized.
    Atom("void", np.dtype(np.int64), _coerce_oid, -1),
    Atom("int", np.dtype(np.int64), _coerce_int, np.iinfo(np.int64).min),
    Atom("flt", np.dtype(np.float32), _coerce_float, np.nan),
    Atom("dbl", np.dtype(np.float64), _coerce_float, np.nan),
    Atom("str", np.dtype(object), _coerce_str, None),
    Atom("bit", np.dtype(np.bool_), _coerce_bit, False),
    Atom("chr", np.dtype(object), _coerce_chr, None),
    # ``any`` is the escape hatch used by extension modules to pass opaque
    # Python objects (e.g. trained model handles) through BATs.
    Atom("any", np.dtype(object), _coerce_any, None),
):
    ATOMS.register(_atom)


def atom(name: str) -> Atom:
    """Look up a built-in atom type by MIL name."""
    return ATOMS.get(name)
