"""MEL-style extension modules.

Monet is extended with new commands through the Monet Extension Language
(MEL). A :class:`MonetModule` is the Python analogue: a named bundle of
commands (and optionally new atom types) that a kernel loads, after which
the commands are callable from MIL by name. The paper's four Moa extensions
(video processing, HMM, DBN, rules) each install one such module at the
physical level.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import MonetError
from repro.monet.atoms import Atom

__all__ = ["MonetModule", "command"]


def command(name: str | None = None) -> Callable:
    """Decorator marking a :class:`MonetModule` method as a MIL command.

    Args:
        name: MIL-level command name; defaults to the method name.
    """

    def mark(fn: Callable) -> Callable:
        fn._mil_command = name or fn.__name__  # type: ignore[attr-defined]
        return fn

    return mark


class MonetModule:
    """Base class for kernel extension modules.

    Subclasses declare commands with the :func:`command` decorator::

        class HmmModule(MonetModule):
            name = "hmm"

            @command()
            def hmmOneCall(self, server, a, b, obs, num):
                ...

    Loading the module (``kernel.load_module(HmmModule())``) registers every
    marked method in the kernel command table.
    """

    #: Module name used for error messages and the catalog.
    name: str = "module"

    #: Extra atom types contributed by this module.
    atoms: tuple[Atom, ...] = ()

    def commands(self) -> dict[str, Callable[..., Any]]:
        """Collect the decorated commands of this instance."""
        found: dict[str, Callable[..., Any]] = {}
        for attr_name in dir(self):
            if attr_name.startswith("_"):
                continue
            attr = getattr(self, attr_name)
            mil_name = getattr(attr, "_mil_command", None)
            if mil_name is not None:
                if mil_name in found:
                    raise MonetError(
                        f"module {self.name!r} defines command {mil_name!r} twice"
                    )
                found[mil_name] = attr
        return found
