"""MEL-style extension modules.

Monet is extended with new commands through the Monet Extension Language
(MEL). A :class:`MonetModule` is the Python analogue: a named bundle of
commands (and optionally new atom types) that a kernel loads, after which
the commands are callable from MIL by name. The paper's four Moa extensions
(video processing, HMM, DBN, rules) each install one such module at the
physical level.

Commands may declare a :class:`CommandSignature` — MIL-level argument and
return types — which the :mod:`repro.check` static analyzer uses to verify
kernel calls inside ``PROC`` bodies *before* they run::

    class HmmModule(MonetModule):
        name = "hmm"

        @command(args=("int", "str", "BAT[void,int]"), returns="flt")
        def hmmOneCall(self, server_id, model_name, obs):
            ...

Type names are MIL atom names (``int``, ``flt``, ``dbl``, ``str``, ``bit``),
``BAT`` / ``BAT[head,tail]`` for tables, or ``any`` for unchecked slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import MonetError
from repro.monet.atoms import Atom

__all__ = ["CommandSignature", "MonetModule", "command"]


@dataclass(frozen=True)
class CommandSignature:
    """Declared MIL-level type signature of a kernel command.

    Attributes:
        name: MIL command name.
        args: argument type names, in order. With ``varargs`` set, the last
            entry repeats zero or more times.
        returns: return type name (``"any"`` when undeclared).
        varargs: whether the command accepts a variable argument tail.
        module: owning module name (for error messages).
    """

    name: str
    args: tuple[str, ...] = ()
    returns: str = "any"
    varargs: bool = False
    module: str | None = None
    #: Optional per-argument value-range contracts: a ``(lo, hi)`` bound per
    #: declared argument slot (``None`` = unconstrained). For BAT arguments
    #: the bound applies to every tail value. With ``varargs``, the last
    #: entry repeats with the last argument type.
    arg_ranges: tuple[tuple[float, float] | None, ...] = ()
    #: Optional value-range contract on the return value.
    returns_range: tuple[float, float] | None = None

    @property
    def min_args(self) -> int:
        return len(self.args) - 1 if self.varargs else len(self.args)

    def arg_range(self, index: int) -> tuple[float, float] | None:
        """Declared range contract for argument slot ``index``, if any."""
        if not self.arg_ranges:
            return None
        slot = min(index, len(self.arg_ranges) - 1)
        return self.arg_ranges[slot]

    def describe(self) -> str:
        rendered = list(self.args)
        if self.varargs and rendered:
            rendered[-1] = rendered[-1] + "..."
        return f"{self.name}({', '.join(rendered)}) : {self.returns}"


def command(
    name: str | None = None,
    args: Sequence[str] | None = None,
    returns: str = "any",
    varargs: bool = False,
    arg_ranges: Sequence[tuple[float, float] | None] | None = None,
    returns_range: tuple[float, float] | None = None,
) -> Callable:
    """Decorator marking a :class:`MonetModule` method as a MIL command.

    Args:
        name: MIL-level command name; defaults to the method name.
        args: declared MIL argument types (enables static arity/type checks).
        returns: declared MIL return type.
        varargs: whether the final declared argument type repeats.
        arg_ranges: per-argument ``(lo, hi)`` value-range contracts checked
            statically by :mod:`repro.check.flowcheck` and dynamically in
            ``check="sanitize"`` mode.
        returns_range: ``(lo, hi)`` contract on the return value.
    """

    def mark(fn: Callable) -> Callable:
        command_name = name or fn.__name__
        fn._mil_command = command_name  # type: ignore[attr-defined]
        if args is not None:
            fn._mil_signature = CommandSignature(  # type: ignore[attr-defined]
                command_name,
                tuple(args),
                returns,
                varargs,
                arg_ranges=tuple(arg_ranges) if arg_ranges is not None else (),
                returns_range=returns_range,
            )
        return fn

    return mark


class MonetModule:
    """Base class for kernel extension modules.

    Subclasses declare commands with the :func:`command` decorator::

        class HmmModule(MonetModule):
            name = "hmm"

            @command()
            def hmmOneCall(self, server, a, b, obs, num):
                ...

    Loading the module (``kernel.load_module(HmmModule())``) registers every
    marked method in the kernel command table.
    """

    #: Module name used for error messages and the catalog.
    name: str = "module"

    #: Extra atom types contributed by this module.
    atoms: tuple[Atom, ...] = ()

    def commands(self) -> dict[str, Callable[..., Any]]:
        """Collect the decorated commands of this instance."""
        found: dict[str, Callable[..., Any]] = {}
        for attr_name in dir(self):
            if attr_name.startswith("_"):
                continue
            attr = getattr(self, attr_name)
            mil_name = getattr(attr, "_mil_command", None)
            if mil_name is not None:
                if mil_name in found:
                    raise MonetError(
                        f"module {self.name!r} defines command {mil_name!r} twice"
                    )
                found[mil_name] = attr
        return found

    def signatures(self) -> dict[str, CommandSignature]:
        """Collect the declared signatures of this instance's commands."""
        found: dict[str, CommandSignature] = {}
        for attr_name in dir(self):
            if attr_name.startswith("_"):
                continue
            attr = getattr(self, attr_name)
            signature = getattr(attr, "_mil_signature", None)
            if signature is not None:
                found[signature.name] = CommandSignature(
                    signature.name,
                    signature.args,
                    signature.returns,
                    signature.varargs,
                    module=self.name,
                    arg_ranges=signature.arg_ranges,
                    returns_range=signature.returns_range,
                )
        return found
