"""The Monet kernel facade.

Ties together the BAT catalog, the MIL interpreter, the thread pool, and the
MEL-style module registry into the "extensible parallel database kernel used
at the physical level" of the paper's three-level architecture.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from repro.errors import MonetError
from repro.monet.atoms import ATOMS
from repro.monet.bat import BAT
from repro.monet.mil import MilInterpreter
from repro.monet.module import CommandSignature, MonetModule
from repro.monet.parallel import ParallelExecutor

__all__ = ["MonetKernel"]


class MonetKernel:
    """An in-memory binary-relational kernel with MIL and MEL extensibility.

    Typical use::

        kernel = MonetKernel()
        kernel.load_module(HmmModule(...))
        kernel.run(mil_source)              # define PROCs
        result = kernel.call("hmmP", bats)  # invoke one

    Named BATs are persisted in the catalog and visible to MIL by name.

    ``check`` sets the strictness of the static analyzer that runs on every
    ``PROC`` definition: ``"error"`` (default) rejects procedures with
    error-severity findings, ``"warn"`` only collects diagnostics, and
    ``"off"`` disables analysis.
    """

    def __init__(self, threads: int = 2, check: str = "error"):
        self._catalog: dict[str, BAT] = {}
        self._modules: dict[str, MonetModule] = {}
        self._executor = ParallelExecutor(threads=threads)
        self._commands: dict[str, Callable[..., Any]] = {}
        self._signatures: dict[str, CommandSignature] = {}
        self._install_builtins()
        self._mil = MilInterpreter(
            commands=self._commands,
            globals_scope=_CatalogView(self._catalog),
            run_parallel=self._executor.run,
            signatures=self._signatures,
            check=check,
        )

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def persist(self, name: str, bat: BAT) -> BAT:
        """Store a BAT in the catalog under ``name`` (overwriting)."""
        bat.name = name
        self._catalog[name] = bat
        return bat

    def bat(self, name: str) -> BAT:
        try:
            return self._catalog[name]
        except KeyError:
            raise MonetError(f"no BAT named {name!r} in the catalog") from None

    def drop(self, name: str) -> None:
        if name not in self._catalog:
            raise MonetError(f"no BAT named {name!r} in the catalog")
        del self._catalog[name]

    def catalog_names(self) -> list[str]:
        return sorted(self._catalog)

    # ------------------------------------------------------------------
    # modules & commands
    # ------------------------------------------------------------------
    def load_module(self, module: MonetModule) -> None:
        """Register a MEL-style module's commands and atom types."""
        if module.name in self._modules:
            raise MonetError(f"module {module.name!r} already loaded")
        for atom_type in module.atoms:
            if atom_type.name not in ATOMS:
                ATOMS.register(atom_type)
        for name, fn in module.commands().items():
            if name in self._commands:
                raise MonetError(
                    f"command {name!r} from module {module.name!r} clashes "
                    f"with an existing command"
                )
            self._commands[name] = fn
        self._signatures.update(module.signatures())
        self._modules[module.name] = module

    def register_command(
        self,
        name: str,
        fn: Callable[..., Any],
        signature: CommandSignature | None = None,
    ) -> None:
        """Register a single ad-hoc command (bypassing the module system)."""
        if name in self._commands:
            raise MonetError(f"command {name!r} already registered")
        self._commands[name] = fn
        if signature is not None:
            self._signatures[name] = signature

    def has_command(self, name: str) -> bool:
        return name in self._commands

    def command_names(self) -> list[str]:
        return sorted(self._commands)

    def command_signatures(self) -> dict[str, CommandSignature]:
        """Declared MIL signatures, keyed by command name."""
        return dict(self._signatures)

    def module_names(self) -> list[str]:
        return sorted(self._modules)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, mil_source: str) -> Any:
        """Execute MIL source at global scope."""
        return self._mil.run(mil_source)

    def call(self, proc_name: str, args: Sequence[Any] = ()) -> Any:
        """Invoke a MIL PROC defined earlier via :meth:`run`."""
        return self._mil.call(proc_name, args)

    def procedures(self) -> list[str]:
        return sorted(self._mil.procedures)

    @property
    def interpreter(self) -> MilInterpreter:
        return self._mil

    @property
    def diagnostics(self) -> list[Any]:
        """Static-analysis findings collected across PROC definitions."""
        return list(self._mil.diagnostics)

    def parallel(self, thunks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run Python thunks on the kernel pool (used by extensions)."""
        return self._executor.run(thunks)

    @property
    def threads(self) -> int:
        return self._executor.threads

    # ------------------------------------------------------------------
    # builtins
    # ------------------------------------------------------------------
    def _install_builtins(self) -> None:
        self._commands.update(
            {
                "threadcnt": self._executor.threadcnt,
                "print": _mil_print,
                "abs": abs,
                "sqrt": math.sqrt,
                "log": math.log,
                "exp": math.exp,
                "floor": math.floor,
                "ceil": math.ceil,
                "min2": min,
                "max2": max,
                "int": int,
                "flt": float,
                "str": str,
                "len": len,
                "bat": self.bat,
                "persist": self.persist,
            }
        )
        self._signatures.update(
            {
                "threadcnt": CommandSignature("threadcnt", ("int",), "int"),
                "print": CommandSignature("print", ("any",), "any", varargs=True),
                "abs": CommandSignature("abs", ("dbl",), "dbl"),
                "sqrt": CommandSignature("sqrt", ("dbl",), "dbl"),
                "log": CommandSignature("log", ("dbl",), "dbl"),
                "exp": CommandSignature("exp", ("dbl",), "dbl"),
                "floor": CommandSignature("floor", ("dbl",), "int"),
                "ceil": CommandSignature("ceil", ("dbl",), "int"),
                "min2": CommandSignature("min2", ("any", "any"), "any"),
                "max2": CommandSignature("max2", ("any", "any"), "any"),
                "int": CommandSignature("int", ("any",), "int"),
                "flt": CommandSignature("flt", ("any",), "dbl"),
                "str": CommandSignature("str", ("any",), "str"),
                "len": CommandSignature("len", ("any",), "int"),
                "bat": CommandSignature("bat", ("str",), "BAT"),
                "persist": CommandSignature("persist", ("str", "BAT"), "BAT"),
            }
        )


class _CatalogView(dict):
    """Global MIL scope backed by the kernel catalog.

    Plain MIL globals live in the dict itself; catalog BATs shine through by
    name so ``PROC`` bodies can reference persisted metadata directly.
    """

    def __init__(self, catalog: dict[str, BAT]):
        super().__init__()
        self._bat_catalog = catalog

    def __contains__(self, key: object) -> bool:  # type: ignore[override]
        return super().__contains__(key) or key in self._bat_catalog

    def __getitem__(self, key: str) -> Any:
        if super().__contains__(key):
            return super().__getitem__(key)
        return self._bat_catalog[key]

    def __iter__(self):
        # Iteration exposes catalog names too, so the static checker can
        # treat persisted BATs as known globals.
        yield from super().__iter__()
        for key in self._bat_catalog:
            if not super().__contains__(key):
                yield key


def _mil_print(*args: Any) -> None:
    print(*args)
