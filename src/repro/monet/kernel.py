"""The Monet kernel facade.

Ties together the BAT catalog, the MIL interpreter, the thread pool, and the
MEL-style module registry into the "extensible parallel database kernel used
at the physical level" of the paper's three-level architecture.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.errors import DeadlineExceeded, MonetError, annotate
from repro.faults import FaultInjector, FaultPlan, resolve_injector
from repro.monet.atoms import ATOMS
from repro.monet.bat import BAT
from repro.monet.mil import MilInterpreter
from repro.monet.module import CommandSignature, MonetModule
from repro.monet.parallel import ParallelExecutor
from repro.resilience import Deadline, FailureReport, ResiliencePolicy

__all__ = ["MonetKernel"]


class MonetKernel:
    """An in-memory binary-relational kernel with MIL and MEL extensibility.

    Typical use::

        kernel = MonetKernel()
        kernel.load_module(HmmModule(...))
        kernel.run(mil_source)              # define PROCs
        result = kernel.call("hmmP", bats)  # invoke one

    Named BATs are persisted in the catalog and visible to MIL by name.

    ``check`` sets the strictness of the static analyzer that runs on every
    ``PROC`` definition: ``"error"`` (default) rejects procedures with
    error-severity findings, ``"warn"`` only collects diagnostics, and
    ``"off"`` disables analysis.

    ``faults`` is an opt-in :class:`repro.faults.FaultInjector` (or plan)
    consulted before every command invocation (site
    ``kernel.command:<name>``); ``resilience`` configures the retry policy
    and deadlines guarding those invocations. Transient command failures are
    retried with exponential backoff and recoveries are recorded as
    :class:`FailureReport` entries on :attr:`failures`.
    """

    def __init__(
        self,
        threads: int = 2,
        check: str = "error",
        faults: "FaultInjector | FaultPlan | None" = None,
        resilience: ResiliencePolicy | None = None,
    ):
        self._catalog: dict[str, BAT] = {}
        self._modules: dict[str, MonetModule] = {}
        self._executor = ParallelExecutor(threads=threads)
        self._commands: dict[str, Callable[..., Any]] = {}
        self._signatures: dict[str, CommandSignature] = {}
        self.faults = resolve_injector(faults)
        self.resilience = resilience or ResiliencePolicy()
        #: Structured FailureReports (retries, rollbacks) in event order.
        self.failures: list[FailureReport] = []
        self._active_deadline: Deadline | None = None
        self._install_builtins()
        self._mil = MilInterpreter(
            commands=self._commands,
            globals_scope=_CatalogView(self._catalog),
            run_parallel=self._executor.run,
            signatures=self._signatures,
            check=check,
            call_guard=self._guarded_command,
            on_statement=self._deadline_tick,
        )

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def persist(self, name: str, bat: BAT) -> BAT:
        """Store a BAT in the catalog under ``name`` (overwriting)."""
        bat.name = name
        self._catalog[name] = bat
        return bat

    def bat(self, name: str) -> BAT:
        try:
            return self._catalog[name]
        except KeyError:
            raise MonetError(f"no BAT named {name!r} in the catalog") from None

    def drop(self, name: str) -> None:
        if name not in self._catalog:
            raise MonetError(f"no BAT named {name!r} in the catalog")
        del self._catalog[name]

    def catalog_names(self) -> list[str]:
        return sorted(self._catalog)

    # ------------------------------------------------------------------
    # snapshot / rollback
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, BAT]:
        """A deep copy of the catalog (names -> copied BATs)."""
        return {name: bat.copy(name=name) for name, bat in self._catalog.items()}

    def restore(self, snapshot: dict[str, BAT]) -> None:
        """Roll the catalog back to a snapshot.

        BATs that survive under the same name and types are restored *in
        place*, so holders of a reference (the metadata store, MIL globals)
        observe the rollback; BATs created after the snapshot are dropped,
        and dropped/replaced ones are reinstated from their copies.
        """
        for name in list(self._catalog):
            if name not in snapshot:
                del self._catalog[name]
        for name, saved in snapshot.items():
            live = self._catalog.get(name)
            if (
                live is None
                or (live.head_type, live.tail_type)
                != (saved.head_type, saved.tail_type)
            ):
                self._catalog[name] = saved.copy(name=name)
            else:
                live.restore(saved)

    @contextmanager
    def transaction(self) -> Iterator[dict[str, BAT]]:
        """Catalog snapshot/rollback scope.

        On any exception the catalog is restored to its state at entry, so
        a failed MIL ``PROC`` or preprocessor run cannot leave half-written
        BATs behind; the exception then propagates, annotated.
        """
        saved = self.snapshot()
        try:
            yield saved
        except BaseException as exc:
            self.restore(saved)
            self.failures.append(
                FailureReport.from_exception(
                    "kernel.transaction", exc, "rolled-back",
                    detail=f"catalog restored to {len(saved)} BAT(s)",
                )
            )
            annotate(exc, f"catalog rolled back to snapshot of {len(saved)} BAT(s)")
            raise

    # ------------------------------------------------------------------
    # modules & commands
    # ------------------------------------------------------------------
    def load_module(self, module: MonetModule) -> None:
        """Register a MEL-style module's commands and atom types."""
        if module.name in self._modules:
            raise MonetError(f"module {module.name!r} already loaded")
        for atom_type in module.atoms:
            if atom_type.name not in ATOMS:
                ATOMS.register(atom_type)
        for name, fn in module.commands().items():
            if name in self._commands:
                raise MonetError(
                    f"command {name!r} from module {module.name!r} clashes "
                    f"with an existing command"
                )
            self._commands[name] = fn
        self._signatures.update(module.signatures())
        self._modules[module.name] = module

    def register_command(
        self,
        name: str,
        fn: Callable[..., Any],
        signature: CommandSignature | None = None,
    ) -> None:
        """Register a single ad-hoc command (bypassing the module system)."""
        if name in self._commands:
            raise MonetError(f"command {name!r} already registered")
        self._commands[name] = fn
        if signature is not None:
            self._signatures[name] = signature

    def has_command(self, name: str) -> bool:
        return name in self._commands

    def command_names(self) -> list[str]:
        return sorted(self._commands)

    def command_signatures(self) -> dict[str, CommandSignature]:
        """Declared MIL signatures, keyed by command name."""
        return dict(self._signatures)

    def module_names(self) -> list[str]:
        return sorted(self._modules)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        mil_source: str,
        deadline: Deadline | None = None,
        transactional: bool = False,
    ) -> Any:
        """Execute MIL source at global scope.

        ``deadline`` bounds the whole execution (checked per statement and
        per command); ``transactional=True`` rolls the BAT catalog back if
        the execution raises.
        """
        return self._execute(lambda: self._mil.run(mil_source), deadline, transactional)

    def call(
        self,
        proc_name: str,
        args: Sequence[Any] = (),
        deadline: Deadline | None = None,
        transactional: bool = False,
    ) -> Any:
        """Invoke a MIL PROC defined earlier via :meth:`run`."""
        return self._execute(
            lambda: self._mil.call(proc_name, args), deadline, transactional
        )

    def _execute(
        self,
        thunk: Callable[[], Any],
        deadline: Deadline | None,
        transactional: bool,
    ) -> Any:
        previous = self._active_deadline
        if deadline is None and previous is None:
            if self.resilience.query_budget is not None:
                deadline = Deadline(self.resilience.query_budget)
        if deadline is not None:
            self._active_deadline = deadline
        try:
            if transactional:
                with self.transaction():
                    return thunk()
            return thunk()
        finally:
            self._active_deadline = previous

    def drain_failures(self) -> list[FailureReport]:
        """Return and clear the accumulated failure reports."""
        out = self.failures
        self.failures = []
        return out

    # ------------------------------------------------------------------
    # resilience guards
    # ------------------------------------------------------------------
    def _deadline_tick(self) -> None:
        deadline = self._active_deadline
        if deadline is not None:
            deadline.check("mil.statement")

    def _guarded_command(
        self, name: str, fn: Callable[..., Any], args: list[Any]
    ) -> Any:
        """Invoke one kernel command under fault injection + retry + deadline."""
        site = f"kernel.command:{name}"
        deadline = self._active_deadline
        faults = self.faults
        call_timeout = self.resilience.call_timeout

        def attempt() -> Any:
            faults.on_call(site)
            if call_timeout is None:
                return fn(*args)
            started = time.monotonic()
            result = fn(*args)
            elapsed = time.monotonic() - started
            if elapsed > call_timeout:
                raise DeadlineExceeded(
                    f"command ran {elapsed:.3f}s, over its {call_timeout}s "
                    f"per-call budget",
                    site=site,
                )
            return result

        if not faults.enabled and deadline is None and call_timeout is None:
            return fn(*args)  # fast path: nothing to guard

        def on_retry(attempt_number: int, error: BaseException) -> None:
            self.failures.append(
                FailureReport.from_exception(
                    site, error, "retried", attempts=attempt_number
                )
            )

        return self.resilience.retry.call(
            attempt, site=site, deadline=deadline, on_retry=on_retry
        )

    def procedures(self) -> list[str]:
        return sorted(self._mil.procedures)

    @property
    def interpreter(self) -> MilInterpreter:
        return self._mil

    @property
    def diagnostics(self) -> list[Any]:
        """Static-analysis findings collected across PROC definitions."""
        return list(self._mil.diagnostics)

    def parallel(self, thunks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run Python thunks on the kernel pool (used by extensions)."""
        return self._executor.run(thunks)

    @property
    def threads(self) -> int:
        return self._executor.threads

    # ------------------------------------------------------------------
    # builtins
    # ------------------------------------------------------------------
    def _install_builtins(self) -> None:
        self._commands.update(
            {
                "threadcnt": self._executor.threadcnt,
                "print": _mil_print,
                "abs": abs,
                "sqrt": math.sqrt,
                "log": math.log,
                "exp": math.exp,
                "floor": math.floor,
                "ceil": math.ceil,
                "min2": min,
                "max2": max,
                "int": int,
                "flt": float,
                "str": str,
                "len": len,
                "bat": self.bat,
                "persist": self.persist,
            }
        )
        self._signatures.update(
            {
                "threadcnt": CommandSignature("threadcnt", ("int",), "int"),
                "print": CommandSignature("print", ("any",), "any", varargs=True),
                "abs": CommandSignature("abs", ("dbl",), "dbl"),
                "sqrt": CommandSignature("sqrt", ("dbl",), "dbl"),
                "log": CommandSignature("log", ("dbl",), "dbl"),
                "exp": CommandSignature("exp", ("dbl",), "dbl"),
                "floor": CommandSignature("floor", ("dbl",), "int"),
                "ceil": CommandSignature("ceil", ("dbl",), "int"),
                "min2": CommandSignature("min2", ("any", "any"), "any"),
                "max2": CommandSignature("max2", ("any", "any"), "any"),
                "int": CommandSignature("int", ("any",), "int"),
                "flt": CommandSignature("flt", ("any",), "dbl"),
                "str": CommandSignature("str", ("any",), "str"),
                "len": CommandSignature("len", ("any",), "int"),
                "bat": CommandSignature("bat", ("str",), "BAT"),
                "persist": CommandSignature("persist", ("str", "BAT"), "BAT"),
            }
        )


class _CatalogView(dict):
    """Global MIL scope backed by the kernel catalog.

    Plain MIL globals live in the dict itself; catalog BATs shine through by
    name so ``PROC`` bodies can reference persisted metadata directly.
    """

    def __init__(self, catalog: dict[str, BAT]):
        super().__init__()
        self._bat_catalog = catalog

    def __contains__(self, key: object) -> bool:  # type: ignore[override]
        return super().__contains__(key) or key in self._bat_catalog

    def __getitem__(self, key: str) -> Any:
        if super().__contains__(key):
            return super().__getitem__(key)
        return self._bat_catalog[key]

    def __iter__(self):
        # Iteration exposes catalog names too, so the static checker can
        # treat persisted BATs as known globals.
        yield from super().__iter__()
        for key in self._bat_catalog:
            if not super().__contains__(key):
                yield key


def _mil_print(*args: Any) -> None:
    print(*args)
