"""The Monet kernel facade.

Ties together the BAT catalog, the MIL interpreter, the thread pool, and the
MEL-style module registry into the "extensible parallel database kernel used
at the physical level" of the paper's three-level architecture.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.errors import MonetError, SimulatedCrash, TimeoutExpired, annotate
from repro.faults import FaultInjector, FaultPlan, resolve_injector
from repro.monet.atoms import ATOMS
from repro.monet.bat import BAT
from repro.monet.mil import MilInterpreter
from repro.monet.module import CommandSignature, MonetModule
from repro.monet.parallel import ParallelExecutor
from repro.resilience import (
    Deadline,
    FailureReport,
    ResiliencePolicy,
    cancel_checkpoint,
    current_token,
)

if TYPE_CHECKING:  # imported lazily at runtime: durability layers on monet
    from repro.durability.store import DurableStore, RecoveryReport

__all__ = ["MonetKernel"]


class MonetKernel:
    """An in-memory binary-relational kernel with MIL and MEL extensibility.

    Typical use::

        kernel = MonetKernel()
        kernel.load_module(HmmModule(...))
        kernel.run(mil_source)              # define PROCs
        result = kernel.call("hmmP", bats)  # invoke one

    Named BATs are persisted in the catalog and visible to MIL by name.

    ``check`` sets the strictness of the static analyzers that run on every
    ``PROC`` definition: ``"error"`` (default) rejects procedures with
    error-severity findings, ``"warn"`` only collects diagnostics,
    ``"off"`` disables analysis, and ``"sanitize"`` rejects like
    ``"error"`` *and* arms the runtime sanitizer
    (:class:`repro.check.sanitize.KernelSanitizer`) so parallel fan-outs,
    catalog writes, and range-contracted commands are also checked while
    plans execute.

    ``faults`` is an opt-in :class:`repro.faults.FaultInjector` (or plan)
    consulted before every command invocation (site
    ``kernel.command:<name>``); ``resilience`` configures the retry policy
    and deadlines guarding those invocations. Transient command failures are
    retried with exponential backoff and recoveries are recorded as
    :class:`FailureReport` entries on :attr:`failures`.

    ``store`` opts into durability: pass a directory path (or a configured
    :class:`repro.durability.DurableStore`) and the kernel recovers the
    catalog, PROC definitions, and expected module list from it at startup,
    then write-ahead-logs every catalog mutation. ``transaction()`` becomes
    the WAL commit boundary: the delta against the entry snapshot is
    group-committed (fsynced) when the outermost transaction exits cleanly.
    The :class:`RecoveryReport` of the startup recovery is on
    :attr:`recovery`; modules named in :attr:`expected_modules` must be
    re-loaded by the caller (module code cannot be serialized).
    """

    def __init__(
        self,
        threads: int = 2,
        check: str = "error",
        faults: "FaultInjector | FaultPlan | None" = None,
        resilience: ResiliencePolicy | None = None,
        store: "DurableStore | str | Path | None" = None,
    ):
        self._catalog: dict[str, BAT] = {}
        self._modules: dict[str, MonetModule] = {}
        self._executor = ParallelExecutor(threads=threads)
        self._commands: dict[str, Callable[..., Any]] = {}
        self._signatures: dict[str, CommandSignature] = {}
        self.faults = resolve_injector(faults)
        self.resilience = resilience or ResiliencePolicy()
        #: Structured FailureReports (retries, rollbacks) in event order.
        self.failures: list[FailureReport] = []
        self._active_deadline: Deadline | None = None
        #: Savepoint stack: snapshot per open ``transaction()`` scope.
        self._txn_stack: list[dict[str, BAT]] = []
        self._txn_owner: int | None = None
        self._in_recovery = False
        #: RecoveryReport of the startup recovery (None without a store).
        self.recovery: RecoveryReport | None = None
        #: Module names the recovered state expects the caller to re-load.
        self.expected_modules: list[str] = []
        self._sanitizer = None
        if check == "sanitize":
            from repro.check.sanitize import KernelSanitizer

            self._sanitizer = KernelSanitizer(self)
        self._install_builtins()
        self._mil = MilInterpreter(
            commands=self._commands,
            globals_scope=_CatalogView(self._catalog),
            run_parallel=self._run_parallel,
            signatures=self._signatures,
            check=check,
            call_guard=self._guarded_command,
            on_statement=self._deadline_tick,
            on_define=self._on_proc_defined,
        )
        self._store: DurableStore | None = None
        if store is not None:
            from repro.durability.store import DurableStore as _Store

            if isinstance(store, _Store):
                self._store = store
            else:
                self._store = _Store(store, faults=self.faults)
            self._recover_from_store()

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def persist(self, name: str, bat: BAT) -> BAT:
        """Store a BAT in the catalog under ``name`` (overwriting).

        With a durable store and no open transaction this is auto-committed:
        the full BAT image is WAL-logged and fsynced before returning.
        """
        if self._sanitizer is not None:
            self._sanitizer.on_catalog_write("persist", name, bat)
        bat.name = name
        self._catalog[name] = bat
        if self._logging_autocommit():
            self._store.log_persist(name, bat)
            self._maybe_checkpoint()
        return bat

    def bat(self, name: str) -> BAT:
        try:
            return self._catalog[name]
        except KeyError:
            raise MonetError(f"no BAT named {name!r} in the catalog") from None

    def drop(self, name: str) -> None:
        if name not in self._catalog:
            raise MonetError(f"no BAT named {name!r} in the catalog")
        if self._sanitizer is not None:
            self._sanitizer.on_catalog_write("drop", name)
        del self._catalog[name]
        if self._logging_autocommit():
            self._store.log_drop(name)
            self._maybe_checkpoint()

    def _logging_autocommit(self) -> bool:
        """True when a mutation outside any transaction must hit the WAL."""
        return (
            self._store is not None
            and not self._in_recovery
            and not self._txn_stack
        )

    def catalog_names(self) -> list[str]:
        return sorted(self._catalog)

    # ------------------------------------------------------------------
    # snapshot / rollback
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, BAT]:
        """A deep copy of the catalog (names -> copied BATs)."""
        return {name: bat.copy(name=name) for name, bat in self._catalog.items()}

    def restore(self, snapshot: dict[str, BAT]) -> None:
        """Roll the catalog back to a snapshot.

        BATs that survive under the same name and types are restored *in
        place*, so holders of a reference (the metadata store, MIL globals)
        observe the rollback; BATs created after the snapshot are dropped,
        and dropped/replaced ones are reinstated from their copies.
        """
        for name in list(self._catalog):
            if name not in snapshot:
                del self._catalog[name]
        for name, saved in snapshot.items():
            live = self._catalog.get(name)
            if (
                live is None
                or (live.head_type, live.tail_type)
                != (saved.head_type, saved.tail_type)
            ):
                self._catalog[name] = saved.copy(name=name)
            else:
                live.restore(saved)

    @contextmanager
    def transaction(self) -> Iterator[dict[str, BAT]]:
        """Catalog snapshot/rollback scope — and the WAL commit boundary.

        On any exception the catalog is restored to its state at entry, so
        a failed MIL ``PROC`` or preprocessor run cannot leave half-written
        BATs behind; the exception then propagates, annotated.

        Scopes nest as savepoints: an inner exception rolls back only the
        inner scope's changes. With a durable store, the catalog delta is
        computed and group-committed to the WAL when the *outermost* scope
        exits cleanly — inner commits release their savepoint without any
        I/O, and a rollback writes only an audit ``abort`` marker (nothing
        to undo: transaction records never reach the log before commit).
        Transactions are single-owner: opening one while another thread's
        transaction is active raises :class:`MonetError`.
        """
        me = threading.get_ident()
        if self._txn_stack and self._txn_owner != me:
            raise MonetError(
                "a transaction is already active on another thread; "
                "concurrent transactions are not supported"
            )
        saved = self.snapshot()
        self._txn_stack.append(saved)
        self._txn_owner = me
        try:
            yield saved
        except BaseException as exc:
            self._txn_stack.pop()
            if not self._txn_stack:
                self._txn_owner = None
            self.restore(saved)
            self.failures.append(
                FailureReport.from_exception(
                    "kernel.transaction", exc, "rolled-back",
                    detail=f"catalog restored to {len(saved)} BAT(s)",
                )
            )
            if (
                self._store is not None
                and not self._txn_stack
                and not self._in_recovery
                and not isinstance(exc, SimulatedCrash)
            ):
                self._store.log_abort()
            annotate(exc, f"catalog rolled back to snapshot of {len(saved)} BAT(s)")
            raise
        self._txn_stack.pop()
        if self._txn_stack:
            return  # inner savepoint released; the outermost scope commits
        self._txn_owner = None
        if self._store is not None and not self._in_recovery:
            self._store.commit(self._catalog_delta(saved))
            self._maybe_checkpoint()

    def _catalog_delta(self, saved: dict[str, BAT]) -> list[tuple]:
        """Mutations since ``saved``: full images of new/changed BATs plus
        drops — the records one WAL commit batch carries."""
        delta: list[tuple] = []
        for name, bat in self._catalog.items():
            old = saved.get(name)
            if old is None or not old.equals(bat):
                delta.append(("persist", name, bat))
        for name in saved:
            if name not in self._catalog:
                delta.append(("drop", name))
        return delta

    # ------------------------------------------------------------------
    # modules & commands
    # ------------------------------------------------------------------
    def load_module(self, module: MonetModule) -> None:
        """Register a MEL-style module's commands and atom types."""
        if module.name in self._modules:
            raise MonetError(f"module {module.name!r} already loaded")
        for atom_type in module.atoms:
            if atom_type.name not in ATOMS:
                ATOMS.register(atom_type)
        for name, fn in module.commands().items():
            if name in self._commands:
                raise MonetError(
                    f"command {name!r} from module {module.name!r} clashes "
                    f"with an existing command"
                )
            self._commands[name] = fn
        self._signatures.update(module.signatures())
        self._modules[module.name] = module
        if self._store is not None and not self._in_recovery:
            self._store.log_module(module.name)

    def register_command(
        self,
        name: str,
        fn: Callable[..., Any],
        signature: CommandSignature | None = None,
    ) -> None:
        """Register a single ad-hoc command (bypassing the module system)."""
        if name in self._commands:
            raise MonetError(f"command {name!r} already registered")
        self._commands[name] = fn
        if signature is not None:
            self._signatures[name] = signature

    def has_command(self, name: str) -> bool:
        return name in self._commands

    def command_names(self) -> list[str]:
        return sorted(self._commands)

    def command_signatures(self) -> dict[str, CommandSignature]:
        """Declared MIL signatures, keyed by command name."""
        return dict(self._signatures)

    def module_names(self) -> list[str]:
        return sorted(self._modules)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        mil_source: str,
        deadline: Deadline | None = None,
        transactional: bool = False,
    ) -> Any:
        """Execute MIL source at global scope.

        ``deadline`` bounds the whole execution (checked per statement and
        per command); ``transactional=True`` rolls the BAT catalog back if
        the execution raises.
        """
        return self._execute(lambda: self._mil.run(mil_source), deadline, transactional)

    def call(
        self,
        proc_name: str,
        args: Sequence[Any] = (),
        deadline: Deadline | None = None,
        transactional: bool = False,
    ) -> Any:
        """Invoke a MIL PROC defined earlier via :meth:`run`."""
        return self._execute(
            lambda: self._mil.call(proc_name, args), deadline, transactional
        )

    def _execute(
        self,
        thunk: Callable[[], Any],
        deadline: Deadline | None,
        transactional: bool,
    ) -> Any:
        previous = self._active_deadline
        if deadline is None and previous is None:
            if self.resilience.query_budget is not None:
                deadline = Deadline(self.resilience.query_budget)
        if deadline is not None:
            self._active_deadline = deadline
        try:
            if transactional:
                with self.transaction():
                    return thunk()
            return thunk()
        finally:
            self._active_deadline = previous

    def drain_failures(self) -> list[FailureReport]:
        """Return and clear the accumulated failure reports."""
        out = self.failures
        self.failures = []
        return out

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def store(self) -> DurableStore | None:
        return self._store

    def _recover_from_store(self) -> None:
        assert self._store is not None
        state = self._store.open()
        self._in_recovery = True
        try:
            for name, bat in state.catalog.items():
                bat.name = name
                self._catalog[name] = bat
            for definition in state.definitions.values():
                # static checks are off: the modules these PROCs call may
                # not be re-loaded yet (see ``expected_modules``)
                self._mil.define_proc(definition, check="off")
        finally:
            self._in_recovery = False
        self.recovery = state.report
        self.expected_modules = state.modules

    def _on_proc_defined(self, proc: Any) -> None:
        """WAL-log every PROC definition (interpreter ``on_define`` hook).

        PROC definitions are not rolled back with the BAT catalog, so they
        are logged immediately even inside an open transaction.
        """
        if self._store is None or self._in_recovery:
            return
        self._store.log_proc(proc.name, proc.definition)
        self._maybe_checkpoint()

    def checkpoint(self) -> int:
        """Fold the WAL into a fresh atomic checkpoint; returns its seqno."""
        if self._store is None:
            raise MonetError("kernel has no durable store to checkpoint")
        if self._txn_stack:
            raise MonetError("cannot checkpoint inside an open transaction")
        definitions = {
            name: procedure.definition
            for name, procedure in self._mil.procedures.items()
        }
        return self._store.checkpoint(
            self._catalog, definitions, self.module_names()
        )

    def _maybe_checkpoint(self) -> None:
        if (
            self._store is not None
            and not self._txn_stack
            and self._store.wants_checkpoint()
        ):
            self.checkpoint()

    def close(self) -> None:
        """Release the durable store's WAL file handle (no-op otherwise)."""
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    # resilience guards
    # ------------------------------------------------------------------
    def _deadline_tick(self) -> None:
        cancel_checkpoint("mil.statement")
        deadline = self._active_deadline
        if deadline is not None:
            deadline.check("mil.statement")

    def _guarded_command(
        self, name: str, fn: Callable[..., Any], args: list[Any]
    ) -> Any:
        """Invoke one kernel command under fault injection + retry + deadline."""
        site = f"kernel.command:{name}"
        deadline = self._active_deadline
        faults = self.faults
        call_timeout = self.resilience.call_timeout
        if self._sanitizer is not None:
            fn = self._sanitizer.wrap_command(
                name, self._signatures.get(name), fn
            )

        def attempt() -> Any:
            faults.on_call(site)
            cancel_checkpoint(site)
            if call_timeout is None:
                return fn(*args)
            started = time.monotonic()
            result = fn(*args)
            elapsed = time.monotonic() - started
            if elapsed > call_timeout:
                raise TimeoutExpired(
                    f"command ran {elapsed:.3f}s, over its {call_timeout}s "
                    f"per-call budget",
                    site=site,
                    overshoot=elapsed - call_timeout,
                )
            return result

        if not faults.enabled and deadline is None and call_timeout is None:
            token = current_token()
            if token is None:
                return fn(*args)  # fast path: nothing to guard
            # Token-only path: checkpoint, but skip the retry machinery —
            # cancellation and timeouts are in give_up_on anyway.
            token.check(site)
            return fn(*args)

        def on_retry(attempt_number: int, error: BaseException) -> None:
            self.failures.append(
                FailureReport.from_exception(
                    site, error, "retried", attempts=attempt_number
                )
            )

        return self.resilience.retry.call(
            attempt, site=site, deadline=deadline, on_retry=on_retry
        )

    def procedures(self) -> list[str]:
        return sorted(self._mil.procedures)

    @property
    def interpreter(self) -> MilInterpreter:
        return self._mil

    @property
    def diagnostics(self) -> list[Any]:
        """Static-analysis findings collected across PROC definitions."""
        return list(self._mil.diagnostics)

    def parallel(self, thunks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run Python thunks on the kernel pool (used by extensions)."""
        return self._run_parallel(thunks)

    def _run_parallel(
        self,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str] | None = None,
    ) -> list[Any]:
        """Executor fan-out, routed through the sanitizer when armed."""
        if self._sanitizer is not None:
            return self._sanitizer.run_parallel(self._executor.run, thunks, labels)
        return self._executor.run(thunks, labels)

    @property
    def sanitizer(self) -> Any:
        """The armed :class:`repro.check.sanitize.KernelSanitizer`, or None."""
        return self._sanitizer

    @property
    def threads(self) -> int:
        return self._executor.threads

    # ------------------------------------------------------------------
    # builtins
    # ------------------------------------------------------------------
    def _install_builtins(self) -> None:
        self._commands.update(
            {
                "threadcnt": self._executor.threadcnt,
                "print": _mil_print,
                "abs": abs,
                "sqrt": math.sqrt,
                "log": math.log,
                "exp": math.exp,
                "floor": math.floor,
                "ceil": math.ceil,
                "min2": min,
                "max2": max,
                "int": int,
                "flt": float,
                "str": str,
                "len": len,
                "bat": self.bat,
                "persist": self.persist,
                "cancelpoint": _mil_cancelpoint,
            }
        )
        self._signatures.update(
            {
                "threadcnt": CommandSignature("threadcnt", ("int",), "int"),
                "print": CommandSignature("print", ("any",), "any", varargs=True),
                "abs": CommandSignature("abs", ("dbl",), "dbl"),
                "sqrt": CommandSignature("sqrt", ("dbl",), "dbl"),
                "log": CommandSignature("log", ("dbl",), "dbl"),
                "exp": CommandSignature("exp", ("dbl",), "dbl"),
                "floor": CommandSignature("floor", ("dbl",), "int"),
                "ceil": CommandSignature("ceil", ("dbl",), "int"),
                "min2": CommandSignature("min2", ("any", "any"), "any"),
                "max2": CommandSignature("max2", ("any", "any"), "any"),
                "int": CommandSignature("int", ("any",), "int"),
                "flt": CommandSignature("flt", ("any",), "dbl"),
                "str": CommandSignature("str", ("any",), "str"),
                "len": CommandSignature("len", ("any",), "int"),
                "bat": CommandSignature("bat", ("str",), "BAT"),
                "persist": CommandSignature("persist", ("str", "BAT"), "BAT"),
                "cancelpoint": CommandSignature("cancelpoint", (), "int"),
            }
        )


class _CatalogView(dict):
    """Global MIL scope backed by the kernel catalog.

    Plain MIL globals live in the dict itself; catalog BATs shine through by
    name so ``PROC`` bodies can reference persisted metadata directly.
    """

    def __init__(self, catalog: dict[str, BAT]):
        super().__init__()
        self._bat_catalog = catalog

    def __contains__(self, key: object) -> bool:  # type: ignore[override]
        return super().__contains__(key) or key in self._bat_catalog

    def __getitem__(self, key: str) -> Any:
        if super().__contains__(key):
            return super().__getitem__(key)
        return self._bat_catalog[key]

    def __iter__(self):
        # Iteration exposes catalog names too, so the static checker can
        # treat persisted BATs as known globals.
        yield from super().__iter__()
        for key in self._bat_catalog:
            if not super().__contains__(key):
                yield key


def _mil_print(*args: Any) -> None:
    print(*args)


def _mil_cancelpoint() -> int:
    """MIL ``cancelpoint()``: explicit cancellation checkpoint.

    Long-running hand-written loops (notably unbounded ``WHILE`` bodies in
    service-registered PROCs — see diagnostic SVC001) call this so a
    cancelled or expired request stops inside the loop. Returns 0 so it can
    sit in expression position.
    """
    cancel_checkpoint("mil.cancelpoint")
    return 0
