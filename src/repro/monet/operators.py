"""Multi-BAT relational helpers.

Monet's fully decomposed storage keeps each attribute of an n-ary relation in
its own BAT; the BATs of one relation share head oids. These helpers
reconstruct tuples from aligned BATs and decompose Python records back into
BAT groups — the mechanics the Cobra metadata store is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import BatError
from repro.monet.bat import BAT

__all__ = [
    "BatStats",
    "bat_stats",
    "decompose",
    "reconstruct",
    "project",
    "group_count",
]


@dataclass(frozen=True)
class BatStats:
    """Measured physical facts of one live BAT.

    The static cost analysis (:mod:`repro.check.costcheck`) seeds
    BAT-typed procedure parameters from these when the caller has the
    actual input BATs in hand, replacing the :data:`DEFAULT_CARD`
    assumption with real cardinalities and access-path facts.
    """

    rows: int
    keyed_head: bool
    sorted_tail: bool


def bat_stats(bat: BAT) -> BatStats:
    """Measure ``(rows, keyed head, sorted tail)`` of one BAT."""
    rows = bat.count()
    heads = bat.heads()
    keyed = bat.head_type == "void" or len(set(heads)) == len(heads)
    tails = bat.tails()
    try:
        sorted_tail = all(a <= b for a, b in zip(tails, tails[1:]))
    except TypeError:  # mixed/unorderable tails: no sorted access path
        sorted_tail = False
    return BatStats(rows=rows, keyed_head=keyed, sorted_tail=sorted_tail)


def decompose(
    records: Sequence[Mapping[str, Any]],
    schema: Mapping[str, str],
) -> dict[str, BAT]:
    """Split records into one void-headed BAT per attribute.

    Args:
        records: homogeneous dicts; every schema key must be present.
        schema: attribute name -> tail atom-type name.

    Returns:
        Mapping of attribute name to a BAT whose heads are the shared,
        dense record oids (0..n-1).
    """
    bats = {attr: BAT("void", tail_type) for attr, tail_type in schema.items()}
    for record in records:
        for attr, bat in bats.items():
            if attr not in record:
                raise BatError(f"record {record!r} is missing attribute {attr!r}")
            bat.insert(record[attr])
    return bats


def reconstruct(bats: Mapping[str, BAT]) -> list[dict[str, Any]]:
    """Zip aligned BATs back into records keyed by attribute name.

    All BATs must have the same heads in the same order (the invariant
    :func:`decompose` establishes); misalignment raises :class:`BatError`.
    """
    if not bats:
        return []
    names = list(bats)
    heads = bats[names[0]].heads()
    for name in names[1:]:
        if bats[name].heads() != heads:
            raise BatError(
                f"BAT {name!r} is not head-aligned with {names[0]!r}"
            )
    columns = [bats[name].tails() for name in names]
    return [dict(zip(names, row)) for row in zip(*columns)]


def project(bats: Mapping[str, BAT], oids: Iterable[Any]) -> list[dict[str, Any]]:
    """Reconstruct only the records whose head oid is in ``oids``."""
    wanted = set(oids)
    records = reconstruct(bats)
    if not bats:
        return []
    first = next(iter(bats.values()))
    heads = first.heads()
    return [record for head, record in zip(heads, records) if head in wanted]


def group_count(bat: BAT) -> dict[Any, int]:
    """Group a BAT by tail value and count members per group."""
    counts: dict[Any, int] = {}
    for _, tail in bat:
        counts[tail] = counts.get(tail, 0) + 1
    return counts
