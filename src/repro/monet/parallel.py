"""Thread-pool parallelism for the kernel.

Monet exposes intra-query parallelism which the paper exploits to evaluate
six HMMs concurrently (Fig. 3/4): MIL calls ``threadcnt(7)`` and the kernel
fans the calls out over worker threads. :class:`ParallelExecutor` reproduces
that contract — a resizable pool plus a barrier-style ``run`` that collects
results in submission order — and adds the fault-tolerance contract: when a
branch fails, queued branches are cancelled and the originating branch's
context (label, proc, MIL line) rides along on the propagated exception
instead of a bare error escaping from an anonymous thread.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, CancelledError, ThreadPoolExecutor, wait
import contextvars
import threading
from typing import Any, Callable, Sequence

from repro.errors import MonetError, annotate

__all__ = ["ParallelExecutor"]


class ParallelExecutor:
    """A resizable worker pool with ``threadcnt``-style sizing.

    The MIL convention sizes the pool as *workers + 1* (``threadcnt(7)`` for
    six parallel HMM servers plus the coordinating thread); :meth:`threadcnt`
    keeps that convention by clamping the worker count to ``n - 1`` with a
    minimum of one.
    """

    def __init__(self, threads: int = 2):
        if threads < 1:
            raise MonetError(f"thread count must be >= 1, got {threads}")
        self._threads = threads
        self._lock = threading.Lock()

    @property
    def threads(self) -> int:
        return self._threads

    def threadcnt(self, n: int) -> int:
        """MIL ``threadcnt(n)``: size the pool for ``n - 1`` workers."""
        if n < 1:
            raise MonetError(f"threadcnt needs a positive count, got {n}")
        with self._lock:
            self._threads = max(1, n - 1)
            return self._threads

    def run(
        self,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str] | None = None,
    ) -> list[Any]:
        """Run thunks concurrently; returns results in submission order.

        On the first branch failure, branches that have not started yet are
        cancelled (running branches finish — Python threads cannot be
        preempted), and the first failing branch's exception propagates to
        the caller annotated with its branch label and the number of
        cancelled siblings. Partial results never escape silently.
        """
        if not thunks:
            return []
        if labels is not None and len(labels) != len(thunks):
            raise MonetError(
                f"{len(labels)} labels for {len(thunks)} parallel thunks"
            )
        with self._lock:
            workers = min(self._threads, len(thunks))
        if workers == 1:
            return self._run_serial(thunks, labels)
        results: list[Any] = [None] * len(thunks)
        failures: list[tuple[int, BaseException]] = []
        cancelled = 0
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Each branch runs under a copy of the submitting thread's
            # context, so ambient state — notably the cancellation token
            # installed by repro.resilience.cancel_scope — crosses the
            # thread boundary and branches stay cancellable.
            futures = [
                pool.submit(contextvars.copy_context().run, thunk)
                for thunk in thunks
            ]
            wait(futures, return_when=FIRST_EXCEPTION)
            # A failure (or completion) woke us: stop branches that have not
            # started, then drain the ones already running.
            for future in futures:
                if future.cancel():
                    cancelled += 1
            for index, future in enumerate(futures):
                if future.cancelled():
                    continue
                try:
                    results[index] = future.result()
                except CancelledError:  # pragma: no cover - race with cancel()
                    cancelled += 1
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failures.append((index, exc))
        if failures:
            index, error = failures[0]
            label = labels[index] if labels else f"parallel branch {index + 1}"
            note = f"raised in {label}"
            if cancelled:
                note += f"; cancelled {cancelled} queued branch(es)"
            if len(failures) > 1:
                note += f"; {len(failures) - 1} other branch(es) also failed"
            raise annotate(error, note)
        return results

    def _run_serial(
        self,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str] | None,
    ) -> list[Any]:
        results: list[Any] = []
        for index, thunk in enumerate(thunks):
            try:
                results.append(thunk())
            except BaseException as exc:  # noqa: BLE001 - annotated re-raise
                label = labels[index] if labels else f"parallel branch {index + 1}"
                note = f"raised in {label}"
                remaining = len(thunks) - index - 1
                if remaining:
                    note += f"; cancelled {remaining} queued branch(es)"
                raise annotate(exc, note)
        return results
