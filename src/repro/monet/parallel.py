"""Thread-pool parallelism for the kernel.

Monet exposes intra-query parallelism which the paper exploits to evaluate
six HMMs concurrently (Fig. 3/4): MIL calls ``threadcnt(7)`` and the kernel
fans the calls out over worker threads. :class:`ParallelExecutor` reproduces
that contract — a resizable pool plus a barrier-style ``run`` that collects
results in submission order and re-raises the first worker error.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
import threading
from typing import Any, Callable, Sequence

from repro.errors import MonetError

__all__ = ["ParallelExecutor"]


class ParallelExecutor:
    """A resizable worker pool with ``threadcnt``-style sizing.

    The MIL convention sizes the pool as *workers + 1* (``threadcnt(7)`` for
    six parallel HMM servers plus the coordinating thread); :meth:`threadcnt`
    keeps that convention by clamping the worker count to ``n - 1`` with a
    minimum of one.
    """

    def __init__(self, threads: int = 2):
        if threads < 1:
            raise MonetError(f"thread count must be >= 1, got {threads}")
        self._threads = threads
        self._lock = threading.Lock()

    @property
    def threads(self) -> int:
        return self._threads

    def threadcnt(self, n: int) -> int:
        """MIL ``threadcnt(n)``: size the pool for ``n - 1`` workers."""
        if n < 1:
            raise MonetError(f"threadcnt needs a positive count, got {n}")
        with self._lock:
            self._threads = max(1, n - 1)
            return self._threads

    def run(self, thunks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run thunks concurrently; returns results in submission order.

        A single failing thunk cancels nothing that is already running but
        causes the first raised exception to propagate to the caller after
        all workers have finished, so partial results never escape silently.
        """
        if not thunks:
            return []
        with self._lock:
            workers = min(self._threads, len(thunks))
        if workers == 1:
            return [thunk() for thunk in thunks]
        results: list[Any] = [None] * len(thunks)
        errors: list[BaseException] = []
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(thunk) for thunk in thunks]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
        if errors:
            raise errors[0]
        return results
